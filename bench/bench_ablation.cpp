// ABL — ablation of the protocol's design constants (why 95 and 5?).
//
//   * time_multiplier (paper: 95, from Corollary 3.7's 65 ln n <= 94 log n):
//     the epoch must outlast generate+propagate of the epoch maximum.  Too
//     small → epochs end before the max-gr epidemic completes → deposits mix
//     unpropagated values → accuracy degrades; larger → slower, no accuracy
//     gain.
//   * epoch_multiplier (paper: 5, from Corollary D.10's K >= 4 log N): the
//     number of averaged maxima controls the Chernoff concentration.  K too
//     small → variance of the average blows past the additive-error budget.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/log_size_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

namespace {

struct Row {
  double mean_err = 0.0;
  double max_err = 0.0;
  double frac_within_2 = 0.0;
  double mean_time = 0.0;
};

Row sweep(pops::LogSizeEstimation::Params params, std::uint64_t n, std::uint64_t trials,
          std::uint64_t salt) {
  const double logn = std::log2(static_cast<double>(n));
  pops::Summary err, time;
  std::uint64_t within = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    pops::AgentSimulation<pops::LogSizeEstimation> sim(pops::LogSizeEstimation{params}, n,
                                                       pops::trial_seed(salt, t));
    const double tt = sim.run_until(
        [](const pops::AgentSimulation<pops::LogSizeEstimation>& s) {
          return pops::converged(s);
        },
        25.0, 5e7);
    if (tt < 0.0) continue;
    const double e = std::abs(static_cast<double>(pops::estimate(sim)) - logn);
    err.add(e);
    time.add(tt);
    within += e <= 2.0 ? 1 : 0;
  }
  return Row{err.mean(), err.max(),
             static_cast<double>(within) / static_cast<double>(trials), time.mean()};
}

}  // namespace

int main() {
  using pops::Table;
  pops::banner("ABL: ablating the protocol constants (time x95, epochs x5) at n = 2048");
  const std::uint64_t n = pops::by_scale<std::uint64_t>(512, 2048, 8192);
  const std::uint64_t trials = pops::by_scale<std::uint64_t>(3, 8, 20);

  Table tm({"time_multiplier", "mean_|err|", "max_|err|", "frac_within_2", "mean_time"});
  for (std::uint32_t mult : {5u, 10u, 20u, 40u, 95u, 190u}) {
    pops::LogSizeEstimation::Params p;
    p.time_multiplier = mult;
    const auto r = sweep(p, n, trials, 0xAB1 + mult);
    tm.row({Table::num(static_cast<std::uint64_t>(mult)), Table::num(r.mean_err, 2),
            Table::num(r.max_err, 2), Table::num(r.frac_within_2, 2),
            Table::num(r.mean_time, 0)});
  }
  std::cout << "\nepoch-length multiplier (paper value 95; threshold = mult * logSize2):\n";
  tm.print();

  Table em({"epoch_multiplier", "K~mult*logSize2", "mean_|err|", "max_|err|",
            "frac_within_2", "mean_time"});
  for (std::uint32_t mult : {1u, 2u, 3u, 5u, 10u}) {
    pops::LogSizeEstimation::Params p;
    p.epoch_multiplier = mult;
    const auto r = sweep(p, n, trials, 0xAB2 + mult);
    em.row({Table::num(static_cast<std::uint64_t>(mult)),
            Table::num(static_cast<std::uint64_t>(mult) * 15), Table::num(r.mean_err, 2),
            Table::num(r.max_err, 2), Table::num(r.frac_within_2, 2),
            Table::num(r.mean_time, 0)});
  }
  std::cout << "\nnumber-of-epochs multiplier (paper value 5; K = mult * logSize2):\n";
  em.print();

  std::cout << "\nexpected: accuracy roughly flat down to time_multiplier ~ 40 then\n"
            << "degrading as epochs end before the max-gr epidemic completes; error\n"
            << "variance shrinking as epoch_multiplier grows (Chernoff over K maxima),\n"
            << "with time growing linearly in both multipliers — the paper's 95/5 buys\n"
            << "whp guarantees at ~6x the runtime of the cheapest accurate setting.\n";
  return 0;
}
