// ARITH — regenerates the paper's introductory complexity gap (Section 1):
//   "the transition x,q → y,y computes f(x) = 2x in expected time O(log n),
//    whereas x,x → y,q computes f(x) = floor(x/2) exponentially slower:
//    expected time O(n)"
// The table shows completion times for both protocols across sizes; doubling
// time divided by log n and halving time divided by n should both be flat.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "proto/arithmetic.hpp"
#include "sim/count_simulation.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  pops::banner("ARITH: the intro example — 2x in O(log n) vs floor(x/2) in O(n)");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(3, 10, 30);
  // Halving runs in Θ(n) parallel time = Θ(n²) interactions, so its sizes
  // stay modest; doubling is O(log n) and could go far larger.
  const std::vector<std::uint64_t> sizes = pops::bench_scale() == 0
                                               ? std::vector<std::uint64_t>{512, 2048}
                                               : std::vector<std::uint64_t>{512, 2048, 8192,
                                                                            16384};

  Table table({"n", "T_double(x,q->y,y)", "T_double/ln(n)", "T_halve(x,x->y,q)",
               "T_halve/n", "gap_T_halve/T_double"});
  for (const auto n : sizes) {
    pops::Summary dbl, hlv;
    const std::uint64_t halve_trials = n >= 8192 ? std::max<std::uint64_t>(2, trials / 4)
                                                 : trials;
    for (std::uint64_t t = 0; t < trials; ++t) {
      pops::CountSimulation sim(pops::doubling_spec(), pops::trial_seed(0xA21, n + t));
      sim.set_count("x", n / 3);
      sim.set_count("q", n - n / 3);
      dbl.add(sim.run_until(
          [](const pops::CountSimulation& s) { return s.count("x") == 0; }, 0.25, 1e8));
    }
    for (std::uint64_t t = 0; t < halve_trials; ++t) {
      pops::CountSimulation sim(pops::halving_spec(), pops::trial_seed(0xA22, n + t));
      sim.set_count("x", n);
      hlv.add(sim.run_until(
          [](const pops::CountSimulation& s) { return s.count("x") <= 1; }, 0.25, 1e8));
    }
    const double nd = static_cast<double>(n);
    table.row({Table::num(n), Table::num(dbl.mean(), 1),
               Table::num(dbl.mean() / std::log(nd), 2), Table::num(hlv.mean(), 1),
               Table::num(hlv.mean() / nd, 3), Table::num(hlv.mean() / dbl.mean(), 1)});
  }
  table.print();
  std::cout << "\nexpected: T_double/ln(n) and T_halve/n both roughly constant — the gap\n"
            << "column grows ~ n/log n, the exponential separation the paper's intro\n"
            << "uses to motivate 'efficient = polylog'.\n";
  return 0;
}
