// BASE — comparison against the related-work estimators (paper §1.2):
//   * MaxGeometricEstimate (Alistarh et al. [2]): O(log n) time,
//     multiplicative-factor estimate (k ∈ [log n − log ln n, 2 log n])
//   * Log-Size-Estimation (this paper): O(log² n) time, additive-error
//     estimate (|k − log n| <= 5.7, typically <= 2)
//   * ExactCountingBackup (§3.3): Θ(n)-ish time, exact ceil-ish log with
//     probability 1
//   * LeaderCounting (Michail [32] style): Θ(n log n) time, exact n, uniform
//     AND terminating — possible only with a leader.
// The "who wins where" shape: the baseline is fastest but coarsest; ours
// trades a log factor of time for additive accuracy; exact methods cost
// linear time.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/log_size_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "proto/exact_counting.hpp"
#include "proto/leader_counting.hpp"
#include "proto/max_geometric_estimate.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  pops::banner("BASE: size estimators compared (paper Section 1.2 related work)");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(3, 8, 20);
  const std::vector<std::uint64_t> sizes = pops::bench_scale() == 0
                                               ? std::vector<std::uint64_t>{256, 1024}
                                               : std::vector<std::uint64_t>{256, 1024, 4096};

  Table table({"n", "protocol", "mean_time", "mean_|err|", "max_|err|", "guarantee"});
  for (const auto n : sizes) {
    const double logn = std::log2(static_cast<double>(n));

    {  // Alistarh et al. baseline
      pops::Summary time, err;
      for (std::uint64_t t = 0; t < trials; ++t) {
        pops::AgentSimulation<pops::MaxGeometricEstimate> sim(
            pops::MaxGeometricEstimate{}, n, pops::trial_seed(0xBA1, n + t));
        time.add(sim.run_until(
            [](const pops::AgentSimulation<pops::MaxGeometricEstimate>& s) {
              return pops::converged(s);
            },
            1.0, 1e6));
        err.add(std::abs(static_cast<double>(sim.agent(0).estimate) - logn));
      }
      table.row({Table::num(n), "max-geometric [2]", Table::num(time.mean(), 1),
                 Table::num(err.mean(), 2), Table::num(err.max(), 2),
                 "k in [logn-loglnn, 2logn] whp"});
    }

    {  // this paper
      pops::Summary time, err;
      for (std::uint64_t t = 0; t < trials; ++t) {
        pops::AgentSimulation<pops::LogSizeEstimation> sim(
            pops::LogSizeEstimation{}, n, pops::trial_seed(0xBA2, n + t));
        time.add(sim.run_until(
            [](const pops::AgentSimulation<pops::LogSizeEstimation>& s) {
              return pops::converged(s);
            },
            25.0, 5e7));
        err.add(std::abs(static_cast<double>(pops::estimate(sim)) - logn));
      }
      table.row({Table::num(n), "Log-Size-Estimation (Thm 3.1)", Table::num(time.mean(), 1),
                 Table::num(err.mean(), 2), Table::num(err.max(), 2),
                 "|k-logn| <= 5.7 whp"});
    }

    if (n <= 1024) {  // exact backup: Θ(n)-ish, keep sizes small
      pops::Summary time, err;
      for (std::uint64_t t = 0; t < trials; ++t) {
        pops::AgentSimulation<pops::ExactCountingBackup> sim(
            pops::ExactCountingBackup{}, n, pops::trial_seed(0xBA3, n + t));
        time.add(sim.run_until(
            [](const pops::AgentSimulation<pops::ExactCountingBackup>& s) {
              return pops::converged(s);
            },
            10.0, 1e7));
        err.add(std::abs(static_cast<double>(pops::ExactCountingBackup::estimate(
                    sim.agent(0))) - logn));
      }
      table.row({Table::num(n), "exact backup (sec 3.3)", Table::num(time.mean(), 1),
                 Table::num(err.mean(), 2), Table::num(err.max(), 2),
                 "kex >= log n w.p. 1"});
    }

    if (n <= 1024) {  // leader counting: Θ(n log n)
      pops::Summary time, err;
      for (std::uint64_t t = 0; t < trials; ++t) {
        pops::AgentSimulation<pops::LeaderCounting> sim(pops::LeaderCounting{}, n,
                                                        pops::trial_seed(0xBA4, n + t));
        sim.set_state(0, pops::LeaderCounting::make_leader());
        time.add(sim.run_until(
            [](const pops::AgentSimulation<pops::LeaderCounting>& s) {
              return s.agent(0).terminated;
            },
            10.0, 1e8));
        err.add(std::abs(std::log2(static_cast<double>(sim.agent(0).count)) - logn));
      }
      table.row({Table::num(n), "leader counting [32]", Table::num(time.mean(), 1),
                 Table::num(err.mean(), 3), Table::num(err.max(), 3),
                 "exact n whp, TERMINATING"});
    }
  }
  table.print();
  std::cout << "\nexpected shape: max-geometric fastest but multiplicative error (grows to\n"
            << "~logn); ours ~log^2 n time with additive error <= 2 typical; exact methods\n"
            << "linear-time.  Termination only in the leader-driven protocol (Thm 4.1).\n";
  return 0;
}
