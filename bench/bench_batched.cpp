// BATCHED — throughput sweep of the three simulators on the epidemic
// protocol: per-agent (AgentSimulation<ValueEpidemic>), sequential count
// (CountSimulation), and batched count (BatchedCountSimulation), across
// population sizes n = 10^4 … 10^9.
//
// The point of the figure: per-agent and sequential-count throughput is flat
// in n (O(1) and O(log S) per interaction), while batched throughput *grows*
// with n — Θ(√n) interactions per epoch — which is what makes the paper's
// n = 10^8–10^12 parallel-time experiments reachable.
//
// Output is machine-readable JSON (one result object per simulator × n) for
// BENCH_*.json perf-trajectory tracking:
//   ./bench_batched [--max-n=N] > BENCH_batched.json
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <string>
#include <thread>

#include "core/executor.hpp"
#include "proto/epidemic.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/batched_count_simulation.hpp"
#include "sim/count_simulation.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Seed a fresh epidemic (n-1 susceptible, 1 infected) in any count-API sim.
template <typename Sim>
void reset_epidemic(Sim& sim, std::uint64_t n) {
  sim.set_count("S", n - 1);
  sim.set_count("I", 1);
}

template <typename Sim>
double run_count_workload(Sim& sim, std::uint64_t n, std::uint64_t interactions) {
  // Re-seed whenever the epidemic saturates so measured batches stay
  // representative of live dynamics rather than the all-null steady state.
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  const std::uint64_t chunk = std::max<std::uint64_t>(interactions / 64, 1);
  while (done < interactions) {
    if (sim.count("S") == 0) reset_epidemic(sim, n);
    const std::uint64_t step = std::min(chunk, interactions - done);
    sim.steps(step);
    done += step;
  }
  return seconds_since(start);
}

struct Result {
  const char* simulator;
  std::uint64_t n;
  std::uint64_t interactions;
  double seconds;
};

bool first_result = true;

void emit(const Result& r) {
  std::printf("%s    {\"simulator\": \"%s\", \"n\": %" PRIu64
              ", \"interactions\": %" PRIu64
              ", \"seconds\": %.6f, \"interactions_per_sec\": %.6e}",
              first_result ? "" : ",\n", r.simulator, r.n, r.interactions,
              r.seconds, static_cast<double>(r.interactions) / r.seconds);
  first_result = false;
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t max_n = 1000000000ULL;  // 10^9
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-n=", 8) == 0) {
      max_n = std::strtoull(argv[i] + 8, nullptr, 10);
    }
  }
  constexpr std::uint64_t kAgentSimMaxN = 10000000ULL;  // 8 B/agent: keep RAM sane
  constexpr std::uint64_t kSequentialWork = 4000000ULL;

  std::printf("{\n  \"bench\": \"bench_batched\",\n  \"protocol\": \"epidemic\",\n");
  // Header records the machine's thread budget, the process-wide executor's
  // effective width (POPS_THREADS / Executor::set_threads), and the epoch
  // shard ceiling (POPS_EPOCH_SHARDS — a different ceiling samples a
  // different exact decomposition, so per-seed comparisons need equal
  // values) — so perf diffs across PRs compare like with like
  // (scripts/bench_regen.sh commits this output; scripts/bench_diff.py keys
  // on it).
  std::printf("  \"hardware_concurrency\": %u,\n  \"executor_threads\": %u,\n"
              "  \"epoch_shards\": %u,\n",
              std::max(1u, std::thread::hardware_concurrency()),
              pops::Executor::instance().threads(),
              pops::BatchedCountSimulation::max_epoch_shards());
  std::printf("  \"results\": [\n");
  for (std::uint64_t n = 10000; n <= max_n; n *= 10) {
    if (n <= kAgentSimMaxN) {
      pops::AgentSimulation<pops::ValueEpidemic> sim(pops::ValueEpidemic{}, n, 17);
      const auto start = std::chrono::steady_clock::now();
      sim.steps(kSequentialWork);
      emit({"agent", n, kSequentialWork, seconds_since(start)});
    }
    {
      pops::CountSimulation sim(pops::epidemic_spec(), 19);
      reset_epidemic(sim, n);
      const double secs = run_count_workload(sim, n, kSequentialWork);
      emit({"count", n, kSequentialWork, secs});
    }
    {
      pops::BatchedCountSimulation sim(pops::epidemic_spec(), 23);
      reset_epidemic(sim, n);
      // Scale the workload with n: at least ~300 epochs' worth (epoch length
      // is ~0.89*sqrt(n)), and never less than the sequential workload.
      const std::uint64_t work =
          std::max(kSequentialWork, 8 * n);
      const double secs = run_count_workload(sim, n, work);
      emit({"batched", n, work, secs});
      // Serial-epoch column: on a wide executor, repeat the same workload
      // with the pool pinned to one thread, so the serial-vs-parallel epoch
      // cost is visible side by side.  (The epidemic's two-class epochs take
      // the dense pairing path, so this column mostly bounds the sharding
      // overhead; the compiled many-state sweeps carry the speedup claim.)
      const unsigned width = pops::Executor::instance().threads();
      if (width > 1) {
        pops::Executor::set_threads(1);
        pops::BatchedCountSimulation serial_sim(pops::epidemic_spec(), 23);
        reset_epidemic(serial_sim, n);
        const double serial_secs = run_count_workload(serial_sim, n, work);
        emit({"batched_width1", n, work, serial_secs});
        pops::Executor::set_threads(width);
      }
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
