// COMPILED — the paper's headline constructions, compiled to FiniteSpecs and
// run on the batched Θ(√n)-per-epoch engine at n = 10^8 … 10^12.
//
// Per configuration the bench reports three things as JSON
// (./bench_compiled_scaling > BENCH_compiled.json):
//
//   * compile — state count, transition count, compile time: the measured
//     size of the bounded-field regime (the paper's Θ(log⁴ n) with log n
//     frozen at the cap);
//   * equivalence — a two-sample chi-square of compiled-batched vs direct
//     AgentSimulation at an overlapping n (trials fan out over threads via
//     run_trials_parallel);
//   * scaling — throughput at n = 10^8 … max-n under a fixed interaction
//     budget, plus protocol observables.  AgentSimulation needs Θ(n) memory
//     (≳ 4 GB at n = 10^8 for Log-Size-Estimation) and is simply absent
//     above that, which is the point of the compile-to-counts pipeline.
//
// POPS_BENCH_SCALE=0 stops at 10^9 and skips the multi-thousand-state
// preset; =2 (or --max-n=1000000000000) sweeps to 10^12.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "harness/bench_scale.hpp"
#include "harness/equivalence.hpp"
#include "sim/batched_count_simulation.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool first_entry = true;

void begin_config(const char* name) {
  std::printf("%s    {\"config\": \"%s\",\n", first_entry ? "" : ",\n", name);
  first_entry = false;
}

/// One full report for a compiled protocol: compile stats, chi-square
/// equivalence at small n, throughput sweep to max_n.
template <typename P, typename Obs>
void report(const char* name, const P& proto, std::uint32_t cap, std::uint64_t max_n,
            std::uint64_t eq_interactions, std::uint64_t eq_seed, Obs&& observable,
            const char* obs_name) {
  begin_config(name);

  auto t0 = std::chrono::steady_clock::now();
  const auto compiled = pops::ProtocolCompiler<P>(proto, cap).compile();
  const double compile_secs = seconds_since(t0);
  std::printf("     \"compile\": {\"states\": %u, \"transitions\": %zu, \"pairs\": %" PRIu64
              ", \"paths\": %" PRIu64 ", \"seconds\": %.3f},\n",
              compiled.num_states(), compiled.num_transitions(), compiled.pairs_explored,
              compiled.paths_explored, compile_secs);

  // Equivalence at an n both simulators handle, via the same harness the
  // certification suite uses (harness/equivalence.hpp).
  {
    const std::uint64_t n = 1000, trials = pops::by_scale<std::uint64_t>(100, 200, 400);
    const auto chi = pops::compiled_agent_equivalence(proto, compiled, n, eq_interactions,
                                                      trials, eq_seed, observable);
    std::printf("     \"equivalence\": {\"n\": %" PRIu64 ", \"interactions\": %" PRIu64
                ", \"trials\": %" PRIu64
                ", \"observable\": \"%s\", \"chi2\": %.3f, \"df\": %" PRIu64
                ", \"accept\": %s},\n",
                n, eq_interactions, trials, obs_name, chi.statistic, chi.df,
                chi.accept() ? "true" : "false");
  }

  // Throughput sweep.  Fixed interaction budget per point: enough epochs to
  // be representative (≥ ~100 even at 10^12 where an epoch is ~1.25e6
  // interactions), small enough that the whole sweep stays interactive.
  // One simulator serves every point (reset() per n) — rebuilding the CSR
  // dispatch table per point would dwarf the smaller sweeps for the
  // multi-thousand-state presets.
  std::printf("     \"scaling\": [\n");
  bool first_point = true;
  pops::BatchedCountSimulation sim(compiled.spec, 0);
  for (std::uint64_t n = 100000000ULL; n <= max_n; n *= 10) {
    sim.reset(0xBEEF ^ n);
    pops::Rng seeder(0x5EED ^ n);
    compiled.seed_initial(sim, n, seeder);
    const std::uint64_t work = 200000000ULL;
    t0 = std::chrono::steady_clock::now();
    sim.steps(work);
    const double secs = seconds_since(t0);
    const std::uint64_t obs = compiled.count_matching(sim.counts(), observable);
    std::printf("%s       {\"n\": %" PRIu64 ", \"interactions\": %" PRIu64
                ", \"seconds\": %.4f, \"interactions_per_sec\": %.4e, "
                "\"parallel_time\": %.6g, \"%s\": %" PRIu64 "}",
                first_point ? "" : ",\n", n, work, secs,
                static_cast<double>(work) / secs, sim.time(), obs_name, obs);
    first_point = false;
    std::fflush(stdout);
  }
  std::printf("\n     ]}");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t max_n =
      pops::by_scale<std::uint64_t>(1000000000ULL, 100000000000ULL, 1000000000000ULL);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-n=", 8) == 0) {
      max_n = std::strtoull(argv[i] + 8, nullptr, 10);
    }
  }

  std::printf("{\n  \"bench\": \"bench_compiled_scaling\",\n  \"configs\": [\n");

  {
    const auto proto = pops::log_size_tiny();
    // Observable: worker count — ~Binomial(n, 1/2) spread across trials once
    // Partition-Into-A/S completes (Lemma 3.2), so the chi-square has real
    // degrees of freedom at any horizon (completion-style observables are
    // degenerate at n = 1000 until far later; the test suite covers those at
    // n = 128 where their horizons are calibrated).
    report("log_size_estimation/tiny", proto, proto.geometric_cap(), max_n,
           /*eq_interactions=*/25000, /*eq_seed=*/0x9E10,
           [](const pops::LogSizeEstimation::State& s) { return s.role == pops::Role::A; },
           "workers");
  }
  if (pops::bench_scale() >= 1) {
    const auto proto = pops::log_size_small();
    report("log_size_estimation/small", proto, proto.geometric_cap(), max_n,
           /*eq_interactions=*/30000, /*eq_seed=*/0x9E11,
           [](const pops::LogSizeEstimation::State& s) { return s.role == pops::Role::A; },
           "workers");
  }
  {
    const auto proto = pops::bounded_majority(0.55);
    report("uniform_majority/bias_0.55", proto, proto.geometric_cap(), max_n,
           /*eq_interactions=*/1000, /*eq_seed=*/0x9E12,
           [](const pops::Composed<pops::VotedMajorityStage>::State& s) {
             return s.down.output > 0;
           },
           "output_positive");
  }
  {
    const auto proto = pops::bounded_leader_election(4);
    report("uniform_leader_election/bits_4", proto, proto.geometric_cap(), max_n,
           /*eq_interactions=*/1200, /*eq_seed=*/0x9E13,
           [](const pops::UniformLeaderElection::State& s) { return s.down.contender; },
           "contenders");
  }

  std::printf("\n  ]\n}\n");
  return 0;
}
