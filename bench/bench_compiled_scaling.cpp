// COMPILED — the paper's headline constructions, compiled to FiniteSpecs and
// run on the batched Θ(√n)-per-epoch engine at n = 10^8 … 10^12.
//
// Per configuration the bench reports three things as JSON
// (./bench_compiled_scaling > BENCH_compiled.json):
//
//   * compile — state count, transition count, compile time: the measured
//     size of the bounded-field regime (the paper's Θ(log⁴ n) with log n
//     frozen at the cap).  Lazy configs report the JIT's interned states /
//     compiled pairs instead — the slice of the (eager-infeasible) closure
//     that runs actually touch;
//   * equivalence — a two-sample chi-square of compiled-batched vs direct
//     AgentSimulation at an overlapping n (trials fan out over threads via
//     run_trials_parallel; lazy batched trials share one JIT table);
//   * scaling — throughput at n = 10^8 … max-n under a fixed interaction
//     budget, plus protocol observables.  AgentSimulation needs Θ(n) memory
//     (≳ 4 GB at n = 10^8 for Log-Size-Estimation) and is simply absent
//     above that, which is the point of the compile-to-counts pipeline.
//
// The c8_lazy config exists only through `LazyCompiledSpec`: its pair space
// (~10¹⁰) is far beyond the eager BFS closure, so it additionally runs an
// n = 10^5 convergence trial first — both a JIT warm-up (interning the
// 10⁴-state working set) and a whole-protocol observable (the converged
// estimate under the saturating cap).
//
// POPS_BENCH_SCALE=0 stops at 10^9 and skips the multi-thousand-state
// presets; =2 (or --max-n=1000000000000) sweeps to 10^12.  --quick shrinks
// every block to a seconds-scale smoke run (tier-2 ctest; catches perf-path
// breakage without a full Release bench).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "compile/lazy.hpp"
#include "core/executor.hpp"
#include "harness/bench_scale.hpp"
#include "harness/equivalence.hpp"
#include "sim/batched_count_simulation.hpp"

namespace {

bool quick = false;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool first_entry = true;

void begin_config(const char* name) {
  std::printf("%s    {\"config\": \"%s\",\n", first_entry ? "" : ",\n", name);
  first_entry = false;
}

std::uint64_t sweep_work() { return quick ? 20000000ULL : 200000000ULL; }
std::uint64_t eq_trials() { return quick ? 30 : pops::by_scale<std::uint64_t>(100, 200, 400); }

/// Throughput sweep shared by the eager and lazy configs.  Fixed interaction
/// budget per point: enough epochs to be representative (≥ ~100 even at
/// 10^12 where an epoch is ~1.25e6 interactions), small enough that the
/// whole sweep stays interactive.  One simulator serves every point
/// (reset() per n) — rebuilding the dispatch table (or re-warming the JIT)
/// per point would dwarf the smaller sweeps.
template <typename Seeder, typename Count>
void print_scaling(pops::BatchedCountSimulation& sim, std::uint64_t max_n,
                   Seeder&& seed, Count&& observe, const char* obs_name) {
  std::printf("     \"scaling\": [\n");
  bool first_point = true;
  for (std::uint64_t n = 100000000ULL; n <= max_n; n *= 10) {
    sim.reset(0xBEEF ^ n);
    seed(sim, n);
    const std::uint64_t work = sweep_work();
    const auto t0 = std::chrono::steady_clock::now();
    sim.steps(work);
    const double secs = seconds_since(t0);
    const std::uint64_t obs = observe(sim);
    std::printf("%s       {\"n\": %" PRIu64 ", \"interactions\": %" PRIu64
                ", \"seconds\": %.4f, \"interactions_per_sec\": %.4e, "
                "\"parallel_time\": %.6g, \"%s\": %" PRIu64,
                first_point ? "" : ",\n", n, work, secs,
                static_cast<double>(work) / secs, sim.time(), obs_name, obs);
    // Serial-epoch column: on a wide executor, re-run the identical point
    // with the pool pinned to one thread.  The (seed, epoch, shard)
    // substream contract makes the two runs bit-identical — asserted here,
    // on every sweep point, not just in the test suite — so the pair of
    // columns is a pure scheduling comparison and their ratio is the
    // single-run parallel-epoch speedup on this machine.
    const unsigned width = pops::Executor::instance().threads();
    if (width > 1) {
      const auto parallel_counts = sim.counts();
      pops::Executor::set_threads(1);
      sim.reset(0xBEEF ^ n);
      seed(sim, n);
      const auto t1 = std::chrono::steady_clock::now();
      sim.steps(work);
      const double serial_secs = seconds_since(t1);
      pops::Executor::set_threads(width);
      if (sim.counts() != parallel_counts) {
        std::fprintf(stderr, "FATAL: epochs not executor-width invariant at n=%" PRIu64 "\n",
                     n);
        std::exit(1);
      }
      std::printf(", \"seconds_width1\": %.4f, \"epoch_speedup\": %.2f",
                  serial_secs, secs > 0.0 ? serial_secs / secs : 1.0);
    }
    std::printf("}");
    first_point = false;
    std::fflush(stdout);
  }
  std::printf("\n     ]");  // caller closes the config object
}

/// One full report for an eagerly compiled protocol: compile stats,
/// chi-square equivalence at small n, throughput sweep to max_n.
template <typename P, typename Obs>
void report(const char* name, const P& proto, std::uint32_t cap, std::uint64_t max_n,
            std::uint64_t eq_interactions, std::uint64_t eq_seed, Obs&& observable,
            const char* obs_name) {
  begin_config(name);

  // Eager compile at full executor width (typed-state interner + parallel
  // closure — bit-identical to the single-threaded sweep at any width).
  const unsigned threads = pops::Executor::instance().threads();
  auto t0 = std::chrono::steady_clock::now();
  const auto compiled = pops::ProtocolCompiler<P>(proto, cap).compile(threads);
  const double compile_secs = seconds_since(t0);
  std::printf("     \"compile\": {\"states\": %u, \"transitions\": %zu, \"pairs\": %" PRIu64
              ", \"paths\": %" PRIu64 ", \"seconds\": %.3f, \"threads\": %u},\n",
              compiled.num_states(), compiled.num_transitions(), compiled.pairs_explored,
              compiled.paths_explored, compile_secs, threads);

  // Equivalence at an n both simulators handle, via the same harness the
  // certification suite uses (harness/equivalence.hpp).  "threads" is the
  // *effective* trial fan-out (executor width capped by the trial count),
  // not the requested one — cross-PR perf diffs compare like with like.
  {
    const std::uint64_t n = 1000, trials = eq_trials();
    const auto chi = pops::compiled_agent_equivalence(proto, compiled, n, eq_interactions,
                                                      trials, eq_seed, observable);
    std::printf("     \"equivalence\": {\"n\": %" PRIu64 ", \"interactions\": %" PRIu64
                ", \"trials\": %" PRIu64
                ", \"observable\": \"%s\", \"chi2\": %.3f, \"df\": %" PRIu64
                ", \"accept\": %s, \"threads\": %u},\n",
                n, eq_interactions, trials, obs_name, chi.statistic, chi.df,
                chi.accept() ? "true" : "false", pops::effective_trial_threads(trials));
  }

  pops::BatchedCountSimulation sim(compiled.spec, 0);
  print_scaling(
      sim, max_n,
      [&](pops::BatchedCountSimulation& s, std::uint64_t n) {
        pops::Rng seeder(0x5EED ^ n);
        compiled.seed_initial(s, n, seeder);
      },
      [&](const pops::BatchedCountSimulation& s) {
        return compiled.count_matching(s.counts(), observable);
      },
      obs_name);
  std::printf("}");
}

/// Lazy-config report: JIT warm-up convergence run, equivalence, sweep, and
/// the interned-state accounting that replaces the eager compile record.
template <typename P, typename Obs>
void report_lazy(const char* name, const P& proto, std::uint32_t cap, std::uint64_t max_n,
                 std::uint64_t eq_interactions, std::uint64_t eq_seed, Obs&& observable,
                 const char* obs_name) {
  begin_config(name);

  pops::LazyCompiledSpec<P> lazy(proto, cap);
  pops::BatchedCountSimulation sim(lazy, 0);

  // Convergence trial at n = 10^5: runs the whole (time × epoch) cycle, so
  // it interns the protocol's working set (the sweep's giant-n points sit in
  // the partition transient and touch far fewer states).  Reported as its
  // own record; skipped under --quick.
  if (!quick) {
    const std::uint64_t n = 100000;
    sim.reset(0xC0FFEE);
    pops::Rng seeder(0x5EED);
    lazy.seed_initial(sim, n, seeder);
    const auto t0 = std::chrono::steady_clock::now();
    const double t_conv = sim.run_until(
        [&](const pops::BatchedCountSimulation& s) {
          return lazy.count_matching(s.counts(), [](const auto& st) {
                   return !st.protocol_done;
                 }) == 0;
        },
        25.0, 5000.0);
    std::printf("     \"convergence\": {\"n\": %" PRIu64
                ", \"parallel_time\": %.1f, \"seconds\": %.2f, \"%s\": %" PRIu64 "},\n",
                n, t_conv, seconds_since(t0), obs_name,
                lazy.count_matching(sim.counts(), observable));
  }

  {
    // Lazy equivalence trials ride run_trials_parallel on the shared JIT
    // table.  Three batched passes: an untimed warm-up (compiles every pair
    // the trial set touches, so the timed passes compare scheduling rather
    // than JIT cost), a timed serial pass and a timed parallel pass — the
    // sharded JIT's thread-count invariance means the two passes must agree
    // value for value, which is asserted here, and the ratio is the
    // measured trial-fan-out speedup on this machine.
    const std::uint64_t n = 1000, trials = eq_trials();
    const unsigned threads = pops::Executor::instance().threads();
    const auto agent_hist = pops::agent_observable_histogram(proto, n, eq_interactions,
                                                             trials, eq_seed, observable);
    (void)pops::lazy_trial_values(lazy, n, eq_interactions, trials, eq_seed, observable,
                                  threads);  // warm-up
    auto t0 = std::chrono::steady_clock::now();
    const auto serial = pops::lazy_trial_values(lazy, n, eq_interactions, trials, eq_seed,
                                                observable, 1);
    const double serial_secs = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    const auto parallel = pops::lazy_trial_values(lazy, n, eq_interactions, trials,
                                                  eq_seed, observable, threads);
    const double parallel_secs = seconds_since(t0);
    if (serial != parallel) {
      std::fprintf(stderr, "FATAL: lazy trial values not thread-count invariant\n");
      std::exit(1);
    }
    std::map<std::uint64_t, std::uint64_t> count_hist;
    for (const auto v : parallel) ++count_hist[v];
    const auto chi = pops::two_sample_chi_square(agent_hist, count_hist);
    std::printf("     \"equivalence\": {\"n\": %" PRIu64 ", \"interactions\": %" PRIu64
                ", \"trials\": %" PRIu64
                ", \"observable\": \"%s\", \"chi2\": %.3f, \"df\": %" PRIu64
                ", \"accept\": %s, \"threads\": %u, \"batched_seconds_serial\": %.4f, "
                "\"batched_seconds_parallel\": %.4f, \"parallel_speedup\": %.2f},\n",
                n, eq_interactions, trials, obs_name, chi.statistic, chi.df,
                chi.accept() ? "true" : "false",
                pops::effective_trial_threads(trials, threads), serial_secs, parallel_secs,
                parallel_secs > 0.0 ? serial_secs / parallel_secs : 1.0);
  }

  print_scaling(
      sim, max_n,
      [&](pops::BatchedCountSimulation& s, std::uint64_t n) {
        pops::Rng seeder(0x5EED ^ n);
        lazy.seed_initial(s, n, seeder);
      },
      [&](const pops::BatchedCountSimulation& s) {
        return lazy.count_matching(s.counts(), observable);
      },
      obs_name);
  // The JIT accounting comes last so it reflects everything the config ran.
  // null_pairs is the compact-null share of the table (a row-slot code, no
  // Cell record — the dominant kind once the protocol saturates).
  std::printf(",\n     \"lazy\": {\"states_interned\": %u, \"pairs_compiled\": %zu, "
              "\"null_pairs\": %zu, \"paths\": %" PRIu64 "}}",
              lazy.num_states(), lazy.pairs_compiled(), lazy.null_pairs_compiled(),
              lazy.paths_explored());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t max_n =
      pops::by_scale<std::uint64_t>(1000000000ULL, 100000000000ULL, 1000000000000ULL);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-n=", 8) == 0) {
      max_n = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      max_n = 100000000ULL;
    }
  }

  std::printf("{\n  \"bench\": \"bench_compiled_scaling\",\n"
              "  \"hardware_concurrency\": %u,\n  \"executor_threads\": %u,\n"
              "  \"epoch_shards\": %u,\n  \"configs\": [\n",
              std::max(1u, std::thread::hardware_concurrency()),
              pops::Executor::instance().threads(),
              pops::BatchedCountSimulation::max_epoch_shards());

  {
    const auto proto = pops::log_size_tiny();
    // Observable: worker count — ~Binomial(n, 1/2) spread across trials once
    // Partition-Into-A/S completes (Lemma 3.2), so the chi-square has real
    // degrees of freedom at any horizon (completion-style observables are
    // degenerate at n = 1000 until far later; the test suite covers those at
    // n = 128 where their horizons are calibrated).
    report("log_size_estimation/tiny", proto, proto.geometric_cap(), max_n,
           /*eq_interactions=*/25000, /*eq_seed=*/0x9E10,
           [](const pops::LogSizeEstimation::State& s) { return s.role == pops::Role::A; },
           "workers");
  }
  if (pops::bench_scale() >= 1 && !quick) {
    const auto proto = pops::log_size_small();
    report("log_size_estimation/small", proto, proto.geometric_cap(), max_n,
           /*eq_interactions=*/30000, /*eq_seed=*/0x9E11,
           [](const pops::LogSizeEstimation::State& s) { return s.role == pops::Role::A; },
           "workers");
  }
  {
    // JIT-only: the eager closure of this preset is infeasible (see
    // compile/headline.hpp); runs in every mode since the lazy path is the
    // thing --quick must smoke-test.
    const auto proto = pops::log_size_c8();
    report_lazy("log_size_estimation/c8_lazy", proto, proto.geometric_cap(),
                std::min<std::uint64_t>(max_n, 10000000000ULL),
                /*eq_interactions=*/30000, /*eq_seed=*/0x9E14,
                [](const pops::LogSizeEstimation::State& s) { return s.role == pops::Role::A; },
                "workers");
  }
  {
    const auto proto = pops::bounded_majority(0.55);
    report("uniform_majority/bias_0.55", proto, proto.geometric_cap(), max_n,
           /*eq_interactions=*/1000, /*eq_seed=*/0x9E12,
           [](const pops::Composed<pops::VotedMajorityStage>::State& s) {
             return s.down.output > 0;
           },
           "output_positive");
  }
  {
    const auto proto = pops::bounded_leader_election(4);
    report("uniform_leader_election/bits_4", proto, proto.geometric_cap(), max_n,
           /*eq_interactions=*/1200, /*eq_seed=*/0x9E13,
           [](const pops::UniformLeaderElection::State& s) { return s.down.contender; },
           "contenders");
  }

  std::printf("\n  ]\n}\n");
  return 0;
}
