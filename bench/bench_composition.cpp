// COMP — the composition scheme of §1.1 in action: uniformized leader
// election and uniformized exact majority, built from the weak size estimate
// + leaderless stage clock + restart.  Reports success rates and times.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/uniform_leader_election.hpp"
#include "core/uniform_majority.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  pops::banner("COMP: composing downstream protocols with the size estimate (paper sec 1.1)");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(4, 12, 40);
  const std::vector<std::uint64_t> sizes = pops::bench_scale() == 0
                                               ? std::vector<std::uint64_t>{256}
                                               : std::vector<std::uint64_t>{256, 1024, 4096};

  Table le({"n", "trials", "success(1 leader)", "mean_time", "time/log^2"});
  for (const auto n : sizes) {
    std::uint64_t wins = 0;
    pops::Summary time;
    for (std::uint64_t t = 0; t < trials; ++t) {
      auto proto = pops::make_uniform_leader_election();
      pops::AgentSimulation<pops::UniformLeaderElection> sim(
          proto, n, pops::trial_seed(0xC01, n + t));
      const double tt = sim.run_until(
          [](const pops::AgentSimulation<pops::UniformLeaderElection>& s) {
            return pops::clock_finished(s);
          },
          25.0, 1e7);
      if (tt < 0.0) continue;
      sim.advance_time(100.0);  // final best-propagation sweep
      time.add(tt);
      wins += pops::count_contenders(sim) == 1 ? 1 : 0;
    }
    const double logn = std::log2(static_cast<double>(n));
    le.row({Table::num(n), Table::num(trials),
            Table::num(static_cast<double>(wins) / static_cast<double>(trials), 3),
            Table::num(time.mean(), 0), Table::num(time.mean() / (logn * logn), 1)});
  }
  std::cout << "\nuniform leader election (random-bit tournament over K(s) stages):\n";
  le.print();

  Table mj({"n", "majority%", "trials", "success(all output majority)"});
  for (const auto n : sizes) {
    for (int pct : {55, 60, 70}) {
      std::uint64_t wins = 0;
      for (std::uint64_t t = 0; t < trials; ++t) {
        auto proto = pops::make_uniform_majority();
        pops::AgentSimulation<pops::UniformMajority> sim(proto, n,
                                                         pops::trial_seed(0xC02, n * pct + t));
        pops::assign_votes(sim, n * static_cast<std::uint64_t>(pct) / 100);
        const double tt = sim.run_until(
            [](const pops::AgentSimulation<pops::UniformMajority>& s) {
              return pops::clock_finished(s);
            },
            25.0, 1e7);
        if (tt < 0.0) continue;
        sim.advance_time(200.0);
        wins += pops::output_agreement(sim, +1) == 1.0 ? 1 : 0;
      }
      mj.row({Table::num(n), Table::num(static_cast<std::int64_t>(pct)), Table::num(trials),
              Table::num(static_cast<double>(wins) / static_cast<double>(trials), 3)});
    }
  }
  std::cout << "\nuniform majority (cancellation/doubling synchronized by the clock):\n";
  mj.print();
  std::cout << "\nexpected: leader election success ~1.0 with time/log^2 flat (it is the\n"
            << "same O(log^2 n) budget as the estimator); majority success ~1.0 for\n"
            << "constant-fraction gaps, improving with the gap.\n";
  return 0;
}
