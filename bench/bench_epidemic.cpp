// EPI — epidemic completion times vs the paper's bounds (Lemma A.1,
// Corollaries 3.4/3.5): E[T] = ((n−1)/n) H_{n−1} ≈ ln n; upper tail
// Pr[T > 24 ln n] < 4 n^{−5}; subpopulation (a = n/3) epidemics complete
// within 24 ln a w.p. >= 1 − 27 n^{−3} and are a constant factor slower.
//
// Runs on `BatchedCountSimulation` (Θ(√n) interactions per RNG epoch) by
// default, which is what makes the n = 10^5–10^6 rows cheap; pass
// --sequential to use the per-interaction `CountSimulation` instead (useful
// for A/B-ing the engines — both are distribution-exact for the same chain).
// Trials fan out over threads via run_trials_parallel: per-trial seed
// streams depend only on (master seed, index), so results are identical
// whatever the thread count.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <vector>

#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "proto/epidemic.hpp"
#include "sim/batched_count_simulation.hpp"
#include "sim/count_simulation.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"

namespace {

template <typename Sim>
double full_epidemic_time(std::uint64_t n, std::uint64_t seed) {
  Sim sim(pops::epidemic_spec(), seed);
  sim.set_count("S", n - 1);
  sim.set_count("I", 1);
  return sim.run_until([](const Sim& s) { return s.count("S") == 0; }, 0.25, 1e7);
}

template <typename Sim>
double subpopulation_epidemic_time(std::uint64_t n, std::uint64_t seed) {
  const std::uint64_t active = n / 3;
  Sim sim(pops::subpopulation_epidemic_spec(), seed);
  sim.set_count("S", active - 1);
  sim.set_count("I", 1);
  sim.set_count("B", n - active);
  return sim.run_until([](const Sim& s) { return s.count("S") == 0; }, 0.25, 1e7);
}

template <typename Sim>
void run(std::uint64_t trials, const std::vector<std::uint64_t>& sizes) {
  using pops::Table;

  Table full({"n", "mean_T", "E[T]_lemmaA1", "max_T", "24*ln(n)", "tail_viol"});
  for (const auto n : sizes) {
    const auto times = pops::run_trials_parallel(
        trials, 0xE21 + n,
        [&](std::uint64_t seed, std::uint64_t) { return full_epidemic_time<Sim>(n, seed); });
    pops::Summary s;
    std::uint64_t violations = 0;
    const double cap = 24.0 * std::log(static_cast<double>(n));
    for (const double v : times) {
      s.add(v);
      violations += v > cap ? 1 : 0;
    }
    full.row({Table::num(n), Table::num(s.mean(), 2),
              Table::num(pops::bounds::epidemic_expected_time(n), 2),
              Table::num(s.max(), 2), Table::num(cap, 1), Table::num(violations)});
  }
  std::cout << "\nfull-population epidemic (i,j -> j,j):\n";
  full.print();

  Table sub({"n", "a=n/3", "mean_T", "max_T", "24*ln(a)", "mean_slowdown_vs_full"});
  for (const auto n : sizes) {
    if (n > 100000) continue;  // subpopulation runs are ~9x slower
    const std::uint64_t a = n / 3;
    const auto sub_times = pops::run_trials_parallel(
        trials, 0xE22 + n, [&](std::uint64_t seed, std::uint64_t) {
          return subpopulation_epidemic_time<Sim>(n, seed);
        });
    const auto full_times = pops::run_trials_parallel(
        trials, 0xE23 + n,
        [&](std::uint64_t seed, std::uint64_t) { return full_epidemic_time<Sim>(n, seed); });
    pops::Summary s, f;
    for (const double v : sub_times) s.add(v);
    for (const double v : full_times) f.add(v);
    sub.row({Table::num(n), Table::num(a), Table::num(s.mean(), 2), Table::num(s.max(), 2),
             Table::num(24.0 * std::log(static_cast<double>(a)), 1),
             Table::num(s.mean() / f.mean(), 2)});
  }
  std::cout << "\nsubpopulation epidemic among a = n/3 agents (Corollary 3.4 setting):\n";
  sub.print();
  std::cout << "\nexpected: mean_T tracks E[T] ~ ln n; no tail violations; subpopulation\n"
            << "slowdown a constant factor (theory: ~n^2/a^2 / (n/a) interactions ratio).\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool sequential = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sequential") == 0) sequential = true;
  }

  pops::banner("EPI: epidemic completion time vs Lemma A.1 / Corollaries 3.4-3.5");
  std::cout << "engine: " << (sequential ? "CountSimulation (--sequential)"
                                         : "BatchedCountSimulation (default)")
            << "\n";

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(10, 40, 100);
  const std::vector<std::uint64_t> sizes = pops::bench_scale() == 0
                                               ? std::vector<std::uint64_t>{1000, 10000}
                                               : std::vector<std::uint64_t>{1000, 10000,
                                                                            100000, 1000000};

  if (sequential) {
    run<pops::CountSimulation>(trials, sizes);
  } else {
    run<pops::BatchedCountSimulation>(trials, sizes);
  }
  return 0;
}
