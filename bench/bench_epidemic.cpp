// EPI — epidemic completion times vs the paper's bounds (Lemma A.1,
// Corollaries 3.4/3.5): E[T] = ((n−1)/n) H_{n−1} ≈ ln n; upper tail
// Pr[T > 24 ln n] < 4 n^{−5}; subpopulation (a = n/3) epidemics complete
// within 24 ln a w.p. >= 1 − 27 n^{−3} and are a constant factor slower.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "proto/epidemic.hpp"
#include "sim/count_simulation.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"

namespace {

double full_epidemic_time(std::uint64_t n, std::uint64_t seed) {
  pops::CountSimulation sim(pops::epidemic_spec(), seed);
  sim.set_count("S", n - 1);
  sim.set_count("I", 1);
  return sim.run_until([](const pops::CountSimulation& s) { return s.count("S") == 0; },
                       0.25, 1e7);
}

double subpopulation_epidemic_time(std::uint64_t n, std::uint64_t seed) {
  const std::uint64_t active = n / 3;
  pops::CountSimulation sim(pops::subpopulation_epidemic_spec(), seed);
  sim.set_count("S", active - 1);
  sim.set_count("I", 1);
  sim.set_count("B", n - active);
  return sim.run_until([](const pops::CountSimulation& s) { return s.count("S") == 0; },
                       0.25, 1e7);
}

}  // namespace

int main() {
  using pops::Table;
  pops::banner("EPI: epidemic completion time vs Lemma A.1 / Corollaries 3.4-3.5");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(10, 40, 100);
  const std::vector<std::uint64_t> sizes = pops::bench_scale() == 0
                                               ? std::vector<std::uint64_t>{1000, 10000}
                                               : std::vector<std::uint64_t>{1000, 10000,
                                                                            100000, 1000000};

  Table full({"n", "mean_T", "E[T]_lemmaA1", "max_T", "24*ln(n)", "tail_viol"});
  for (const auto n : sizes) {
    pops::Summary s;
    std::uint64_t violations = 0;
    const double cap = 24.0 * std::log(static_cast<double>(n));
    for (std::uint64_t t = 0; t < trials; ++t) {
      const double v = full_epidemic_time(n, pops::trial_seed(0xE21, n + t));
      s.add(v);
      violations += v > cap ? 1 : 0;
    }
    full.row({Table::num(n), Table::num(s.mean(), 2),
              Table::num(pops::bounds::epidemic_expected_time(n), 2),
              Table::num(s.max(), 2), Table::num(cap, 1), Table::num(violations)});
  }
  std::cout << "\nfull-population epidemic (i,j -> j,j):\n";
  full.print();

  Table sub({"n", "a=n/3", "mean_T", "max_T", "24*ln(a)", "mean_slowdown_vs_full"});
  for (const auto n : sizes) {
    if (n > 100000) continue;  // subpopulation runs are ~9x slower
    pops::Summary s, f;
    const std::uint64_t a = n / 3;
    for (std::uint64_t t = 0; t < trials; ++t) {
      s.add(subpopulation_epidemic_time(n, pops::trial_seed(0xE22, n + t)));
      f.add(full_epidemic_time(n, pops::trial_seed(0xE23, n + t)));
    }
    sub.row({Table::num(n), Table::num(a), Table::num(s.mean(), 2), Table::num(s.max(), 2),
             Table::num(24.0 * std::log(static_cast<double>(a)), 1),
             Table::num(s.mean() / f.mean(), 2)});
  }
  std::cout << "\nsubpopulation epidemic among a = n/3 agents (Corollary 3.4 setting):\n";
  sub.print();
  std::cout << "\nexpected: mean_T tracks E[T] ~ ln n; no tail violations; subpopulation\n"
            << "slowdown a constant factor (theory: ~n^2/a^2 / (n/a) interactions ratio).\n";
  return 0;
}
