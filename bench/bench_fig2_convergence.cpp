// FIG2 — reproduces Figure 2 of the paper: simulated convergence time of
// Log-Size-Estimation vs population size.
//
// Paper setup: 10 experiments at each n ∈ {10^2, 10^3, 10^4, 10^5}; the
// population-size axis is logarithmic, so O(c log² n) time is a parabola-ish
// line; convergence is defined as (a) every agent reaching
// epoch = 5·logSize2 and (b) the estimate landing within 2 of log n (the
// paper observes the estimate is "always within 2" in practice).
//
// Paper values (read off Figure 2): convergence times rise from ~10^3-ish at
// n = 100 to ~5·10^4–3.5·10^5 at n = 10^5, with large spread driven by the
// sampled logSize2 (time ∝ logSize2², and logSize2 varies by 2x).
//
// Two engines:
//   * the paper's unbounded protocol on AgentSimulation (trials fanned over
//     threads via run_trials_parallel; pass --agent-only to stop there);
//   * the finite-state configuration — Bounded<LogSizeEstimation> compiled
//     to a FiniteSpec (src/compile/) — on BatchedCountSimulation, which
//     extends the sweep to n = 10^8 where the agent array alone would need
//     gigabytes.  The bounded regime saturates the estimate at the field
//     cap, so this section reports convergence time and the (saturated)
//     estimate rather than the within-2 criterion; the point is the time
//     scaling, which the cap freezes at O(cap²) per epoch count.
//
// POPS_BENCH_SCALE=2 adds the paper's n = 10^5 agent point (~15 min/trial on
// one core) and the n = 10^8 compiled point; the default stops earlier.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <set>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "core/log_size_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/batched_count_simulation.hpp"
#include "stats/summary.hpp"

namespace {

struct TrialResult {
  double time = -1.0;
  double error = 0.0;
  bool within_two = false;
};

TrialResult one_trial(std::uint64_t n, std::uint64_t seed) {
  using pops::LogSizeEstimation;
  pops::AgentSimulation<LogSizeEstimation> sim(LogSizeEstimation{}, n, seed);
  TrialResult r;
  r.time = sim.run_until(
      [](const pops::AgentSimulation<LogSizeEstimation>& s) { return pops::converged(s); },
      50.0, 5e7);
  if (r.time < 0.0) return r;
  const double logn = std::log2(static_cast<double>(n));
  r.error = std::abs(static_cast<double>(pops::estimate(sim)) - logn);
  r.within_two = r.error <= 2.0;
  return r;
}

void agent_section() {
  using pops::Table;

  struct Point {
    std::uint64_t n;
    std::uint64_t trials;
  };
  std::vector<Point> points;
  switch (pops::bench_scale()) {
    case 0:
      points = {{100, 3}, {316, 3}, {1000, 2}};
      break;
    case 2:
      points = {{100, 10}, {316, 10}, {1000, 10}, {3162, 10}, {10000, 10}, {31623, 3},
                {100000, 2}};
      break;
    default:
      points = {{100, 10}, {316, 10}, {1000, 10}, {3162, 5}, {10000, 3}};
  }

  Table per_trial({"n", "trial", "parallel_time", "abs_error", "within_2"});
  Table summary({"n", "trials", "mean_time", "min_time", "max_time", "time/log2(n)^2",
                 "frac_within_2"});

  for (const auto& p : points) {
    const auto results = pops::run_trials_parallel(
        p.trials, 0xF162 + p.n,
        [&](std::uint64_t seed, std::uint64_t) { return one_trial(p.n, seed); });
    pops::Summary times;
    std::uint64_t within = 0;
    for (std::uint64_t t = 0; t < results.size(); ++t) {
      const auto& r = results[t];
      if (r.time < 0.0) {
        per_trial.row({Table::num(p.n), Table::num(t), "timeout", "-", "-"});
        continue;
      }
      times.add(r.time);
      within += r.within_two ? 1 : 0;
      per_trial.row({Table::num(p.n), Table::num(t), Table::num(r.time, 0),
                     Table::num(r.error, 2), r.within_two ? "yes" : "no"});
    }
    const double logn = std::log2(static_cast<double>(p.n));
    summary.row({Table::num(p.n), Table::num(p.trials), Table::num(times.mean(), 0),
                 Table::num(times.min(), 0), Table::num(times.max(), 0),
                 Table::num(times.mean() / (logn * logn), 1),
                 Table::num(static_cast<double>(within) / static_cast<double>(p.trials), 2)});
  }

  std::cout << "\nper-trial scatter (the dots of Figure 2):\n";
  per_trial.print();
  std::cout << "\nsummary per population size:\n";
  summary.print();
  std::cout << "\nexpected shape: time/log2(n)^2 roughly flat (O(log^2 n) claim of Thm 3.1);\n"
            << "frac_within_2 ~ 1.0 (the paper's 'in practice always within 2').\n";
}

void compiled_section() {
  using pops::Table;
  const auto proto = pops::log_size_tiny();
  const auto compiled = pops::ProtocolCompiler<pops::Bounded<pops::LogSizeEstimation>>(
                            proto, proto.geometric_cap())
                            .compile();
  std::cout << "\ncompiled finite-state configuration (bounded-field regime, cap "
            << proto.geometric_cap() << "): " << compiled.num_states() << " states, "
            << compiled.num_transitions() << " transitions, on BatchedCountSimulation\n";

  // Convergence in the count world: no agent lacks an output, and all states
  // holding agents agree on one output value.
  const auto converged = [&](const pops::BatchedCountSimulation& sim) {
    const auto counts = sim.counts();
    if (compiled.count_matching(counts, [](const auto& s) { return !s.has_output; }) > 0) {
      return false;
    }
    std::set<std::int32_t> outputs;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) outputs.insert(compiled.states[i].output);
    }
    return outputs.size() == 1;
  };

  std::vector<std::uint64_t> sizes;
  switch (pops::bench_scale()) {
    case 0:
      sizes = {10000, 1000000};
      break;
    case 2:
      sizes = {10000, 1000000, 100000000};
      break;
    default:
      sizes = {10000, 1000000, 10000000};
  }
  const std::uint64_t trials = pops::by_scale<std::uint64_t>(2, 5, 5);

  Table table({"n", "trial", "parallel_time", "estimate(saturated)"});
  pops::BatchedCountSimulation sim(compiled.spec, 0);  // reset() per trial:
  for (const auto n : sizes) {                         // the CSR build dwarfs a trial
    for (std::uint64_t t = 0; t < trials; ++t) {
      sim.reset(pops::trial_seed(0xF2C0 + n, t));
      pops::Rng seeder(pops::trial_seed(0xF2C1 + n, t));
      compiled.seed_initial(sim, n, seeder);
      const double time = sim.run_until(converged, 10.0, 2000.0);
      std::int32_t estimate = -1;
      const auto counts = sim.counts();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] != 0) {
          estimate = compiled.states[i].output;
          break;
        }
      }
      table.row({Table::num(n), Table::num(t),
                 time < 0.0 ? "timeout" : Table::num(time, 0),
                 Table::num(static_cast<std::int64_t>(estimate))});
    }
  }
  table.print();
  std::cout << "\nexpected: convergence time flat-ish in n (the cap freezes the O(log^2 n)\n"
            << "epoch structure at O(cap^2)) plus an O(log n) epidemic term; the estimate\n"
            << "saturates at the cap's ceiling — raising the cap, not n, moves it.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool agent_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--agent-only") == 0) agent_only = true;
  }

  pops::banner("FIG2: Log-Size-Estimation convergence time vs population size (paper Fig. 2)");
  std::cout << "convergence = all agents reach epoch = 5*logSize2 and agree on the output;\n"
            << "paper shape: time grows ~ log^2 n with wide spread (time ~ logSize2^2,\n"
            << "and the sampled logSize2 varies by a factor of ~2 between runs).\n";

  agent_section();
  if (!agent_only) compiled_section();
  return 0;
}
