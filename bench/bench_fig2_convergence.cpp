// FIG2 — reproduces Figure 2 of the paper: simulated convergence time of
// Log-Size-Estimation vs population size.
//
// Paper setup: 10 experiments at each n ∈ {10^2, 10^3, 10^4, 10^5}; the
// population-size axis is logarithmic, so O(c log² n) time is a parabola-ish
// line; convergence is defined as (a) every agent reaching
// epoch = 5·logSize2 and (b) the estimate landing within 2 of log n (the
// paper observes the estimate is "always within 2" in practice).
//
// Paper values (read off Figure 2): convergence times rise from ~10^3-ish at
// n = 100 to ~5·10^4–3.5·10^5 at n = 10^5, with large spread driven by the
// sampled logSize2 (time ∝ logSize2², and logSize2 varies by 2x).
//
// POPS_BENCH_SCALE=2 adds the paper's n = 10^5 point (~15 min/trial on one
// core); the default stops at 10^4.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/log_size_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

namespace {

struct TrialResult {
  double time = -1.0;
  double error = 0.0;
  bool within_two = false;
};

TrialResult one_trial(std::uint64_t n, std::uint64_t seed) {
  using pops::LogSizeEstimation;
  pops::AgentSimulation<LogSizeEstimation> sim(LogSizeEstimation{}, n, seed);
  TrialResult r;
  r.time = sim.run_until(
      [](const pops::AgentSimulation<LogSizeEstimation>& s) { return pops::converged(s); },
      50.0, 5e7);
  if (r.time < 0.0) return r;
  const double logn = std::log2(static_cast<double>(n));
  r.error = std::abs(static_cast<double>(pops::estimate(sim)) - logn);
  r.within_two = r.error <= 2.0;
  return r;
}

}  // namespace

int main() {
  using pops::Table;
  pops::banner("FIG2: Log-Size-Estimation convergence time vs population size (paper Fig. 2)");
  std::cout << "convergence = all agents reach epoch = 5*logSize2 and agree on the output;\n"
            << "paper shape: time grows ~ log^2 n with wide spread (time ~ logSize2^2,\n"
            << "and the sampled logSize2 varies by a factor of ~2 between runs).\n";

  struct Point {
    std::uint64_t n;
    std::uint64_t trials;
  };
  std::vector<Point> points;
  switch (pops::bench_scale()) {
    case 0:
      points = {{100, 3}, {316, 3}, {1000, 2}};
      break;
    case 2:
      points = {{100, 10}, {316, 10}, {1000, 10}, {3162, 10}, {10000, 10}, {31623, 3},
                {100000, 2}};
      break;
    default:
      points = {{100, 10}, {316, 10}, {1000, 10}, {3162, 5}, {10000, 3}};
  }

  Table per_trial({"n", "trial", "parallel_time", "abs_error", "within_2"});
  Table summary({"n", "trials", "mean_time", "min_time", "max_time", "time/log2(n)^2",
                 "frac_within_2"});

  for (const auto& p : points) {
    pops::Summary times;
    std::uint64_t within = 0;
    for (std::uint64_t t = 0; t < p.trials; ++t) {
      const auto r = one_trial(p.n, pops::trial_seed(0xF162, p.n * 1000 + t));
      if (r.time < 0.0) {
        per_trial.row({Table::num(p.n), Table::num(t), "timeout", "-", "-"});
        continue;
      }
      times.add(r.time);
      within += r.within_two ? 1 : 0;
      per_trial.row({Table::num(p.n), Table::num(t), Table::num(r.time, 0),
                     Table::num(r.error, 2), r.within_two ? "yes" : "no"});
    }
    const double logn = std::log2(static_cast<double>(p.n));
    summary.row({Table::num(p.n), Table::num(p.trials), Table::num(times.mean(), 0),
                 Table::num(times.min(), 0), Table::num(times.max(), 0),
                 Table::num(times.mean() / (logn * logn), 1),
                 Table::num(static_cast<double>(within) / static_cast<double>(p.trials), 2)});
  }

  std::cout << "\nper-trial scatter (the dots of Figure 2):\n";
  per_trial.print();
  std::cout << "\nsummary per population size:\n";
  summary.print();
  std::cout << "\nexpected shape: time/log2(n)^2 roughly flat (O(log^2 n) claim of Thm 3.1);\n"
            << "frac_within_2 ~ 1.0 (the paper's 'in practice always within 2').\n";
  return 0;
}
