// LEAD — Theorem 3.13: terminating size estimation with one initial leader.
// Measures: when the estimation converged vs when the leader's phase-clock
// timer fired, the premature-termination rate (should be ~0), accuracy at
// termination, and the spread time of the terminated signal.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/leader_terminating_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  using Sim = pops::AgentSimulation<pops::LeaderTerminatingEstimation>;
  pops::banner("LEAD: Theorem 3.13 — terminating size estimation with an initial leader");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(2, 4, 10);
  const std::vector<std::uint64_t> sizes = pops::bench_scale() == 0
                                               ? std::vector<std::uint64_t>{128}
                                               : std::vector<std::uint64_t>{128, 512, 1024};

  Table table({"n", "conv_time", "signal_time", "signal/conv", "all_term_time", "premature",
               "|err|_at_term"});
  for (const auto n : sizes) {
    pops::Summary conv, signal, all_term, err;
    std::uint64_t premature = 0;
    const double logn = std::log2(static_cast<double>(n));
    for (std::uint64_t t = 0; t < trials; ++t) {
      pops::LeaderTerminatingEstimation proto;
      Sim sim(proto, n, pops::trial_seed(0x1EAD, n + t));
      pops::Rng rng(pops::trial_seed(0x1EAE, n + t));
      sim.set_state(0, proto.make_leader(rng));

      double conv_at = -1.0;
      double signal_at = -1.0;
      while (sim.time() < 1e8) {
        if (conv_at < 0.0) {
          bool done = true;
          for (const auto& a : sim.agents()) {
            if (!a.est.protocol_done) {
              done = false;
              break;
            }
          }
          if (done) conv_at = sim.time();
        }
        if (pops::any_terminated(sim)) {
          signal_at = sim.time();
          break;
        }
        sim.advance_time(50.0);
      }
      if (signal_at < 0.0) continue;
      signal.add(signal_at);
      if (conv_at < 0.0) {
        ++premature;  // signal before estimation finished
        conv_at = signal_at;
      }
      conv.add(conv_at);
      const double t_all = sim.run_until(
          [](const Sim& s) { return pops::all_terminated(s); }, 5.0, 1e8);
      if (t_all >= 0.0) all_term.add(t_all);
      pops::Summary e;
      for (const auto& a : sim.agents()) {
        if (a.est.has_output) e.add(std::abs(static_cast<double>(a.est.output) - logn));
      }
      err.add(e.mean());
    }
    table.row({Table::num(n), Table::num(conv.mean(), 0), Table::num(signal.mean(), 0),
               Table::num(signal.mean() / conv.mean(), 2), Table::num(all_term.mean(), 0),
               Table::num(premature), Table::num(err.mean(), 2)});
  }
  table.print();
  std::cout << "\nexpected: signal_time a small multiple of conv_time (the phase budget\n"
            << "k2*5*logSize2 is calibrated to land past convergence w.h.p.); premature = 0;\n"
            << "error at termination within the Theorem 3.1 band; all_term ~ signal +\n"
            << "O(log n) (epidemic).  Both times scale ~log^2 n — same asymptotics as the\n"
            << "non-terminating protocol, as Theorem 3.13 claims.\n";
  return 0;
}
