// GEO — the statistics engine of the protocol (paper Section D): maxima of
// geometric random variables.  Regenerates as tables:
//   * Lemma D.4 band: log N + 1 < E[M] < log N + 3/2
//   * Lemma D.7 tails: Pr[M >= 2 log N (+1)] and Pr[M <= log N − log ln N]
//   * Corollary D.6 concentration: Pr[|M − E[M]| >= λ] < 3.31 e^{−λ/2}
//   * Corollary D.10: average of K = 4 log N maxima within 4.7 of log N
//     w.p. >= 1 − 2/N — the Chernoff-for-sums-of-maxima result enabled by the
//     sub-exponential machinery of Lemmas D.2/D.3/D.8.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "sim/rng.hpp"
#include "stats/bounds.hpp"
#include "stats/geometric.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  pops::banner("GEO: maxima of 1/2-geometric RVs — Lemmas D.4/D.7, Corollaries D.6/D.10");
  pops::Rng rng(0x6E0);
  const int draws = pops::by_scale(20000, 200000, 2000000);

  Table d4({"N", "E[M]_exact", "MC_mean", "band_lo=logN+1", "band_hi=logN+1.5", "in_band"});
  for (std::uint64_t n : {50ULL, 1000ULL, 100000ULL, 10000000ULL}) {
    pops::Summary s;
    for (int i = 0; i < draws / 4; ++i) s.add(pops::max_geometric_exact(n, rng));
    const double exact = pops::max_geometric_mean_exact(n);
    const auto band = pops::bounds::lemma_d4_mean_band(n);
    d4.row({Table::num(n), Table::num(exact, 4), Table::num(s.mean(), 4),
            Table::num(band.lo, 3), Table::num(band.hi, 3),
            band.contains(exact) ? "yes" : "NO"});
  }
  std::cout << "\nLemma D.4 — expectation band for M = max of N geometrics:\n";
  d4.print();

  Table d7({"N", "Pr[M>=2logN+2]_MC", "Pr[M<=logN-loglnN]_MC", "bound_1/N"});
  for (std::uint64_t n : {256ULL, 1024ULL, 4096ULL}) {
    const double logn = std::log2(static_cast<double>(n));
    const double lo_cut = logn - std::log2(std::log(static_cast<double>(n)));
    const double hi_cut = 2.0 * logn + 2.0;
    int over = 0, under = 0;
    for (int i = 0; i < draws; ++i) {
      const double m = pops::max_geometric_exact(n, rng);
      over += m >= hi_cut ? 1 : 0;
      under += m <= lo_cut ? 1 : 0;
    }
    d7.row({Table::num(n), Table::num(static_cast<double>(over) / draws, 5),
            Table::num(static_cast<double>(under) / draws, 5),
            Table::num(pops::bounds::lemma_d7_tail(n), 5)});
  }
  std::cout << "\nLemma D.7 — tail bounds (support-{1,2,...} convention shifts the upper\n"
            << "threshold by +2; see tests/test_geometric.cpp):\n";
  d7.print();

  Table d6({"lambda", "Pr[|M-E|>=lambda]_MC", "bound_3.31*e^-l/2"});
  {
    constexpr std::uint64_t kN = 4096;
    const double mean = pops::max_geometric_mean_exact(kN);
    for (double lambda : {2.0, 4.0, 6.0, 8.0, 10.0}) {
      int out = 0;
      for (int i = 0; i < draws; ++i) {
        if (std::abs(pops::max_geometric_exact(kN, rng) - mean) >= lambda) ++out;
      }
      d6.row({Table::num(lambda, 1), Table::num(static_cast<double>(out) / draws, 6),
              Table::num(pops::bounds::max_geometric_concentration_tail(lambda), 6)});
    }
  }
  std::cout << "\nCorollary D.6 — sub-exponential concentration of M (N = 4096):\n";
  d6.print();

  Table d10({"N", "K=4logN", "Pr[|S/K-logN|>=4.7]_MC", "bound_2/N", "mean_S/K-logN"});
  for (std::uint64_t n : {256ULL, 4096ULL, 65536ULL}) {
    const auto logn = static_cast<std::uint64_t>(std::log2(static_cast<double>(n)));
    const std::uint64_t k = 4 * logn;
    int bad = 0;
    pops::Summary centered;
    const int avg_trials = draws / 10;
    for (int i = 0; i < avg_trials; ++i) {
      double sum = 0.0;
      for (std::uint64_t j = 0; j < k; ++j) sum += pops::max_geometric_exact(n, rng);
      const double avg = sum / static_cast<double>(k);
      centered.add(avg - static_cast<double>(logn));
      if (std::abs(avg - static_cast<double>(logn)) >= 4.7) ++bad;
    }
    d10.row({Table::num(n), Table::num(k),
             Table::num(static_cast<double>(bad) / avg_trials, 6),
             Table::num(pops::bounds::cor_d10_tail(n), 6),
             Table::num(centered.mean(), 3)});
  }
  std::cout << "\nCorollary D.10 — averaging K = 4 log N maxima (the protocol's estimator):\n";
  d10.print();
  std::cout << "\nexpected: all MC frequencies at or below their bounds; mean_S/K-logN in\n"
            << "(1, 1.5) per Lemma D.4 (this offset is why the protocol reports sum/K + 1).\n";
  return 0;
}
