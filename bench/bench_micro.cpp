// MICRO — google-benchmark microbenchmarks for the simulation substrate:
// RNG, geometric sampling, pair sampling, Fenwick sampler, and
// interactions/second of the three main simulators.
//
// Emits machine-readable JSON by default (`--benchmark_format=console` to
// override) so `BENCH_*.json` perf-trajectory tracking can diff runs:
//   ./bench_micro --benchmark_out=BENCH_micro.json
// Simulator benchmarks expose an `interactions_per_sec` counter.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/log_size_estimation.hpp"
#include "proto/epidemic.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/batched_count_simulation.hpp"
#include "sim/count_simulation.hpp"
#include "sim/rng.hpp"
#include "sim/weighted_sampler.hpp"
#include "stats/geometric.hpp"

namespace {

void BM_RngNext(benchmark::State& state) {
  pops::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  pops::Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.below(100003));
}
BENCHMARK(BM_RngBelow);

void BM_GeometricFair(benchmark::State& state) {
  pops::Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(rng.geometric_fair());
}
BENCHMARK(BM_GeometricFair);

void BM_OrderedPair(benchmark::State& state) {
  pops::Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(rng.ordered_pair(100000));
}
BENCHMARK(BM_OrderedPair);

void BM_MaxGeometricExact(benchmark::State& state) {
  pops::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pops::max_geometric_exact(static_cast<std::uint64_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_MaxGeometricExact)->Arg(1000)->Arg(1000000);

void BM_WeightedSampler(benchmark::State& state) {
  pops::WeightedSampler ws(64);
  pops::Rng rng(6);
  for (std::size_t i = 0; i < 64; ++i) ws.add(i, 100);
  for (auto _ : state) {
    const auto i = ws.sample(rng);
    ws.add(i, -1);
    ws.add(i, +1);
  }
}
BENCHMARK(BM_WeightedSampler);

void BM_ValueEpidemicInteractions(benchmark::State& state) {
  pops::AgentSimulation<pops::ValueEpidemic> sim(pops::ValueEpidemic{},
                                                 static_cast<std::uint64_t>(state.range(0)),
                                                 7);
  for (auto _ : state) sim.steps(1024);
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.interactions()));
  state.counters["interactions_per_sec"] = benchmark::Counter(
      static_cast<double>(sim.interactions()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ValueEpidemicInteractions)->Arg(1000)->Arg(100000);

void BM_LogSizeEstimationInteractions(benchmark::State& state) {
  pops::AgentSimulation<pops::LogSizeEstimation> sim(
      pops::LogSizeEstimation{}, static_cast<std::uint64_t>(state.range(0)), 8);
  for (auto _ : state) sim.steps(1024);
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.interactions()));
  state.counters["interactions_per_sec"] = benchmark::Counter(
      static_cast<double>(sim.interactions()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LogSizeEstimationInteractions)->Arg(1000)->Arg(100000);

void BM_CountSimulationInteractions(benchmark::State& state) {
  pops::CountSimulation sim(pops::epidemic_spec(), 9);
  sim.set_count("S", static_cast<std::uint64_t>(state.range(0)) - 1);
  sim.set_count("I", 1);
  for (auto _ : state) sim.steps(1024);
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.interactions()));
  state.counters["interactions_per_sec"] = benchmark::Counter(
      static_cast<double>(sim.interactions()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CountSimulationInteractions)->Arg(1000000);

void BM_BatchedCountSimulationInteractions(benchmark::State& state) {
  pops::BatchedCountSimulation sim(pops::epidemic_spec(), 10);
  sim.set_count("S", static_cast<std::uint64_t>(state.range(0)) - 1);
  sim.set_count("I", 1);
  // Step in chunks much larger than the ~0.89*sqrt(n) epoch length so the
  // budget never truncates a batch.
  const std::uint64_t chunk = 1 << 20;
  for (auto _ : state) {
    // Reset once the epidemic saturates so batches stay representative.
    if (sim.count("S") == 0) {
      sim.set_count("S", static_cast<std::uint64_t>(state.range(0)) - 1);
      sim.set_count("I", 1);
    }
    sim.steps(chunk);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.interactions()));
  state.counters["interactions_per_sec"] = benchmark::Counter(
      static_cast<double>(sim.interactions()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchedCountSimulationInteractions)->Arg(1000000)->Arg(100000000);

}  // namespace

// Custom main: default to JSON output (machine-readable perf trajectory);
// any explicit --benchmark_format flag wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_format = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_format", 18) == 0) has_format = true;
  }
  static std::string json_flag = "--benchmark_format=json";
  if (!has_format) args.push_back(json_flag.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
