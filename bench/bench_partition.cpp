// PAR — Partition-Into-A/S measurements (Lemma 3.2, Corollary 3.3): balance
// of the split vs the sqrt(n ln n) deviation bound, the 2e^{−2a²/n} tail, and
// completion time (O(log n) thanks to the catch-up rules).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "proto/partition.hpp"
#include "sim/count_simulation.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  pops::banner("PAR: Partition-Into-A/S — Lemma 3.2 balance and completion time");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(20, 200, 1000);
  const std::vector<std::uint64_t> sizes{1000, 10000, 100000};

  Table table({"n", "trials", "mean_time", "time/ln(n)", "mean_|A-n/2|", "max_|A-n/2|",
               "sqrt(n*ln n)", "frac_in_[n/3,2n/3]"});
  for (const auto n : sizes) {
    pops::Summary time, dev;
    std::uint64_t in_third = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      pops::CountSimulation sim(pops::partition_spec(), pops::trial_seed(0x9A2, n + t));
      sim.set_count("X", n);
      const double tt = sim.run_until(
          [](const pops::CountSimulation& s) { return s.count("X") == 0; }, 0.25, 1e7);
      time.add(tt);
      const double a = static_cast<double>(sim.count("A"));
      dev.add(std::abs(a - static_cast<double>(n) / 2.0));
      const double frac = a / static_cast<double>(n);
      in_third += (frac >= 1.0 / 3.0 && frac <= 2.0 / 3.0) ? 1 : 0;
    }
    const double nd = static_cast<double>(n);
    table.row({Table::num(n), Table::num(trials), Table::num(time.mean(), 2),
               Table::num(time.mean() / std::log(nd), 2), Table::num(dev.mean(), 1),
               Table::num(dev.max(), 1), Table::num(std::sqrt(nd * std::log(nd)), 1),
               Table::num(static_cast<double>(in_third) / static_cast<double>(trials), 3)});
  }
  table.print();

  // Empirical tail vs the Lemma 3.2 bound at a few deviation levels.
  Table tail({"n", "a", "Pr[|A-n/2|>=a]_MC", "bound_2e^{-2a^2/n}"});
  {
    constexpr std::uint64_t kN = 10000;
    const std::uint64_t tail_trials = pops::by_scale<std::uint64_t>(100, 1000, 5000);
    std::vector<double> devs;
    for (std::uint64_t t = 0; t < tail_trials; ++t) {
      pops::CountSimulation sim(pops::partition_spec(), pops::trial_seed(0x9A3, t));
      sim.set_count("X", kN);
      sim.run_until([](const pops::CountSimulation& s) { return s.count("X") == 0; }, 0.25,
                    1e7);
      devs.push_back(
          std::abs(static_cast<double>(sim.count("A")) - static_cast<double>(kN) / 2.0));
    }
    for (double a : {50.0, 100.0, 150.0}) {
      std::uint64_t over = 0;
      for (double d : devs) over += d >= a ? 1 : 0;
      tail.row({Table::num(kN), Table::num(a, 0),
                Table::num(static_cast<double>(over) / static_cast<double>(devs.size()), 4),
                Table::num(pops::bounds::partition_deviation_tail(kN, a), 4)});
    }
  }
  std::cout << "\ndeviation tail at n = 10000 (Lemma 3.2 is a binomial-domination bound,\n"
            << "so the MC frequency must stay below it):\n";
  tail.print();
  std::cout << "\nexpected: time/ln(n) flat; max deviation below sqrt(n ln n);\n"
            << "frac_in_[n/3,2n/3] = 1.0 (Corollary 3.3).\n";
  return 0;
}
