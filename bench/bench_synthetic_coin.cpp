// SYNC — Appendix B: size estimation with a deterministic transition function
// (synthetic coins from the scheduler's sender/receiver choice) vs the
// randomized main protocol: time, accuracy, agreement spread, and the
// O(log^6 n) vs O(log^4 n) state cost (Lemma B.5 vs Lemma 3.9).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/log_size_estimation.hpp"
#include "core/synthetic_coin_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/metrics.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  pops::banner("SYNC: Appendix B deterministic (synthetic-coin) variant vs main protocol");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(2, 5, 10);
  const std::vector<std::uint64_t> sizes = pops::bench_scale() == 0
                                               ? std::vector<std::uint64_t>{256}
                                               : std::vector<std::uint64_t>{256, 1024, 4096};

  Table table({"n", "variant", "mean_time", "mean_|err|", "output_spread", "states_bound"});
  for (const auto n : sizes) {
    const double logn = std::log2(static_cast<double>(n));

    {  // main randomized protocol
      pops::Summary time, err, states;
      for (std::uint64_t t = 0; t < trials; ++t) {
        pops::AgentSimulation<pops::LogSizeEstimation> sim(
            pops::LogSizeEstimation{}, n, pops::trial_seed(0x5C1, n + t));
        pops::FieldRangeRecorder rec;
        while (!pops::converged(sim) && sim.time() < 5e7) {
          sim.advance_time(100.0);
          pops::record_field_ranges(sim, rec);
        }
        time.add(sim.time());
        err.add(std::abs(static_cast<double>(pops::estimate(sim)) - logn));
        states.add(rec.state_count_bound());
      }
      table.row({Table::num(n), "main (random bits)", Table::num(time.mean(), 0),
                 Table::num(err.mean(), 2), "0 (exact agreement)",
                 Table::num(states.mean(), 0)});
    }

    {  // Appendix B variant
      pops::Summary time, err, spread, states;
      for (std::uint64_t t = 0; t < trials; ++t) {
        pops::AgentSimulation<pops::SyntheticCoinEstimation> sim(
            pops::SyntheticCoinEstimation{}, n, pops::trial_seed(0x5C2, n + t));
        pops::FieldRangeRecorder rec;
        while (!pops::converged(sim) && sim.time() < 5e7) {
          sim.advance_time(100.0);
          pops::record_field_ranges(sim, rec);
        }
        time.add(sim.time());
        const auto outs = pops::outputs(sim);
        pops::Summary o;
        for (auto v : outs) o.add(static_cast<double>(v));
        err.add(std::abs(o.mean() - logn));
        spread.add(o.max() - o.min());
        states.add(rec.state_count_bound());
      }
      table.row({Table::num(n), "synthetic coin (App. B)", Table::num(time.mean(), 0),
                 Table::num(err.mean(), 2), Table::num(spread.mean(), 1),
                 Table::num(states.mean(), 0)});
    }
  }
  table.print();
  std::cout << "\nexpected: both variants accurate to O(1); the deterministic variant is\n"
            << "somewhat slower (coin flips cost extra A-F meetings) and uses more states\n"
            << "(every A also stores its own sum: O(log^6) vs O(log^4), Lemma B.5), and\n"
            << "its workers' outputs spread over a small range instead of agreeing exactly.\n";
  return 0;
}
