// TERM — Theorem 4.1 / Lemma 4.2 as an experiment: the termination dichotomy.
//
//  (a) Uniform DENSE protocols that try to delay a `terminated` signal fail:
//      the first-signal time is flat (FixedCountTrigger) or decreasing
//      (HeadsRunTrigger) in n — exactly the O(1) of Theorem 4.1.
//  (b) With a LEADER (Theorem 3.13) the signal time grows like log² n — the
//      density hypothesis is what makes termination impossible.
//  (c) Lemma 4.2 directly: from the 1-dense all-c0 configuration of the
//      FixedCountTrigger spec, every state of the producibility closure Λ^m
//      (including the signal state t) reaches count >= δn by time 1, with δ
//      bounded away from 0 uniformly in n.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/leader_terminating_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/count_simulation.hpp"
#include "stats/summary.hpp"
#include "termination/density.hpp"
#include "termination/producibility.hpp"
#include "termination/terminating_toys.hpp"

namespace {

template <typename P>
double first_signal_time(P proto, std::uint64_t n, std::uint64_t seed) {
  pops::AgentSimulation<P> sim(proto, n, seed);
  return sim.run_until(
      [](const pops::AgentSimulation<P>& s) { return pops::any_terminated(s); }, 0.5, 1e7);
}

double leader_signal_time(std::uint64_t n, std::uint64_t seed) {
  pops::LeaderTerminatingEstimation proto;
  pops::AgentSimulation<pops::LeaderTerminatingEstimation> sim(proto, n, seed);
  pops::Rng rng(seed ^ 0xBEEF);
  sim.set_state(0, proto.make_leader(rng));
  return sim.run_until(
      [](const pops::AgentSimulation<pops::LeaderTerminatingEstimation>& s) {
        return pops::any_terminated(s);
      },
      25.0, 1e8);
}

}  // namespace

int main() {
  using pops::Table;
  pops::banner("TERM: Theorem 4.1 — uniform dense protocols cannot delay termination");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(3, 8, 20);
  const std::vector<std::uint64_t> sizes = pops::bench_scale() == 0
                                               ? std::vector<std::uint64_t>{100, 1000}
                                               : std::vector<std::uint64_t>{100, 1000, 10000,
                                                                            100000};

  Table toys({"n", "fixed_count(T=60)", "heads_run(r=12)", "leader(Thm3.13)"});
  for (const auto n : sizes) {
    pops::Summary fixed, heads;
    for (std::uint64_t t = 0; t < trials; ++t) {
      fixed.add(first_signal_time(pops::FixedCountTrigger{60}, n,
                                  pops::trial_seed(0x7E1, n + t)));
      heads.add(first_signal_time(pops::HeadsRunTrigger{12}, n,
                                  pops::trial_seed(0x7E2, n + t)));
    }
    // The leader protocol is expensive; one trial per n, capped size.
    std::string leader = "-";
    if (n <= (pops::bench_scale() == 0 ? 100ULL : 2048ULL)) {
      leader = Table::num(leader_signal_time(n, pops::trial_seed(0x7E3, n)), 0);
    }
    toys.row({Table::num(n), Table::num(fixed.mean(), 1), Table::num(heads.mean(), 2),
              leader});
  }
  std::cout << "\nmean parallel time until the FIRST terminated=true appears:\n";
  toys.print();
  std::cout << "\nexpected: fixed_count flat at ~T/2 = 30 (O(1), Thm 4.1); heads_run\n"
            << "DECREASING in n (more agents flip more coins); leader GROWING (~log^2 n\n"
            << "— only possible because a leader breaks the density hypothesis).\n";

  // (c) Lemma 4.2: density lemma measurements.
  pops::banner("TERM: Lemma 4.2 — closure states reach delta*n by time 1 from dense configs");
  constexpr std::uint32_t kThreshold = 8;
  const auto spec = pops::fixed_count_trigger_spec(kThreshold);
  pops::ProducibilityClosure closure(spec, {spec.id("c0")}, kThreshold + 1, 1.0);
  Table density({"n", "|closure|", "t_all_present", "min_count/n_at_t=1",
                 "signal_count/n_at_t=1"});
  for (const auto n : sizes) {
    pops::CountSimulation sim(spec, pops::trial_seed(0x7E4, n));
    sim.set_count("c0", n);
    const auto result = pops::measure_density_lemma(sim, closure.closure(), 1.0);
    density.row(
        {Table::num(n), Table::num(static_cast<std::uint64_t>(closure.closure().size())),
         Table::num(result.first_all_present_time, 3), Table::num(result.min_fraction, 4),
         Table::num(static_cast<double>(sim.count("t")) / static_cast<double>(n), 4)});
  }
  density.print();
  std::cout << "\nexpected: for n past the lemma's n0, every state of the (m=" << kThreshold + 1
            << ")-producibility\nclosure — including the terminated signal 't' — is present "
               "by t << 1 with count a\nroughly n-independent fraction of n (Lemma 4.2 holds "
               "for all n >= n0; the smallest\nn may show t_all_present = -1, i.e. the "
               "horizon t=1 is not yet enough there).\n";
  return 0;
}
