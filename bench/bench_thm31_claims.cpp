// T31 — Theorem 3.1 claims table: accuracy (|k − log n| <= 5.7 w.p. >= 1−9/n),
// time O(log² n), and states O(log⁴ n), measured per population size.
//
// The state count is measured as in Lemma 3.9: the product of the ranges the
// protocol's fields actually take during the run (logSize2, gr, time, epoch,
// sum), which is the number of distinct working-tape contents an agent could
// exhibit.  The paper's table bounds: logSize2 <= 2 log n + 1, gr <= 2 log n,
// time <= 191 log n, epoch <= 11 log n, sum <= 22 log² n.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/log_size_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/metrics.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  pops::banner("T31: Theorem 3.1 claims — error <= 5.7, time O(log^2 n), states O(log^4 n)");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(2, 6, 10);
  std::vector<std::uint64_t> sizes =
      pops::bench_scale() == 0 ? std::vector<std::uint64_t>{128, 512}
                               : std::vector<std::uint64_t>{128, 512, 2048, 8192};

  Table table({"n", "mean_|err|", "max_|err|", "frac<=5.7", "9/n_bound", "mean_time",
               "time/log^2", "states_bound", "states/log^4"});

  for (const auto n : sizes) {
    const double logn = std::log2(static_cast<double>(n));
    pops::Summary err, time, states;
    std::uint64_t ok = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      pops::AgentSimulation<pops::LogSizeEstimation> sim(
          pops::LogSizeEstimation{}, n, pops::trial_seed(0x731, n * 100 + t));
      pops::FieldRangeRecorder rec;
      double converged_at = -1.0;
      while (sim.time() < 5e7) {
        if (pops::converged(sim)) {
          converged_at = sim.time();
          break;
        }
        sim.advance_time(100.0);
        pops::record_field_ranges(sim, rec);
      }
      if (converged_at < 0.0) continue;
      const double e = std::abs(static_cast<double>(pops::estimate(sim)) - logn);
      err.add(e);
      time.add(converged_at);
      states.add(rec.state_count_bound());
      ok += e <= 5.7 ? 1 : 0;
    }
    table.row({Table::num(n), Table::num(err.mean(), 2), Table::num(err.max(), 2),
               Table::num(static_cast<double>(ok) / static_cast<double>(trials), 2),
               Table::num(1.0 - pops::bounds::thm31_error_tail(n), 3),
               Table::num(time.mean(), 0), Table::num(time.mean() / (logn * logn), 1),
               Table::num(states.mean(), 0),
               Table::num(states.mean() / std::pow(logn, 4.0), 1)});
  }
  table.print();
  std::cout << "\nexpected: frac<=5.7 at least the 1-9/n bound; time/log^2 and\n"
            << "states/log^4 roughly flat in n (the Theorem 3.1 asymptotics).\n";
  return 0;
}
