// T31 — Theorem 3.1 claims table: accuracy (|k − log n| <= 5.7 w.p. >= 1−9/n),
// time O(log² n), and states O(log⁴ n), measured per population size.
//
// Default engine: the compile→batch pipeline at *faithful* caps — each n
// gets a lazily-JIT-compiled bounded regime with geometric cap
// ceil(log₂ n) + 4, so capping distorts at most an O(n·2^−cap) = O(2^−4)
// probability sliver and the measured estimate is the paper's k.  Caps of
// this size are exactly what the eager BFS compiler cannot reach (its
// states² closure is ~10¹⁰ pairs here); `LazyCompiledSpec` interns only the
// states a run touches — a few 10⁴, reported in the table as the measured
// state usage (cf. Lemma 3.9's field-range product on the agent engine).
// Epoch/time multipliers are scaled down from the paper's 95/5 to 8/1 so a
// trial converges in ~10³ parallel time; the estimate pipeline (max of
// geometrics per epoch, sum/epoch + 1) is unchanged.
//
// --sequential keeps the original per-agent engine table (unbounded fields,
// n <= 8192): the same claims measured directly on `AgentSimulation`, whose
// Θ(n) state array is the reason the default table can reach 10⁶ and it
// cannot.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <limits>
#include <vector>

#include "compile/lazy.hpp"
#include "core/executor.hpp"
#include "core/log_size_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/batched_count_simulation.hpp"
#include "sim/metrics.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"

namespace {

using pops::Table;

/// All agents finished with a common output value, on the count engine.
/// Returns the common estimate via `est` when converged.
bool converged_counts(const pops::LazyCompiledSpec<pops::Bounded<pops::LogSizeEstimation>>& lazy,
                      const std::vector<std::uint64_t>& counts, std::int32_t& est) {
  std::int64_t value = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto& s = lazy.states()[i];
    if (!s.protocol_done || !s.has_output) return false;
    if (value == std::numeric_limits<std::int64_t>::min()) {
      value = s.output;
    } else if (value != s.output) {
      return false;
    }
  }
  est = static_cast<std::int32_t>(value);
  return true;
}

void run_compiled(std::uint64_t trials, const std::vector<std::uint64_t>& sizes) {
  Table table({"n", "cap", "mean_|err|", "max_|err|", "frac<=5.7", "mean_time",
               "time/log^2", "states_interned", "states/log^4", "pairs_jit"});
  for (const auto n : sizes) {
    const double logn = std::log2(static_cast<double>(n));
    const auto cap = static_cast<std::uint32_t>(std::ceil(logn)) + 4;
    pops::Bounded<pops::LogSizeEstimation> proto(
        pops::LogSizeEstimation(pops::LogSizeEstimation::Params{
            .time_multiplier = 8, .epoch_multiplier = 1, .logsize_offset = 2}),
        cap);
    // One JIT table serves every trial of this n; since the sharded JIT the
    // trials fan out over run_trials_parallel (per-trial simulators sharing
    // the warm table), with per-seed results identical at any thread count.
    pops::LazyCompiledSpec<pops::Bounded<pops::LogSizeEstimation>> lazy(proto, cap);
    struct TrialResult {
      double converged_at = -1.0;
      std::int32_t est = 0;
    };
    const auto results = pops::run_trials_parallel(
        trials, 0x731, [&](std::uint64_t, std::uint64_t t) {
          pops::BatchedCountSimulation sim(lazy, pops::trial_seed(0x731, n * 100 + t));
          pops::Rng seeder(pops::trial_seed(0x732, n * 100 + t));
          lazy.seed_initial(sim, n, seeder);
          TrialResult r;
          r.converged_at = sim.run_until(
              [&](const pops::BatchedCountSimulation& s) {
                return converged_counts(lazy, s.counts(), r.est);
              },
              50.0, 20000.0);
          return r;
        });
    pops::Summary err, time;
    std::uint64_t ok = 0, done = 0;
    for (const auto& r : results) {
      if (r.converged_at < 0.0) continue;
      const double e = std::abs(static_cast<double>(r.est) - logn);
      err.add(e);
      time.add(r.converged_at);
      ok += e <= 5.7 ? 1 : 0;
      ++done;
    }
    table.row({Table::num(n), Table::num(static_cast<std::uint64_t>(cap)),
               Table::num(err.mean(), 2), Table::num(err.max(), 2),
               Table::num(static_cast<double>(ok) / static_cast<double>(done ? done : 1), 2),
               Table::num(time.mean(), 0), Table::num(time.mean() / (logn * logn), 1),
               Table::num(static_cast<std::uint64_t>(lazy.num_states())),
               Table::num(static_cast<double>(lazy.num_states()) / std::pow(logn, 4.0), 2),
               Table::num(static_cast<std::uint64_t>(lazy.pairs_compiled()))});
  }
  table.print();
  std::cout << "\nexpected: |err| well under 5.7 at faithful caps; time/log^2 and\n"
            << "states/log^4 roughly flat in n (the Theorem 3.1 asymptotics, with\n"
            << "states measured as the JIT's lazily-interned working set).\n";
}

void run_sequential(std::uint64_t trials, const std::vector<std::uint64_t>& sizes) {
  Table table({"n", "mean_|err|", "max_|err|", "frac<=5.7", "9/n_bound", "mean_time",
               "time/log^2", "states_bound", "states/log^4"});

  for (const auto n : sizes) {
    const double logn = std::log2(static_cast<double>(n));
    pops::Summary err, time, states;
    std::uint64_t ok = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      pops::AgentSimulation<pops::LogSizeEstimation> sim(
          pops::LogSizeEstimation{}, n, pops::trial_seed(0x731, n * 100 + t));
      pops::FieldRangeRecorder rec;
      double converged_at = -1.0;
      while (sim.time() < 5e7) {
        if (pops::converged(sim)) {
          converged_at = sim.time();
          break;
        }
        sim.advance_time(100.0);
        pops::record_field_ranges(sim, rec);
      }
      if (converged_at < 0.0) continue;
      const double e = std::abs(static_cast<double>(pops::estimate(sim)) - logn);
      err.add(e);
      time.add(converged_at);
      states.add(rec.state_count_bound());
      ok += e <= 5.7 ? 1 : 0;
    }
    table.row({Table::num(n), Table::num(err.mean(), 2), Table::num(err.max(), 2),
               Table::num(static_cast<double>(ok) / static_cast<double>(trials), 2),
               Table::num(1.0 - pops::bounds::thm31_error_tail(n), 3),
               Table::num(time.mean(), 0), Table::num(time.mean() / (logn * logn), 1),
               Table::num(states.mean(), 0),
               Table::num(states.mean() / std::pow(logn, 4.0), 1)});
  }
  table.print();
  std::cout << "\nexpected: frac<=5.7 at least the 1-9/n bound; time/log^2 and\n"
            << "states/log^4 roughly flat in n (the Theorem 3.1 asymptotics).\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool sequential = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sequential") == 0) sequential = true;
  }

  pops::banner("T31: Theorem 3.1 claims — error <= 5.7, time O(log^2 n), states O(log^4 n)");
  std::cout << "engine: "
            << (sequential
                    ? "AgentSimulation, unbounded fields (--sequential)"
                    : "lazily compiled Bounded<LogSizeEstimation> at cap ceil(log2 n)+4 "
                      "on BatchedCountSimulation (default)")
            << "\n";

  if (sequential) {
    const std::uint64_t trials = pops::by_scale<std::uint64_t>(2, 6, 10);
    const std::vector<std::uint64_t> sizes =
        pops::bench_scale() == 0 ? std::vector<std::uint64_t>{128, 512}
                                 : std::vector<std::uint64_t>{128, 512, 2048, 8192};
    run_sequential(trials, sizes);
  } else {
    const std::uint64_t trials = pops::by_scale<std::uint64_t>(1, 2, 4);
    // Effective, not requested: small trial counts cap the fan-out below
    // the executor width, and that is the number perf comparisons need.
    std::cout << "threads: " << pops::effective_trial_threads(trials)
              << " effective trial fan-out (executor width "
              << pops::Executor::instance().threads() << ")\n";
    const std::vector<std::uint64_t> sizes =
        pops::bench_scale() == 0 ? std::vector<std::uint64_t>{100000}
        : pops::bench_scale() == 1
            ? std::vector<std::uint64_t>{100000, 1000000}
            : std::vector<std::uint64_t>{100000, 1000000, 10000000};
    run_compiled(trials, sizes);
  }
  return 0;
}
