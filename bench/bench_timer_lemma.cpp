// TIMER — Appendix E: the consumption-rate machinery behind Lemma 4.2.
//   * Lemma E.1 (balls in bins): Pr[<= δk bins empty] < (2δem/n)^{δk}
//   * Lemma E.2 / Corollary E.3: under worst-case consumption the count of a
//     state with initial count k stays above k/81 through time 1 w.p.
//     >= 1 − 2^{−k/81}.
// The tables put Monte Carlo frequencies next to the closed-form bounds.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "sim/rng.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"
#include "termination/timer_lemma.hpp"

int main() {
  using pops::Table;
  pops::banner("TIMER: Appendix E — consumption rates and balls-in-bins");
  pops::Rng rng(0x71E);
  const int trials = pops::by_scale(200, 2000, 20000);

  Table consume({"n", "k", "mean_min_count", "k/81", "frac_below_k/81", "bound_2^{-k/81}"});
  for (std::uint64_t k : {162ULL, 486ULL, 1458ULL}) {
    const std::uint64_t n = 2 * k;
    pops::Summary min_counts;
    int below = 0;
    for (int t = 0; t < trials; ++t) {
      const auto m = pops::min_count_under_consumption(n, k, 1.0, rng);
      min_counts.add(static_cast<double>(m));
      below += (m <= k / 81) ? 1 : 0;
    }
    consume.row({Table::num(n), Table::num(k), Table::num(min_counts.mean(), 1),
                 Table::num(k / 81), Table::num(static_cast<double>(below) / trials, 6),
                 Table::num(pops::bounds::cor_e3_tail(k), 8)});
  }
  std::cout << "\nworst-case consumption over time [0,1] (Lemma E.2 / Corollary E.3):\n";
  consume.print();
  std::cout << "\n(the bound is loose by design: the true min count after time 1 of\n"
            << "2-per-interaction consumption is ~ k e^{-2..3}, far above k/81)\n";

  Table bins({"n", "k", "m", "delta", "Pr[<=delta*k empty]_MC", "bound_(2dem/n)^{dk}"});
  for (std::uint64_t m_balls : {1000ULL, 2000ULL, 4000ULL}) {
    constexpr std::uint64_t kN = 2000, kK = 1000;
    const double delta = 0.35;  // chosen so the event is actually observable
    int hit = 0;
    for (int t = 0; t < trials; ++t) {
      const auto empty = pops::empty_bins_after_throws(kN, kK, m_balls, rng);
      hit += (static_cast<double>(empty) <= delta * kK) ? 1 : 0;
    }
    const double bound = pops::bounds::balls_in_bins_tail(kN, kK, m_balls, delta);
    bins.row({Table::num(kN), Table::num(kK), Table::num(m_balls), Table::num(delta, 2),
              Table::num(static_cast<double>(hit) / trials, 5),
              bound >= 1.0 ? ">=1 (vacuous)" : Table::num(bound, 5)});
  }
  std::cout << "\nballs in bins (Lemma E.1), k = 1000 initially empty of n = 2000:\n";
  bins.print();
  std::cout << "\nexpected: every MC frequency at or below its bound (these bounds drive\n"
            << "the probabilistic induction in the proof of Lemma 4.2).\n";
  return 0;
}
