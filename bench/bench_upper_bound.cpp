// UB — Section 3.3: probability-1 upper bound on log n.  Measures the
// fraction of (trial, agent) pairs with report >= log2 n after stabilization
// (must be exactly 1.0), the overshoot distribution, and convergence time of
// the fast component.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/upper_bound_estimation.hpp"
#include "harness/bench_scale.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

int main() {
  using pops::Table;
  pops::banner("UB: probability-1 upper bound on log n (paper sec 3.3)");

  const std::uint64_t trials = pops::by_scale<std::uint64_t>(3, 8, 20);
  const std::vector<std::uint64_t> sizes{100, 300, 1000};

  Table table({"n", "trials", "frac_report>=logn", "mean_overshoot", "max_overshoot",
               "mean_fast_time"});
  for (const auto n : sizes) {
    const double logn = std::log2(static_cast<double>(n));
    std::uint64_t checked = 0, ok = 0;
    pops::Summary overshoot, fast_time;
    for (std::uint64_t t = 0; t < trials; ++t) {
      pops::AgentSimulation<pops::UpperBoundEstimation> sim(
          pops::UpperBoundEstimation{}, n, pops::trial_seed(0x0B1, n + t));
      const double tt = sim.run_until(
          [](const pops::AgentSimulation<pops::UpperBoundEstimation>& s) {
            return pops::fast_converged(s);
          },
          25.0, 1e8);
      if (tt < 0.0) continue;
      fast_time.add(tt);
      // Let the slow backup stabilize too (Θ(n) more time).
      sim.advance_time(static_cast<double>(n) * 30.0);
      for (const auto& a : sim.agents()) {
        const double r = sim.protocol().report(a);
        ++checked;
        ok += r >= logn ? 1 : 0;
        overshoot.add(r - logn);
      }
    }
    table.row({Table::num(n), Table::num(trials),
               Table::num(static_cast<double>(ok) / static_cast<double>(checked), 4),
               Table::num(overshoot.mean(), 2), Table::num(overshoot.max(), 2),
               Table::num(fast_time.mean(), 0)});
  }
  table.print();
  std::cout << "\nexpected: frac_report>=logn exactly 1.0000 (the probability-1 guarantee:\n"
            << "max(fast+4, kex) with kex >= log n always); overshoot ~ +5 typical (the\n"
            << "+3.7-style shift, paper: k <= log n + 9.4 whp); fast time ~ O(log^2 n).\n";
  return 0;
}
