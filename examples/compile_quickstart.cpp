// Compile-and-scale quickstart: take the paper's Log-Size-Estimation
// protocol, pin the bounded-field regime, compile it to a FiniteSpec, and
// run it on the batched count simulator — first to convergence at n = 10^6,
// then raw throughput at n = 10^10, a size where the per-agent simulator's
// state array alone would need ~500 GB.  Step 5 shows the lazy/JIT path:
// a cap-8 regime whose eager pair closure is infeasible runs anyway,
// compiling only the (receiver, sender) pairs the simulation touches.
// Step 6 fans trials out over every core against one shared JIT table —
// the sharded compile_pair makes concurrent stepping safe, and per-seed
// results are identical at any thread count.
//
//   $ ./compile_quickstart
#include <chrono>
#include <cstdint>
#include <iostream>
#include <thread>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "compile/lazy.hpp"
#include "harness/trials.hpp"
#include "sim/batched_count_simulation.hpp"

int main() {
  // 1. Bound the protocol: geometric draws capped at 2, scaled-down epoch
  //    constants (see compile/headline.hpp for the preset).
  const auto protocol = pops::log_size_tiny();

  // 2. Compile: BFS over the reachable joint state space, randomized
  //    branches become rated transitions.
  const auto compiled = pops::ProtocolCompiler<pops::Bounded<pops::LogSizeEstimation>>(
                            protocol, protocol.geometric_cap())
                            .compile();
  std::cout << "compiled: " << compiled.num_states() << " states, "
            << compiled.num_transitions() << " transitions ("
            << compiled.pairs_explored << " state pairs explored)\n";

  // 3. Convergence run at n = 10^6.  Observables evaluate typed states
  //    against the count vector.
  {
    const std::uint64_t n = 1000000;
    pops::BatchedCountSimulation sim(compiled.spec, /*seed=*/2024);
    pops::Rng seeder(7);
    compiled.seed_initial(sim, n, seeder);
    sim.advance_time(60.0);
    const auto counts = sim.counts();
    const auto workers = compiled.count_matching(
        counts,
        [](const pops::LogSizeEstimation::State& s) { return s.role == pops::Role::A; });
    const auto done = compiled.count_matching(
        counts, [](const pops::LogSizeEstimation::State& s) { return s.protocol_done; });
    std::cout << "n = 10^6 after parallel time " << sim.time() << ":\n"
              << "  workers (role A): " << workers << " (~n/2 by Lemma 3.2)\n"
              << "  finished agents:  " << done << " of " << n << "\n";
  }

  // 4. Throughput at n = 10^10: collision-free batches of expected Θ(√n)
  //    interactions per RNG epoch.
  {
    const std::uint64_t n = 10000000000ULL, work = 200000000ULL;
    pops::BatchedCountSimulation sim(compiled.spec, /*seed=*/4242);
    pops::Rng seeder(11);
    compiled.seed_initial(sim, n, seeder);
    const auto start = std::chrono::steady_clock::now();
    sim.steps(work);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::cout << "n = 10^10: " << work << " interactions in " << secs << " s ("
              << static_cast<double>(work) / secs << " interactions/s)\n";
  }

  // 5. Lazy/JIT compilation: the cap-8 preset's reachable space is ≳10^5
  //    states (~10^10 ordered pairs), far beyond the eager BFS closure.
  //    LazyCompiledSpec interns states on first contact and compiles a
  //    (receiver, sender) pair the first time the simulator dispatches it —
  //    the run below touches a small slice of the closure and pays only for
  //    that.  The same object also drives CountSimulation, and the warm
  //    table is shared across trials via reset().
  {
    const auto protocol = pops::log_size_c8();
    pops::LazyCompiledSpec<pops::Bounded<pops::LogSizeEstimation>> lazy(
        protocol, protocol.geometric_cap());
    const std::uint64_t n = 100000000ULL, work = 50000000ULL;
    pops::BatchedCountSimulation sim(lazy, /*seed=*/99);
    pops::Rng seeder(17);
    lazy.seed_initial(sim, n, seeder);
    const auto start = std::chrono::steady_clock::now();
    sim.steps(work);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::cout << "lazy cap-8 preset at n = 10^8: " << work << " interactions in "
              << secs << " s; JIT interned " << lazy.num_states()
              << " states / compiled " << lazy.pairs_compiled()
              << " pairs (eager closure: infeasible)\n";

    // 6. Parallel trials on the shared warm table.  compile_pair is sharded
    //    behind per-receiver mutexes and dispatch lookups are lock-free, so
    //    any number of simulators may step one LazyCompiledSpec from
    //    different threads — run_trials_parallel fans the trials out over
    //    the process-wide executor (pops::Executor; pin the width with
    //    Executor::set_threads or POPS_THREADS for reproducible timings),
    //    giving each trial its own simulator + deterministic seed; the
    //    per-seed results are bit-identical whatever the width (state *ids*
    //    depend on interning order, but trajectories and observables don't).
    const std::uint64_t trials = 8, trial_n = 100000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto workers_per_trial = pops::run_trials_parallel(
        trials, /*master_seed=*/2026, [&](std::uint64_t seed, std::uint64_t) {
          pops::BatchedCountSimulation sim(lazy, seed);
          pops::Rng seeder(seed ^ 0x5EED);
          lazy.seed_initial(sim, trial_n, seeder);
          sim.advance_time(50.0);
          return lazy.count_matching(sim.counts(), [](const auto& s) {
            return s.role == pops::Role::A;
          });
        });
    const double trial_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::cout << "parallel trials (" << trials << " trials, "
              << pops::effective_trial_threads(trials)
              << " effective threads, one shared JIT table): " << trial_secs
              << " s; workers =";
    for (const auto w : workers_per_trial) std::cout << ' ' << w;
    std::cout << " (~n/2 each by Lemma 3.2)\n";
  }
  return 0;
}
