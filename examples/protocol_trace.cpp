// Example: watch the estimator's internal dynamics as a CSV time series.
//
// Run:  ./build/examples/protocol_trace [n] [seed] > trace.csv
//
// Samples the running Log-Size-Estimation protocol on a parallel-time grid
// and emits CSV columns for: the fraction of agents done, the mean epoch, the
// consensus logSize2, and the fraction holding an output.  Plot time vs the
// columns to see the phase structure of the protocol — the initial logSize2
// race, the staircase of epochs, and the final output epidemic.
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/log_size_estimation.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  using Sim = pops::AgentSimulation<pops::LogSizeEstimation>;
  Sim sim(pops::LogSizeEstimation{}, n, seed);

  pops::Trace<Sim> trace;
  trace
      .observe("frac_done",
               [](const Sim& s) {
                 std::uint64_t done = 0;
                 for (const auto& a : s.agents()) done += a.protocol_done ? 1 : 0;
                 return static_cast<double>(done) /
                        static_cast<double>(s.population_size());
               })
      .observe("mean_epoch",
               [](const Sim& s) {
                 double sum = 0.0;
                 for (const auto& a : s.agents()) sum += a.epoch;
                 return sum / static_cast<double>(s.population_size());
               })
      .observe("max_logSize2",
               [](const Sim& s) {
                 std::uint32_t mx = 0;
                 for (const auto& a : s.agents()) mx = std::max(mx, a.log_size2);
                 return static_cast<double>(mx);
               })
      .observe("frac_with_output", [](const Sim& s) {
        std::uint64_t has = 0;
        for (const auto& a : s.agents()) has += a.has_output ? 1 : 0;
        return static_cast<double>(has) / static_cast<double>(s.population_size());
      });

  // Sample until convergence plus a tail, on a grid adapted to the expected
  // O(log^2 n) duration.
  const double grid = 250.0;
  while (!pops::converged(sim) && sim.time() < 5e6) {
    trace.sample(sim);
    sim.advance_time(grid);
  }
  trace.sample(sim);

  trace.write_csv(std::cout);
  std::cerr << "final estimate: " << pops::estimate(sim) << " after parallel time "
            << sim.time() << " (" << trace.samples() << " samples)\n";
  return 0;
}
