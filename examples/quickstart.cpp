// Quickstart: estimate log2 of an unknown population size, uniformly.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart [n] [seed]
//
// Simulates the paper's Log-Size-Estimation protocol (Doty & Eftekhari,
// PODC 2019) on n agents that know nothing about n, and prints the common
// estimate every agent converges to.  Theorem 3.1: the estimate is within
// 5.7 of log2(n) with probability >= 1 - 9/n, in O(log^2 n) parallel time.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/log_size_estimation.hpp"
#include "sim/agent_simulation.hpp"

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  pops::LogSizeEstimation protocol;  // the paper's constants: 95, 5, +2
  pops::AgentSimulation<pops::LogSizeEstimation> sim(protocol, n, seed);

  std::cout << "Population of " << n << " anonymous agents, uniform protocol "
            << "(no agent knows n).\nRunning until every agent agrees on an "
            << "estimate...\n";

  const double converged_at =
      sim.run_until([](const auto& s) { return pops::converged(s); }, /*check_dt=*/25.0,
                    /*max_time=*/5e6);
  if (converged_at < 0.0) {
    std::cerr << "did not converge within the time cap\n";
    return 1;
  }

  const auto estimate = pops::estimate(sim);
  const double truth = std::log2(static_cast<double>(n));
  std::cout << "converged at parallel time " << converged_at << "\n"
            << "estimate of log2(n): " << estimate << "\n"
            << "true log2(n):        " << truth << "\n"
            << "additive error:      " << (estimate - truth) << "  (paper bound: 5.7)\n";
  return 0;
}
