// Example: sweep population sizes and watch the estimator track log2(n).
//
// Run:  ./build/examples/size_estimation_sweep [trials] [seed]
//
// For a geometric ladder of population sizes, runs the uniform
// Log-Size-Estimation protocol to convergence and prints estimate vs truth —
// the sort of sanity sweep a user deploying the protocol would run first.
// Also demonstrates the Section 3.3 upper-bound combination on the side.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/log_size_estimation.hpp"
#include "core/upper_bound_estimation.hpp"
#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  const std::uint64_t trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2024;

  pops::banner("size estimation sweep: uniform protocol vs the true log2(n)");
  pops::Table table({"n", "log2(n)", "estimates (per trial)", "mean_err", "mean_time"});

  for (std::uint64_t n : {64ULL, 256ULL, 1024ULL, 4096ULL}) {
    const double logn = std::log2(static_cast<double>(n));
    pops::Summary err, time;
    std::string estimates;
    for (std::uint64_t t = 0; t < trials; ++t) {
      pops::AgentSimulation<pops::LogSizeEstimation> sim(
          pops::LogSizeEstimation{}, n, pops::trial_seed(seed, n + t));
      const double tt = sim.run_until(
          [](const pops::AgentSimulation<pops::LogSizeEstimation>& s) {
            return pops::converged(s);
          },
          25.0, 5e7);
      if (tt < 0.0) {
        estimates += "timeout ";
        continue;
      }
      const auto k = pops::estimate(sim);
      estimates += std::to_string(k) + " ";
      err.add(std::abs(static_cast<double>(k) - logn));
      time.add(tt);
    }
    table.row({pops::Table::num(n), pops::Table::num(logn, 2), estimates,
               pops::Table::num(err.mean(), 2), pops::Table::num(time.mean(), 0)});
  }
  table.print();

  std::cout << "\nSection 3.3 variant — guaranteed upper bound (never below log2 n):\n";
  pops::Table ub({"n", "log2(n)", "reported_upper_bound"});
  for (std::uint64_t n : {100ULL, 500ULL}) {
    pops::AgentSimulation<pops::UpperBoundEstimation> sim(pops::UpperBoundEstimation{}, n,
                                                          seed + n);
    sim.run_until(
        [](const pops::AgentSimulation<pops::UpperBoundEstimation>& s) {
          return pops::fast_converged(s);
        },
        25.0, 1e8);
    sim.advance_time(static_cast<double>(n) * 30.0);  // backup stabilization
    ub.row({pops::Table::num(n), pops::Table::num(std::log2(static_cast<double>(n)), 2),
            pops::Table::num(static_cast<std::int64_t>(sim.protocol().report(sim.agent(0))))});
  }
  ub.print();
  return 0;
}
