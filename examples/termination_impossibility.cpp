// Example: why uniform dense protocols cannot know when they are done
// (Theorem 4.1), and how a leader changes everything (Theorem 3.13).
//
// Run:  ./build/examples/termination_impossibility [seed]
//
// Side by side:
//   1. a dense uniform protocol that tries to delay a `terminated` signal by
//      counting interactions — the signal appears at the SAME constant time
//      no matter how large the population;
//   2. the leader-driven terminating estimator — the signal arrives after the
//      estimate has converged, at a time growing with n.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/leader_terminating_estimation.hpp"
#include "harness/table.hpp"
#include "sim/agent_simulation.hpp"
#include "termination/terminating_toys.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  pops::banner("Theorem 4.1: a dense uniform protocol's termination signal is O(1)");
  std::cout << "protocol: every agent counts its interactions and 'terminates' at 60.\n"
            << "Uniformity means 60 cannot depend on n -- and some agent always gets\n"
            << "there in ~30 time units:\n\n";
  pops::Table dense({"n", "first_signal_time"});
  for (std::uint64_t n : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    pops::AgentSimulation<pops::FixedCountTrigger> sim(pops::FixedCountTrigger{60}, n,
                                                       seed + n);
    const double t = sim.run_until(
        [](const pops::AgentSimulation<pops::FixedCountTrigger>& s) {
          return pops::any_terminated(s);
        },
        0.5, 1e6);
    dense.row({pops::Table::num(n), pops::Table::num(t, 1)});
  }
  dense.print();

  pops::banner("Theorem 3.13: with one leader, termination can wait for convergence");
  std::cout << "protocol: the size estimator plus a leader-driven phase clock; the\n"
            << "leader terminates after a phase budget of k2*5*logSize2 advances:\n\n";
  pops::Table lead({"n", "signal_time", "estimate_at_signal", "log2(n)"});
  for (std::uint64_t n : {128ULL, 512ULL}) {
    pops::LeaderTerminatingEstimation proto;
    pops::AgentSimulation<pops::LeaderTerminatingEstimation> sim(proto, n, seed + n);
    pops::Rng rng(seed ^ n);
    sim.set_state(0, proto.make_leader(rng));
    const double t = sim.run_until(
        [](const pops::AgentSimulation<pops::LeaderTerminatingEstimation>& s) {
          return pops::any_terminated(s);
        },
        25.0, 1e8);
    std::int64_t est = -1;
    for (const auto& a : sim.agents()) {
      if (a.est.has_output) {
        est = a.est.output;
        break;
      }
    }
    lead.row({pops::Table::num(n), pops::Table::num(t, 0), pops::Table::num(est),
              pops::Table::num(std::log2(static_cast<double>(n)), 2)});
  }
  lead.print();

  std::cout << "\nThe dichotomy is Theorem 4.1's point: density + uniformity force the\n"
            << "signal into constant time (any state reachable by m transitions floods\n"
            << "the population in O(1) time from dense configurations -- Lemma 4.2), so\n"
            << "only symmetry-breaking (a leader/junta) makes meaningful termination\n"
            << "possible.\n";
  return 0;
}
