// Example: electing a leader without knowing the population size.
//
// Run:  ./build/examples/uniform_leader_election [n] [seed]
//
// The fast leader-election protocols in the literature hard-code log n; this
// example shows the paper's composition recipe (§1.1) making the classic
// random-bit tournament *uniform*: a weak size estimate spreads by epidemic,
// a leaderless clock carves time into Θ(log n) stages, contenders append one
// random bit per stage, and the maximum bitstring's owner is the unique
// leader w.h.p.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/uniform_leader_election.hpp"
#include "sim/agent_simulation.hpp"

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  auto proto = pops::make_uniform_leader_election();
  pops::AgentSimulation<pops::UniformLeaderElection> sim(proto, n, seed);

  std::cout << "Uniform leader election among " << n << " anonymous agents\n"
            << "(no agent knows n; stages are timed by the paper's leaderless clock).\n\n";

  double last_report = 0.0;
  while (sim.time() < 1e7) {
    sim.advance_time(50.0);
    if (sim.time() - last_report >= 500.0) {
      last_report = sim.time();
      std::cout << "t=" << static_cast<std::uint64_t>(sim.time())
                << "  stage=" << sim.agent(0).clock.stage
                << "  contenders=" << pops::count_contenders(sim) << "\n";
    }
    if (pops::clock_finished(sim)) break;
  }
  sim.advance_time(100.0);  // final propagation sweep

  const auto contenders = pops::count_contenders(sim);
  std::cout << "\nfinal stage " << sim.agent(0).clock.stage << " reached at parallel time "
            << static_cast<std::uint64_t>(sim.time()) << "\n"
            << "remaining contenders: " << contenders
            << (contenders == 1 ? "  -- unique leader elected\n"
                                : "  -- tie (rerun with another seed; w.h.p. unique)\n");
  return contenders == 1 ? 0 : 1;
}
