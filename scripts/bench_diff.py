#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json baselines.

Compares freshly regenerated bench output (typically
`scripts/bench_regen.sh --quick`, which writes into
<build>/bench_quick/) against a baseline directory — the committed
BENCH_*.json at the repo root, or (as the tier-2 CI job does) a baseline
regenerated at the merge-base on the same runner, so the thresholds
compare same-hardware runs instead of absorbing runner variance.

Three metrics are gated at every matching key:

  * interactions/sec — fails on a relative drop beyond --threshold
      - BENCH_batched.json  — key (simulator, n, threads)
      - BENCH_compiled.json — key (config, n, threads)
    keys where either side's wall-clock measurement ran under
    --min-measure-seconds are skipped as timer noise (the smallest-n
    sweep points finish in milliseconds)
  * compile seconds (BENCH_compiled.json "compile" records, key
    (config, threads)) — fails on a relative *rise* beyond --threshold;
    baselines under --min-compile-seconds are skipped as noise
  * interned-pair counts (BENCH_compiled.json: eager "compile.pairs"
    and lazy "lazy.pairs_compiled", key (config)) — these are
    deterministic closure/reachability sizes, so ANY growth fails

`threads` is the executor width recorded in each file's header
("executor_threads", falling back to "hardware_concurrency" for
pre-executor baselines), so runs with different thread budgets are never
compared against each other — pin the width with POPS_THREADS=1 (as the
tier-2 CI job does) to compare against single-threaded baselines.  Keys
present on only one side are skipped and reported; improvements always
pass.  Exit codes: 0 ok / nothing comparable, 1 regression, 2 usage or
missing file.

Usage:
  scripts/bench_diff.py [--baseline-dir DIR] [--new-dir DIR]
                        [--threshold 0.25] [--min-compile-seconds 0.05]
                        [--min-measure-seconds 0.02]
"""

import argparse
import json
import os
import sys

FILES = ("BENCH_batched.json", "BENCH_compiled.json")

# Gate policies: how `delta = (new - old) / old` is judged per metric.
HIGHER_IS_BETTER = "higher"   # fail when delta < -threshold
LOWER_IS_BETTER = "lower"     # fail when delta > +threshold
NO_GROWTH = "exact"           # fail when new > old at all


def header_threads(doc):
    return doc.get("executor_threads", doc.get("hardware_concurrency", 1))


def extract(doc):
    """Flatten one BENCH document into {metric: {key: value}}."""
    threads = header_threads(doc)
    points = {"interactions_per_sec": {}, "compile_seconds": {}, "interned_pairs": {},
              "measure_seconds": {}}
    if doc.get("bench") == "bench_batched":
        for rec in doc.get("results", []):
            key = (rec["simulator"], rec["n"], threads)
            points["interactions_per_sec"][key] = rec["interactions_per_sec"]
            points["measure_seconds"][key] = rec.get("seconds", float("inf"))
    elif doc.get("bench") == "bench_compiled_scaling":
        for config in doc.get("configs", []):
            for rec in config.get("scaling", []):
                key = (config["config"], rec["n"], threads)
                points["interactions_per_sec"][key] = rec["interactions_per_sec"]
                points["measure_seconds"][key] = rec.get("seconds", float("inf"))
            compile_rec = config.get("compile")
            if compile_rec is not None:
                points["compile_seconds"][(config["config"], threads)] = \
                    compile_rec["seconds"]
                points["interned_pairs"][(config["config"], "eager")] = \
                    compile_rec["pairs"]
            lazy_rec = config.get("lazy")
            if lazy_rec is not None:
                points["interned_pairs"][(config["config"], "lazy")] = \
                    lazy_rec["pairs_compiled"]
    return points


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        print(f"bench_diff: {path}: malformed JSON ({e})", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding the baseline BENCH_*.json (default: .)")
    parser.add_argument("--new-dir", default="build/bench_quick",
                        help="directory holding the regenerated BENCH_*.json "
                             "(default: build/bench_quick)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that fails the gate (default: 0.25)")
    parser.add_argument("--min-compile-seconds", type=float, default=0.05,
                        help="skip compile-seconds keys whose baseline is below this "
                             "(timer noise; default: 0.05)")
    parser.add_argument("--min-measure-seconds", type=float, default=0.02,
                        help="skip interactions/sec keys where either side's "
                             "wall-clock measurement is below this (timer noise; "
                             "default: 0.02)")
    args = parser.parse_args()

    gates = (
        ("interactions_per_sec", HIGHER_IS_BETTER),
        ("compile_seconds", LOWER_IS_BETTER),
        ("interned_pairs", NO_GROWTH),
    )
    compared = 0
    skipped = 0
    regressions = []
    for name in FILES:
        base_doc = load(os.path.join(args.baseline_dir, name))
        new_doc = load(os.path.join(args.new_dir, name))
        if base_doc is None:
            print(f"bench_diff: no baseline {name} in {args.baseline_dir}; skipping")
            continue
        if new_doc is None:
            print(f"bench_diff: no regenerated {name} in {args.new_dir}; skipping "
                  f"(run scripts/bench_regen.sh --quick first)")
            continue
        base_all = extract(base_doc)
        new_all = extract(new_doc)
        for metric, policy in gates:
            base = base_all[metric]
            new = new_all[metric]
            for key in sorted(set(base) | set(new), key=str):
                if key not in base or key not in new:
                    skipped += 1
                    continue
                old_val, new_val = base[key], new[key]
                if metric == "compile_seconds" and old_val < args.min_compile_seconds:
                    skipped += 1
                    continue
                if metric == "interactions_per_sec" and \
                        min(base_all["measure_seconds"].get(key, float("inf")),
                            new_all["measure_seconds"].get(key, float("inf"))) \
                        < args.min_measure_seconds:
                    skipped += 1
                    continue
                compared += 1
                delta = (new_val - old_val) / old_val if old_val > 0 else 0.0
                label = f"{name}: {metric} {' '.join(str(k) for k in key)}"
                status = "ok"
                if policy == HIGHER_IS_BETTER and delta < -args.threshold:
                    status = "REGRESSION"
                elif policy == LOWER_IS_BETTER and delta > args.threshold:
                    status = "REGRESSION"
                elif policy == NO_GROWTH and new_val > old_val:
                    status = "REGRESSION"
                if status == "REGRESSION":
                    regressions.append(label)
                print(f"  {status:>10}  {label}: {old_val:.6g} -> {new_val:.6g} "
                      f"({delta:+.1%})")

    print(f"bench_diff: {compared} keys compared, {skipped} present on one side only "
          f"or below the noise floor, {len(regressions)} regression(s)")
    if compared == 0:
        # Different machine/threads than the baselines: nothing to gate on.
        print("bench_diff: no matching keys — gate is vacuous")
        return 0
    if regressions:
        for r in regressions:
            print(f"bench_diff: FAILED {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
