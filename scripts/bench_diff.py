#!/usr/bin/env python3
"""Perf-regression gate over the committed BENCH_*.json baselines.

Compares freshly regenerated bench output (typically
`scripts/bench_regen.sh --quick`, which writes into
<build>/bench_quick/) against the baselines committed at the repo root,
and fails when interactions/sec regressed by more than the threshold at
any matching key:

  * BENCH_batched.json  — key (simulator, n, threads)
  * BENCH_compiled.json — key (config, n, threads)

`threads` is the executor width recorded in each file's header
("executor_threads", falling back to "hardware_concurrency" for
pre-executor baselines), so runs with different thread budgets are never
compared against each other — pin the width with POPS_THREADS=1 (as the
tier-2 CI job does) to compare against single-threaded baselines.  Keys
present on only one side are skipped and reported; improvements always
pass.  Exit codes: 0 ok / nothing comparable, 1 regression, 2 usage or
missing file.

Usage:
  scripts/bench_diff.py [--baseline-dir DIR] [--new-dir DIR]
                        [--threshold 0.25]
"""

import argparse
import json
import os
import sys

FILES = ("BENCH_batched.json", "BENCH_compiled.json")


def header_threads(doc):
    return doc.get("executor_threads", doc.get("hardware_concurrency", 1))


def extract(doc):
    """Flatten one BENCH document into {key: interactions_per_sec}."""
    threads = header_threads(doc)
    points = {}
    if doc.get("bench") == "bench_batched":
        for rec in doc.get("results", []):
            key = (rec["simulator"], rec["n"], threads)
            points[key] = rec["interactions_per_sec"]
    elif doc.get("bench") == "bench_compiled_scaling":
        for config in doc.get("configs", []):
            for rec in config.get("scaling", []):
                key = (config["config"], rec["n"], threads)
                points[key] = rec["interactions_per_sec"]
    return points


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        print(f"bench_diff: {path}: malformed JSON ({e})", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding the committed BENCH_*.json (default: .)")
    parser.add_argument("--new-dir", default="build/bench_quick",
                        help="directory holding the regenerated BENCH_*.json "
                             "(default: build/bench_quick)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that fails the gate (default: 0.25)")
    args = parser.parse_args()

    compared = 0
    skipped = 0
    regressions = []
    for name in FILES:
        base_doc = load(os.path.join(args.baseline_dir, name))
        new_doc = load(os.path.join(args.new_dir, name))
        if base_doc is None:
            print(f"bench_diff: no baseline {name} in {args.baseline_dir}; skipping")
            continue
        if new_doc is None:
            print(f"bench_diff: no regenerated {name} in {args.new_dir}; skipping "
                  f"(run scripts/bench_regen.sh --quick first)")
            continue
        base = extract(base_doc)
        new = extract(new_doc)
        for key in sorted(set(base) | set(new), key=str):
            if key not in base or key not in new:
                skipped += 1
                continue
            compared += 1
            old_ips, new_ips = base[key], new[key]
            delta = (new_ips - old_ips) / old_ips if old_ips > 0 else 0.0
            label = f"{name}: {key[0]} n={key[1]} threads={key[2]}"
            status = "ok"
            if delta < -args.threshold:
                status = "REGRESSION"
                regressions.append(label)
            print(f"  {status:>10}  {label}: {old_ips:.3e} -> {new_ips:.3e} "
                  f"({delta:+.1%})")

    print(f"bench_diff: {compared} keys compared, {skipped} present on one side only, "
          f"{len(regressions)} regression(s) beyond {args.threshold:.0%}")
    if compared == 0:
        # Different machine/threads than the baselines: nothing to gate on.
        print("bench_diff: no matching (preset, n, threads) keys — gate is vacuous")
        return 0
    if regressions:
        for r in regressions:
            print(f"bench_diff: FAILED {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
