#!/usr/bin/env bash
# Regenerate the committed perf-trajectory artifacts (BENCH_*.json) with one
# command per PR: rebuild Release, rerun the JSON-emitting benches, rewrite
# the files in the repo root.  Diff interactions_per_sec across PRs to track
# the trajectory (ROADMAP "Perf trajectory").
#
# Usage: scripts/bench_regen.sh [--max-n=N]
#   --max-n caps the batched/compiled sweeps (default 10^9 batched,
#   bench-scale default for compiled); POPS_BENCH_SCALE=0/1/2 scales the
#   compiled bench's trial counts and presets as usual.
set -euo pipefail
cd "$(dirname "$0")/.."

# Plain string, not an array: expanding an empty array under `set -u`
# aborts on bash < 4.4 (macOS ships 3.2).
MAX_N_ARG=""
for arg in "$@"; do
  case "$arg" in
    --max-n=*) MAX_N_ARG="$arg" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target bench_batched bench_compiled_scaling

# bench_micro exists only when google-benchmark was found at configure time
# (find_package(benchmark QUIET) in CMakeLists).  Probe the configure result,
# not a possibly-stale binary, and let a real build failure abort loudly
# (set -e) instead of silently keeping an old BENCH_micro.json.
if grep -q '^benchmark_DIR:PATH=[^-]' build/CMakeCache.txt 2>/dev/null &&
   ! grep -q '^benchmark_DIR:PATH=.*-NOTFOUND' build/CMakeCache.txt; then
  cmake --build build -j --target bench_micro
  echo "== bench_micro -> BENCH_micro.json"
  ./build/bench_micro > BENCH_micro.json
else
  echo "== bench_micro skipped (google-benchmark not found at configure time)"
fi

echo "== bench_batched -> BENCH_batched.json"
./build/bench_batched $MAX_N_ARG > BENCH_batched.json

echo "== bench_compiled_scaling -> BENCH_compiled.json"
./build/bench_compiled_scaling $MAX_N_ARG > BENCH_compiled.json

echo "done: BENCH_micro.json BENCH_batched.json BENCH_compiled.json"
