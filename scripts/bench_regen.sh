#!/usr/bin/env bash
# Regenerate the committed perf-trajectory artifacts (BENCH_*.json) with one
# command per PR: rebuild Release, rerun the JSON-emitting benches, rewrite
# the files in the repo root.  Diff interactions_per_sec across PRs to track
# the trajectory (ROADMAP "Perf trajectory").
#
# Every BENCH_*.json header records the machine's thread budget so perf
# diffs across PRs compare like with like: bench_batched and
# bench_compiled_scaling emit "hardware_concurrency" and the process-wide
# executor's "executor_threads" (pin it with POPS_THREADS=N or
# Executor::set_threads for reproducible runs; the compiled bench's
# compile/equivalence records carry the *effective* thread counts they ran
# with); bench_micro's google-benchmark context already includes num_cpus.
# scripts/bench_diff.py keys its regression gate on these fields.
#
# Usage: scripts/bench_regen.sh [--max-n=N] [--quick]
#   --max-n caps the batched/compiled sweeps (default 10^9 batched,
#   bench-scale default for compiled); POPS_BENCH_SCALE=0/1/2 scales the
#   compiled bench's trial counts and presets as usual.
#   --quick is the seconds-scale smoke mode (registered as the tier-2 ctest
#   target bench_regen_quick): it reuses already-built binaries from
#   $POPS_BENCH_BUILD_DIR (default ./build) without reconfiguring, shrinks
#   every sweep, and writes into the build directory instead of the
#   committed BENCH_*.json — its job is catching perf-path breakage (JIT,
#   sparse dispatch, fused sampling) on every ctest run, not producing
#   trajectory numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

# Plain string, not an array: expanding an empty array under `set -u`
# aborts on bash < 4.4 (macOS ships 3.2).
MAX_N_ARG=""
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --max-n=*) MAX_N_ARG="$arg" ;;
    --quick) QUICK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

BUILD_DIR="${POPS_BENCH_BUILD_DIR:-build}"

if [ "$QUICK" = 1 ]; then
  for bin in bench_batched bench_compiled_scaling; do
    if [ ! -x "$BUILD_DIR/$bin" ]; then
      echo "bench_regen --quick: $BUILD_DIR/$bin missing; build it first" >&2
      exit 3
    fi
  done
  OUT_DIR="$BUILD_DIR/bench_quick"
  mkdir -p "$OUT_DIR"
  echo "== quick smoke: bench_batched -> $OUT_DIR/BENCH_batched.json"
  POPS_BENCH_SCALE=0 "$BUILD_DIR/bench_batched" --max-n=100000000 \
    > "$OUT_DIR/BENCH_batched.json"
  echo "== quick smoke: bench_compiled_scaling -> $OUT_DIR/BENCH_compiled.json"
  POPS_BENCH_SCALE=0 "$BUILD_DIR/bench_compiled_scaling" --quick \
    > "$OUT_DIR/BENCH_compiled.json"
  echo "quick smoke done: $OUT_DIR"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_batched bench_compiled_scaling

# bench_micro exists only when google-benchmark was found at configure time
# (find_package(benchmark QUIET) in CMakeLists).  Probe the configure result,
# not a possibly-stale binary, and let a real build failure abort loudly
# (set -e) instead of silently keeping an old BENCH_micro.json.
if grep -q '^benchmark_DIR:PATH=[^-]' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null &&
   ! grep -q '^benchmark_DIR:PATH=.*-NOTFOUND' "$BUILD_DIR/CMakeCache.txt"; then
  cmake --build "$BUILD_DIR" -j --target bench_micro
  echo "== bench_micro -> BENCH_micro.json"
  "$BUILD_DIR/bench_micro" > BENCH_micro.json
else
  echo "== bench_micro skipped (google-benchmark not found at configure time)"
fi

echo "== bench_batched -> BENCH_batched.json"
"$BUILD_DIR/bench_batched" $MAX_N_ARG > BENCH_batched.json

echo "== bench_compiled_scaling -> BENCH_compiled.json"
"$BUILD_DIR/bench_compiled_scaling" $MAX_N_ARG > BENCH_compiled.json

echo "done: BENCH_micro.json BENCH_batched.json BENCH_compiled.json"
