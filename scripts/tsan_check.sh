#!/usr/bin/env bash
# ThreadSanitizer check for the sharded JIT, the parallel eager closure and
# the process-wide work-stealing executor: configure a TSan build tree
# (CMAKE_BUILD_TYPE=TSan, see CMakeLists.txt), build the
# concurrency-sensitive test binaries, and run them under the race
# detector.  Registered as the tier-2 ctest target `tsan_concurrency` and
# run by the tier-2 CI job (.github/workflows/ci.yml); also runnable by
# hand:
#
#   scripts/tsan_check.sh [build-dir]     # default: ./build-tsan
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-${POPS_TSAN_BUILD_DIR:-build-tsan}}"
TARGETS=(test_executor test_lazy_compile test_jit_concurrency test_trials
         test_parallel_epochs)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=TSan
cmake --build "$BUILD_DIR" -j --target "${TARGETS[@]}"

# halt_on_error keeps a first race from scrolling away under gtest output;
# second_deadlock_stack improves lock-order reports from the sharded mutexes.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"
for t in "${TARGETS[@]}"; do
  if [[ "$t" == test_parallel_epochs ]]; then
    # The epoch-invariance tests assert per-seed bit-identical output while
    # sweeping the executor width internally; run them under each default
    # width too, so the pool the other fixtures inherit is also exercised.
    for w in 1 2 8; do
      echo "== tsan: $t (POPS_THREADS=$w)"
      POPS_THREADS=$w "$BUILD_DIR/$t"
    done
  else
    echo "== tsan: $t"
    "$BUILD_DIR/$t"
  fi
done
echo "tsan_check: no races reported"
