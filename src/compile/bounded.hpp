// Bounded-field regime adapter: fix a max field value so an unbounded
// protocol becomes finite-state (ROADMAP: "fix a max field value, emit a
// FiniteSpec").
//
// Theorem 3.1's protocol keeps Θ(polylog n) reachable values in its fields,
// so its exact state space grows with n and only `AgentSimulation` can run
// it.  `Bounded<P>` pins the regime with a single knob, the geometric cap:
//
//   * every geometric_fair() draw is replaced by min(draw, cap) via
//     `CapGeometric` — the truncated law matching `ChoiceRng`
//     (compile/choice.hpp), so the same `Bounded<P>` object runs under
//     `AgentSimulation` and compiles to a `FiniteSpec`;
//   * after every transition (and the initial draw) the protocol's own
//     `saturate` hook clamps each derived field at the ceiling implied by
//     the cap and canonicalizes fields that no longer influence behavior.
//
// Saturation semantics, the contract `saturate` implementations follow:
//
//   1. A counter compared only via `>= threshold` saturates *at* the
//      threshold.  Behavior-preserving: every comparison result is
//      unchanged (Log-Size-Estimation's `time`, which keeps ticking in the
//      unbounded protocol while an agent waits to deposit).
//   2. A field that is dead in the agent's current mode — readable only
//      after an event that also overwrites it — is canonicalized to a fixed
//      value so stale values do not multiply the state space (a finished
//      worker's g.r.v., which only a Restart can resurrect, and the Restart
//      redraws it).
//   3. A genuinely value-carrying field is clamped at its invariant bound
//      (the storage sum, bounded by epochs × cap).  The clamp never binds on
//      reachable states; it makes the state space finite by construction
//      rather than by proof.
//
// Rules 1 and 2 are exact; rule 3 is exact on reachable states.  Hence
// `Bounded<P>` under `AgentSimulation` and the compiled `FiniteSpec` under
// the count simulators induce *identical* distributions (certified by the
// chi-square suite in tests/test_compiled_equivalence.cpp), while Bounded
// deviates from the unbounded P only on executions where some draw would
// have exceeded the cap — probability ≲ n·2^−cap per epoch of draws, so a
// cap of log2(n) + c covers all draws w.p. 1 − O(2^−c).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "compile/intern.hpp"
#include "sim/require.hpp"
#include "sim/rng.hpp"

namespace pops {

/// Pass-through RandomSource that truncates geometric draws at `cap`.
template <RandomSource R>
class CapGeometric {
 public:
  CapGeometric(R& inner, std::uint32_t cap) : inner_(inner), cap_(cap) {}

  bool coin() { return inner_.coin(); }
  std::uint32_t geometric_fair() { return std::min(inner_.geometric_fair(), cap_); }
  std::uint64_t below(std::uint64_t n) { return inner_.below(n); }
  bool bernoulli(double p) { return inner_.bernoulli(p); }
  double uniform_double() { return inner_.uniform_double(); }

 private:
  R& inner_;
  std::uint32_t cap_;
};

/// A protocol that can run in the bounded-field regime: its transition
/// algorithm is generic over the RandomSource, it can clamp/canonicalize its
/// state given the geometric cap, and it emits a canonical label per state
/// (injective on saturated states) for interning by the compiler.
template <typename P>
concept BoundableProtocol =
    std::copyable<typename P::State> &&
    requires(const P p, typename P::State& a, typename P::State& b, Rng& rng,
             std::uint32_t cap) {
      { p.initial(rng) } -> std::same_as<typename P::State>;
      p.interact(a, b, rng);
      p.saturate(a, cap);
      { p.state_label(a) } -> std::convertible_to<std::string>;
    };

template <BoundableProtocol P>
class Bounded {
 public:
  using State = typename P::State;

  Bounded(P base, std::uint32_t geometric_cap)
      : base_(std::move(base)), cap_(geometric_cap) {
    POPS_REQUIRE(geometric_cap >= 1, "geometric cap must be >= 1");
  }

  template <RandomSource R>
  State initial(R& rng) const {
    CapGeometric<R> capped(rng, cap_);
    State s = base_.initial(capped);
    base_.saturate(s, cap_);
    return s;
  }

  template <RandomSource R>
  void interact(State& receiver, State& sender, R& rng) const {
    CapGeometric<R> capped(rng, cap_);
    base_.interact(receiver, sender, capped);
    base_.saturate(receiver, cap_);
    base_.saturate(sender, cap_);
  }

  /// Idempotent by the saturate contract; exposed so Bounded<P> is itself
  /// Boundable (saturating an already-bounded protocol is a no-op).
  void saturate(State& s, std::uint32_t) const { base_.saturate(s, cap_); }

  std::string state_label(const State& s) const { return base_.state_label(s); }

  /// Typed interning key (compile/intern.hpp), forwarded when the base
  /// protocol packs one; otherwise the compiler falls back to the label.
  void state_key(const State& s, StateKeyBuf& key) const
    requires KeyedProtocol<P>
  {
    base_.state_key(s, key);
  }

  std::uint32_t geometric_cap() const { return cap_; }
  const P& base() const { return base_; }

 private:
  P base_;
  std::uint32_t cap_;
};

}  // namespace pops
