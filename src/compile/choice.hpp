// Exhaustive enumeration of a protocol's randomized branches.
//
// The compiler (compile/compiler.hpp) must turn an *algorithmic* transition —
// an `interact` body that consumes random draws — into the paper's transition
// relation with rate constants, a,b →ρ c,d (Section 4).  `ChoiceRng` makes
// that mechanical: it implements the `RandomSource` interface (sim/rng.hpp),
// but instead of sampling it walks every outcome.  Each draw is a *choice
// point* with finitely many options of known probability; one run of the
// protocol body follows one root-to-leaf path of the resulting choice tree,
// and `enumerate_choices` replays the body once per leaf, depth-first,
// exposing the path probability (the product of the chosen options'
// probabilities).  The probabilities over all leaves of a body sum to 1.
//
// Finiteness: coin() and bernoulli(p) branch 2 ways, below(n) branches n
// ways, and geometric_fair() — unbounded under `Rng` — is truncated at the
// configured cap: values 1..cap−1 keep their 2^−k mass and the cap absorbs
// the tail, receiving 2^−(cap−1).  That truncated law is exactly the law of
// min(geometric, cap), which `CapGeometric` (compile/bounded.hpp) applies on
// the simulation side, so enumeration and simulation draw from the same
// distributions.  uniform_double() has no finite branching and is rejected.
//
// Coin and geometric probabilities are dyadic rationals, represented exactly
// in double, so per-cell rate totals computed by the compiler come out as
// exactly 1.0 — which is what lets deterministic cells take the no-RNG fast
// path in sim/dispatch.hpp.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/require.hpp"
#include "sim/rng.hpp"

namespace pops {

class ChoiceRng {
 public:
  explicit ChoiceRng(std::uint32_t geometric_cap) : geometric_cap_(geometric_cap) {
    POPS_REQUIRE(geometric_cap >= 1, "geometric cap must be >= 1");
    POPS_REQUIRE(geometric_cap <= 50,
                 "geometric cap > 50 exceeds exact dyadic probability range");
  }

  // ----------------------------------------------- RandomSource interface --

  bool coin() {
    path_probability_ *= 0.5;
    return choose(2) == 0;
  }

  /// Truncated 1/2-geometric: support {1, ..., cap}, P(k) = 2^−k for k < cap
  /// and P(cap) = 2^−(cap−1) — the law of min(geometric_fair(), cap).
  std::uint32_t geometric_fair() {
    const auto k = static_cast<std::uint32_t>(choose(geometric_cap_)) + 1;
    const int exponent =
        k < geometric_cap_ ? -static_cast<int>(k) : 1 - static_cast<int>(geometric_cap_);
    path_probability_ *= std::ldexp(1.0, exponent);
    return k;
  }

  std::uint64_t below(std::uint64_t n) {
    POPS_REQUIRE(n >= 1, "below(n) needs n >= 1");
    POPS_REQUIRE(n <= 64, "below(n) branches n ways; not enumerable for large n");
    path_probability_ *= 1.0 / static_cast<double>(n);
    return choose(n);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    if (choose(2) == 0) {
      path_probability_ *= p;
      return true;
    }
    path_probability_ *= 1.0 - p;
    return false;
  }

  double uniform_double() {
    POPS_REQUIRE(false, "uniform_double() has no finite branch enumeration");
    return 0.0;
  }

  // ------------------------------------------------------ enumeration API --

  /// Probability of the path taken by the current run (product of choices).
  double path_probability() const { return path_probability_; }

  /// Choice points consumed by the current run.
  std::size_t choices_consumed() const { return cursor_; }

  void begin_run() {
    cursor_ = 0;
    path_probability_ = 1.0;
  }

  /// Advance to the next leaf in depth-first order.  Returns false when the
  /// whole choice tree has been visited.
  bool next_path() {
    trail_.resize(cursor_);
    while (!trail_.empty()) {
      Choice& last = trail_.back();
      if (++last.index < last.options) return true;
      trail_.pop_back();
    }
    return false;
  }

 private:
  struct Choice {
    std::uint64_t index = 0;
    std::uint64_t options = 0;
  };

  /// Consume one choice point: replay the prescribed branch if this prefix
  /// was visited before, otherwise open a new choice point at branch 0.
  std::uint64_t choose(std::uint64_t options) {
    if (cursor_ == trail_.size()) {
      trail_.push_back(Choice{0, options});
    } else {
      POPS_REQUIRE(trail_[cursor_].options == options,
                   "protocol consumed randomness inconsistently across replays");
    }
    return trail_[cursor_++].index;
  }

  std::uint32_t geometric_cap_;
  std::vector<Choice> trail_;  ///< prescribed branch per choice point
  std::size_t cursor_ = 0;
  double path_probability_ = 1.0;
};
static_assert(RandomSource<ChoiceRng>);

/// Run `body(rng)` once per path through its choice tree.  The body must be
/// deterministic apart from its `rng` draws (same prefix of choices ⇒ same
/// next draw), which holds for any protocol transition function.
template <typename Body>
void enumerate_choices(std::uint32_t geometric_cap, Body&& body) {
  ChoiceRng rng(geometric_cap);
  do {
    rng.begin_run();
    body(rng);
  } while (rng.next_path());
}

}  // namespace pops
