// Finite-state protocol compiler: agent-level transition algorithm in,
// `FiniteSpec` out.
//
// The paper states its constructions as per-agent programs over fields
// (Section 3), but the fast count simulators (sim/count_simulation.hpp,
// sim/batched_count_simulation.hpp) consume the Section-4 object — a finite
// transition relation with rate constants.  For any `BoundableProtocol`
// (compile/bounded.hpp) the translation is mechanical, and this compiler
// performs it:
//
//   1. Enumerate the initial states: run `initial` under `ChoiceRng`
//      (compile/choice.hpp), one replay per randomized branch; accumulate
//      the exact probability of each distinct resulting state.
//   2. Close under interaction: for every ordered pair (r, s) of discovered
//      states, replay `interact` over all branches; each leaf yields an
//      output pair with a dyadic-exact path probability.  Leaves that leave
//      both states unchanged become residual null mass; the rest merge into
//      rated `Transition`s (a,b →ρ c,d).  Newly produced states join the
//      frontier, so only *reachable* states are ever paired — the closure
//      itself is the pruning; the full field-product space is never built.
//      The emitted state set equals the producibility closure Λ^∞_ρ of the
//      emitted spec from the initial states (termination/producibility.hpp),
//      which `closure_matches` cross-checks.
//
// Encoding / interning scheme: each distinct agent state is identified by
// its *canonical key* — the field tuple packed by the protocol's `state_key`
// hook (compile/intern.hpp), falling back to the bytes of `state_label`,
// either of which must be injective on saturated states.  `Bounded`'s
// saturate hook runs before any state reaches the compiler, so keys never
// see a dead field's stale value; distinct keys really are distinct
// behaviors.  Keys intern to dense ids in discovery order via the
// lock-free-lookup `StateInterner`; the id is simultaneously (a) the index
// into `CompileResult::states` (the typed representative, for evaluating
// observables on count vectors) and (b) the `FiniteSpec` state id (names
// registered in the same order — the string label is built once per unique
// state, for the debug/golden surface only), so no translation table is
// needed between the typed and the compiled world.
//
// The interning + branch-enumeration machinery lives in `CompilerCore`,
// shared by two closure strategies:
//   * eager — `ProtocolCompiler` BFS-closes the whole reachable pair space
//     up front (this file), fanning each frontier round's (receiver, sender)
//     pair chunks out over the process-wide executor (core/executor.hpp).
//     Workers intern privately and a deterministic two-level pair-order
//     merge assigns global ids, so the result is bit-identical to the
//     single-threaded sweep at any thread count;
//   * lazy  — `LazyCompiledSpec` (compile/lazy.hpp) interns states on first
//     contact *during simulation* and compiles only the (receiver, sender)
//     pairs a run actually touches, lifting the states² barrier and
//     admitting caps c ≈ log₂ n.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "compile/bounded.hpp"
#include "compile/choice.hpp"
#include "compile/intern.hpp"
#include "core/executor.hpp"
#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "stats/discrete.hpp"
#include "termination/producibility.hpp"

namespace pops {

/// What the compiler needs: branch-enumerable initial/interact plus the
/// canonical label.  `Bounded<P>` satisfies this for any BoundableProtocol P.
template <typename P>
concept CompilableProtocol =
    std::copyable<typename P::State> &&
    requires(const P p, typename P::State& a, typename P::State& b, ChoiceRng& c) {
      { p.initial(c) } -> std::same_as<typename P::State>;
      p.interact(a, b, c);
      { p.state_label(a) } -> std::convertible_to<std::string>;
    };

struct CompileOptions {
  std::size_t max_states = 100000;         ///< explosion guard (throws beyond)
  std::size_t max_transitions = 30000000;  ///< ~720 MB of Transition entries
  std::size_t max_pairs = 20000000;        ///< lazy-mode registered-pair guard
};

/// Seed a count-API simulator with the n-agent initial configuration: each
/// agent draws independently from `distribution` (indexed by state id),
/// realized exactly by a chained binomial split (multinomial sampling).
template <typename Sim>
void seed_initial_distribution(Sim& sim, std::uint64_t n, Rng& rng,
                               const std::vector<double>& distribution) {
  std::uint64_t rem = n;
  double rest = 1.0;
  for (std::uint32_t id = 0; id < distribution.size() && rem > 0; ++id) {
    const double p = distribution[id];
    if (p <= 0.0) continue;
    const std::uint64_t k = p >= rest ? rem : binomial(rng, rem, p / rest);
    if (k > 0) sim.set_count(id, k);
    rem -= k;
    rest -= p;
  }
  POPS_REQUIRE(rem == 0, "initial distribution left agents unassigned");
}

/// Typed observable on a count vector: total count over states satisfying
/// `pred` (a predicate on the typed state).  `States` is any id-indexed
/// container of typed representatives (std::vector or StateInterner).
template <typename States, typename Pred>
std::uint64_t count_matching_states(const States& states,
                                    const std::vector<std::uint64_t>& counts,
                                    Pred&& pred) {
  POPS_REQUIRE(counts.size() <= states.size(), "count vector/spec size mismatch");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 0 && pred(states[static_cast<std::uint32_t>(i)])) total += counts[i];
  }
  return total;
}

/// The machinery both compilation modes share: canonical-key interning to
/// dense ids (mirrored into a FiniteSpec name registry), ChoiceRng branch
/// enumeration of `initial`, and per-pair branch enumeration of `interact`
/// with per-output rate merging.
///
/// Concurrency: `intern`/`explore` are safe to call from multiple threads —
/// the interner takes a mutex only on insertion (lookups are lock-free), and
/// exploration writes into caller-owned scratch.  The FiniteSpec name
/// registry grows under the same insert mutex; *reading* names
/// (`spec().name/id/has_state`) requires quiescence — no concurrent
/// compilation — which every harness satisfies by querying after runs.
template <CompilableProtocol P>
class CompilerCore {
 public:
  struct CellEntry {
    std::uint32_t out_receiver = 0;
    std::uint32_t out_sender = 0;
    double rate = 1.0;
  };

  CompilerCore(P protocol, std::uint32_t geometric_cap, CompileOptions opts)
      : proto_(std::move(protocol)),
        cap_(geometric_cap),
        opts_(opts),
        interner_(opts.max_states) {
    // Labels are deferred: interning registers only an id, and the spec
    // renders the label from the interned typed state on first name()
    // query — JIT-heavy runs that never print names never pay for them.
    // Safe to capture `this`: CompilerCore is pinned (the interner's mutex
    // makes it immovable).  The eager compiler materializes the registry
    // when it moves the spec out (see ProtocolCompiler::compile).
    spec_.set_lazy_namer(
        [this](std::uint32_t id) { return proto_.state_label(interner_[id]); });
  }

  const P& protocol() const { return proto_; }
  std::uint32_t geometric_cap() const { return cap_; }
  const CompileOptions& options() const { return opts_; }
  const FiniteSpec& spec() const { return spec_; }
  FiniteSpec& mutable_spec() { return spec_; }
  const StateInterner<typename P::State>& states() const { return interner_; }
  std::vector<typename P::State> snapshot_states() const { return interner_.snapshot(); }
  std::uint32_t num_states() const { return interner_.size(); }
  std::uint64_t pairs_explored() const {
    return pairs_explored_.load(std::memory_order_relaxed);
  }
  std::uint64_t paths_explored() const {
    return paths_explored_.load(std::memory_order_relaxed);
  }

  /// Intern a (saturated) state, returning its dense id.  Thread-safe; the
  /// slow path registers a lazily-named state with the spec under the
  /// insert mutex, keeping name order == id order — no label is built
  /// until someone asks for it.
  std::uint32_t intern(const typename P::State& s) {
    StateKeyBuf key;
    build_state_key(proto_, s, key);
    const std::uint64_t hash = key.hash();
    const std::uint32_t id = interner_.find(key, hash);
    if (id != StateInterner<typename P::State>::kNotFound) return id;
    return interner_.intern(s, key, hash,
                            [this](std::uint32_t new_id, const typename P::State&) {
      const std::uint32_t spec_id = spec_.add_unnamed_state();
      POPS_REQUIRE(spec_id == new_id, "spec/compiler id order diverged");
    });
  }

  /// Enumerate the initial states and accumulate their exact distribution
  /// (indexed by id; grows `distribution` as states intern).
  void enumerate_initial(std::vector<double>& distribution) {
    enumerate_choices(cap_, [&](ChoiceRng& rng) {
      typename P::State s = proto_.initial(rng);
      const std::uint32_t id = intern(s);
      if (distribution.size() < interner_.size()) {
        distribution.resize(interner_.size(), 0.0);
      }
      distribution[id] += rng.path_probability();
    });
  }

  /// Enumerate all interaction branches of ordered input pair (r, s) into
  /// `cell`, merging per-output probabilities (identity outputs stay
  /// residual null mass).  Output states resolve to ids through `resolve`,
  /// which must map equal states to equal ids and input states to r/s —
  /// `intern` for the interning modes, a global-probe-else-local-intern
  /// resolver for the parallel closure's workers.
  template <typename Resolve>
  void explore_into(std::uint32_t r, std::uint32_t s, std::vector<CellEntry>& cell,
                    Resolve&& resolve) {
    cell.clear();
    std::uint64_t paths = 0;
    enumerate_choices(cap_, [&](ChoiceRng& rng) {
      typename P::State a = interner_[r];  // fresh copies per path
      typename P::State b = interner_[s];
      proto_.interact(a, b, rng);
      ++paths;
      const std::uint32_t oa = resolve(a);
      const std::uint32_t ob = resolve(b);
      if (oa == r && ob == s) return;  // null path
      const double p = rng.path_probability();
      for (auto& c : cell) {
        if (c.out_receiver == oa && c.out_sender == ob) {
          c.rate += p;
          return;
        }
      }
      cell.push_back(CellEntry{oa, ob, p});
    });
    pairs_explored_.fetch_add(1, std::memory_order_relaxed);
    paths_explored_.fetch_add(paths, std::memory_order_relaxed);
    for (auto& c : cell) c.rate = c.rate > 1.0 ? 1.0 : c.rate;
  }

  /// Interning exploration: outputs intern as they appear (eager sequential
  /// sweep, merge phase, and the JIT's compile_pair).
  void explore(std::uint32_t r, std::uint32_t s, std::vector<CellEntry>& cell) {
    explore_into(r, s, cell, [this](const typename P::State& st) { return intern(st); });
  }

 private:
  P proto_;
  std::uint32_t cap_;
  CompileOptions opts_;
  StateInterner<typename P::State> interner_;
  FiniteSpec spec_;  ///< names interned in id order; transitions only eager
  std::atomic<std::uint64_t> pairs_explored_{0};
  std::atomic<std::uint64_t> paths_explored_{0};
};

template <CompilableProtocol P>
struct CompileResult {
  FiniteSpec spec;
  std::vector<typename P::State> states;    ///< dense id -> typed representative
  std::vector<double> initial_distribution; ///< by id; sums to exactly 1
  std::uint64_t pairs_explored = 0;
  std::uint64_t paths_explored = 0;

  std::uint32_t num_states() const { return spec.num_states(); }
  std::size_t num_transitions() const { return spec.transitions().size(); }

  /// Ids carrying positive initial mass.
  std::vector<std::uint32_t> initial_states() const {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < initial_distribution.size(); ++i) {
      if (initial_distribution[i] > 0.0) ids.push_back(i);
    }
    return ids;
  }

  /// Seed a count-API simulator with the n-agent initial configuration.
  template <typename Sim>
  void seed_initial(Sim& sim, std::uint64_t n, Rng& rng) const {
    seed_initial_distribution(sim, n, rng, initial_distribution);
  }

  /// Typed observable on a count vector: total count over states satisfying
  /// `pred` (a predicate on P::State).
  template <typename Pred>
  std::uint64_t count_matching(const std::vector<std::uint64_t>& counts,
                               Pred&& pred) const {
    POPS_REQUIRE(counts.size() == states.size(), "count vector/spec size mismatch");
    return count_matching_states(states, counts, pred);
  }
};

/// Cross-check against the Section-4 machinery: the producibility closure of
/// the emitted spec from the initial states must cover exactly the interned
/// state set (BFS discovery and the Λ^m_ρ chain agree).  Quadratic-ish in
/// spec size — intended for tests on small compiled specs.
template <CompilableProtocol P>
bool closure_matches(const CompileResult<P>& result) {
  const auto init = result.initial_states();
  ProducibilityClosure closure(result.spec,
                               std::set<std::uint32_t>(init.begin(), init.end()),
                               result.num_states(), 0.0);
  return closure.closure().size() == result.num_states();
}

/// Worker-private interner for the parallel eager closure: states new to the
/// global interner get *provisional* ids (tag bit set) that the merge phase
/// rewrites to global ids in deterministic pair order.
template <typename State>
class ProvisionalInterner {
 public:
  std::uint32_t intern(const State& s, const StateKeyBuf& key, std::uint64_t hash) {
    if (slots_.empty()) slots_.assign(64, 0);
    for (std::uint64_t idx = hash & (slots_.size() - 1);;
         idx = (idx + 1) & (slots_.size() - 1)) {
      const std::uint32_t v = slots_[idx];
      if (v == 0) {
        const std::uint32_t id = static_cast<std::uint32_t>(states_.size());
        states_.push_back(s);
        hashes_.push_back(hash);
        spans_.push_back({static_cast<std::uint32_t>(words_.size()), key.size()});
        words_.insert(words_.end(), key.data(), key.data() + key.size());
        slots_[idx] = id + 1;
        if ((states_.size() + 1) * 4 >= slots_.size() * 3) rehash();
        return id;
      }
      if (hashes_[v - 1] == hash && equals(v - 1, key)) return v - 1;
    }
  }

  const State& state(std::uint32_t id) const { return states_[id]; }
  std::size_t size() const { return states_.size(); }

 private:
  struct Span {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };

  bool equals(std::uint32_t id, const StateKeyBuf& key) const {
    const Span& sp = spans_[id];
    if (sp.len != key.size()) return false;
    for (std::uint32_t i = 0; i < sp.len; ++i) {
      if (words_[sp.off + i] != key.data()[i]) return false;
    }
    return true;
  }

  void rehash() {
    std::vector<std::uint32_t> next(slots_.size() * 2, 0);
    for (std::uint32_t id = 0; id < states_.size(); ++id) {
      std::uint64_t idx = hashes_[id] & (next.size() - 1);
      while (next[idx] != 0) idx = (idx + 1) & (next.size() - 1);
      next[idx] = id + 1;
    }
    slots_ = std::move(next);
  }

  std::vector<State> states_;
  std::vector<std::uint64_t> hashes_;
  std::vector<Span> spans_;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> slots_;
};

template <CompilableProtocol P>
class ProtocolCompiler {
 public:
  /// `geometric_cap` bounds branch enumeration of geometric draws and must
  /// match the cap the protocol simulates with (compile_bounded ties them).
  ProtocolCompiler(P protocol, std::uint32_t geometric_cap, CompileOptions opts = {})
      : core_(std::move(protocol), geometric_cap, opts) {}

  /// Close the reachable pair space and emit the spec.  `threads` = 0 uses
  /// the process-wide executor's width (Executor::set_threads pins it);
  /// the result is bit-identical (state ids, name order, transition order,
  /// rates) at every thread count, because workers only ever *read* the
  /// global interner and the merge phase interns their private discoveries
  /// in the sequential sweep's pair order.  Closure rounds fan out as
  /// executor tasks, so a compile nested inside a pool task (a trial that
  /// compiles) shares the process budget instead of oversubscribing.
  CompileResult<P> compile(unsigned threads = 0) {
    if (threads == 0) threads = Executor::instance().threads();
    CompileResult<P> out;
    core_.enumerate_initial(out.initial_distribution);
    // Reachable-pair closure, in frontier rounds.  Round k extends the sweep
    // to the states known at its start: processing state u pairs it (both
    // orders) with every state of id <= u, so all ordered pairs over known
    // states are explored exactly once and states discovered mid-round are
    // picked up by the next round.  The pair sequence — row u covers the
    // pairs whose larger id is u — is identical to the classic interleaved
    // loop `for u < num_states(): for v <= u`, which is what makes the
    // parallel rounds' deterministic merge reproduce its exact id order.
    std::vector<typename CompilerCore<P>::CellEntry> scratch;
    std::uint32_t closed = 0;
    while (closed < core_.num_states()) {
      const std::uint32_t known = core_.num_states();
      const std::uint64_t round_pairs = static_cast<std::uint64_t>(known) * known -
                                        static_cast<std::uint64_t>(closed) * closed;
      if (threads == 1 || round_pairs < kParallelRoundCutoff) {
        for (std::uint32_t u = closed; u < known; ++u) {
          for (std::uint32_t v = 0; v <= u; ++v) {
            emit(u, v, scratch);
            if (v != u) emit(v, u, scratch);
          }
        }
      } else {
        close_round_parallel(closed, known, threads);
      }
      closed = known;
    }
    out.initial_distribution.resize(core_.num_states(), 0.0);
    out.pairs_explored = core_.pairs_explored();
    out.paths_explored = core_.paths_explored();
    out.states = core_.snapshot_states();
    out.spec = std::move(core_.mutable_spec());
    // The core's namer renders through the interner, which dies with this
    // compiler — materialize the registry now (one id-ordered pass, still
    // off the per-path hot loop) so the CompileResult is self-contained
    // and its name accessors are pure concurrent-safe reads.  Only the
    // JIT path (LazyCompiledSpec) keeps labels deferred; it owns its core.
    out.spec.materialize_names();
    out.spec.validate();
    return out;
  }

 private:
  using CellEntry = typename CompilerCore<P>::CellEntry;

  static constexpr std::uint64_t kParallelRoundCutoff = 2048;  ///< pairs
  static constexpr std::uint64_t kPairChunk = 64;              ///< work unit
  static constexpr std::uint64_t kMergeChunkPairs = 16384;     ///< merge level-1/3 unit
  /// Per-batch pair cap (bounds the merge index at ~48 MB however big the
  /// closure).  Tests override it (POPS_COMPILE_BATCH_PAIRS) to force batch
  /// splits on small presets.
  static constexpr std::uint64_t kMaxBatchPairs =
#ifdef POPS_COMPILE_BATCH_PAIRS
      POPS_COMPILE_BATCH_PAIRS;
#else
      std::uint64_t{1} << 22;
#endif
  static constexpr std::uint32_t kProvisional = 0x80000000u;   ///< worker-local id tag

  /// Linearized pair sequence: positions [u², (u+1)²) hold row u — (u,0),
  /// (0,u), (u,1), (1,u), …, (u,u) — matching the sequential sweep's order.
  static std::pair<std::uint32_t, std::uint32_t> decode_pair(std::uint64_t p) {
    std::uint64_t u = static_cast<std::uint64_t>(
        std::sqrt(static_cast<double>(p)));
    while (u * u > p) --u;
    while ((u + 1) * (u + 1) <= p) ++u;
    const std::uint64_t k = p - u * u;
    const auto ui = static_cast<std::uint32_t>(u);
    if (k == 2 * u) return {ui, ui};
    const auto vi = static_cast<std::uint32_t>(k / 2);
    return (k % 2 == 0) ? std::pair{ui, vi} : std::pair{vi, ui};
  }

  void emit(std::uint32_t r, std::uint32_t s, std::vector<CellEntry>& scratch) {
    core_.explore(r, s, scratch);
    for (const auto& c : scratch) {
      core_.mutable_spec().add(r, s, c.out_receiver, c.out_sender, c.rate);
    }
    POPS_REQUIRE(core_.spec().transitions().size() <= core_.options().max_transitions,
                 "transition explosion: raise CompileOptions.max_transitions or "
                 "lower the field caps");
  }

  /// One parallel frontier round over pair positions [closed², known²),
  /// processed in batches of at most kMaxBatchPairs so the per-pair index
  /// and worker arenas stay bounded (the sequential sweep's memory is
  /// O(transitions); a dense per-pair vector over a whole ~S² round would
  /// not be).  Batching preserves bit-identity: batches run in pair order,
  /// and a state merged by an earlier batch simply resolves globally
  /// instead of provisionally — same id either way.
  void close_round_parallel(std::uint32_t closed, std::uint32_t known, unsigned threads) {
    POPS_REQUIRE(core_.options().max_states <= kProvisional,
                 "max_states collides with the provisional-id tag bit");
    const std::uint64_t begin = static_cast<std::uint64_t>(closed) * closed;
    const std::uint64_t end = static_cast<std::uint64_t>(known) * known;
    for (std::uint64_t batch = begin; batch < end; batch += kMaxBatchPairs) {
      close_pair_batch(batch, std::min(end, batch + kMaxBatchPairs), threads);
    }
  }

  /// Workers claim pair chunks of [begin, end) from an atomic cursor (work
  /// stealing on top of the executor's own stealing), explore against the
  /// frozen global interner, stash unknown output states in a private
  /// ProvisionalInterner, and append their cells to private arenas.  A
  /// two-level merge then fixes global ids in the sequential sweep's exact
  /// pair order — see the merge block below.
  void close_pair_batch(std::uint64_t begin, std::uint64_t end, unsigned threads) {

    struct PairCell {
      std::uint32_t worker = 0;
      std::uint32_t offset = 0;
      std::uint32_t len = 0;
    };
    struct WorkerOut {
      std::vector<CellEntry> entries;  ///< concatenated per-pair cells
      ProvisionalInterner<typename P::State> local;
    };

    std::vector<PairCell> cells(end - begin);
    const unsigned workers = static_cast<unsigned>(
        std::min<std::uint64_t>(threads, (end - begin + kPairChunk - 1) / kPairChunk));
    std::vector<WorkerOut> outs(workers);
    std::atomic<std::uint64_t> cursor{begin};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker_body = [&](unsigned w) {
      WorkerOut& wo = outs[w];
      std::vector<CellEntry> cell;
      auto resolve = [&](const typename P::State& st) -> std::uint32_t {
        StateKeyBuf key;
        build_state_key(core_.protocol(), st, key);
        const std::uint64_t hash = key.hash();
        const std::uint32_t g = core_.states().find(key, hash);
        if (g != StateInterner<typename P::State>::kNotFound) return g;
        POPS_REQUIRE(core_.num_states() + wo.local.size() < core_.options().max_states,
                     "state-space explosion: raise CompileOptions.max_states or "
                     "lower the field caps");
        return kProvisional | wo.local.intern(st, key, hash);
      };
      try {
        for (;;) {
          const std::uint64_t p0 = cursor.fetch_add(kPairChunk, std::memory_order_relaxed);
          if (p0 >= end) return;
          const std::uint64_t p1 = std::min(end, p0 + kPairChunk);
          for (std::uint64_t p = p0; p < p1; ++p) {
            const auto [r, s] = decode_pair(p);
            core_.explore_into(r, s, cell, resolve);
            cells[p - begin] = PairCell{w, static_cast<std::uint32_t>(wo.entries.size()),
                                        static_cast<std::uint32_t>(cell.size())};
            wo.entries.insert(wo.entries.end(), cell.begin(), cell.end());
          }
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        cursor.store(end, std::memory_order_relaxed);  // drain remaining work
      }
    };

    {
      Executor::TaskGroup group;
      for (unsigned w = 0; w + 1 < workers; ++w) {
        group.run([&worker_body, w] { worker_body(w); });
      }
      worker_body(workers - 1);  // the calling thread is worker #workers-1
      group.wait();
    }
    if (error) std::rethrow_exception(error);

    // Two-level deterministic merge: pair order fixes the global intern
    // order, exactly as the sequential sweep would have.
    //
    //   Level 1 (parallel)  — chunk the pair sequence; each chunk records,
    //     in (pair, entry, receiver-then-sender) scan order, the *first*
    //     reference to every provisional (worker, local id): the
    //     per-worker prefix dedup.
    //   Level 2 (sequential splice) — walk the chunks in order and intern
    //     each still-unresolved first reference.  Concatenating the
    //     chunks' first-reference lists in chunk order reproduces the
    //     global first-appearance order, so ids come out identical to the
    //     old single-threaded merge — but this serial step now touches
    //     each unique new state once instead of every transition operand.
    //   Level 3 (parallel)  — rewrite the cells through the resolved
    //     tables and emit every transition into its precomputed slot.
    constexpr std::uint32_t kUnresolved = 0xFFFFFFFFu;
    std::vector<std::vector<std::uint32_t>> resolved(workers);
    for (unsigned w = 0; w < workers; ++w) {
      resolved[w].assign(outs[w].local.size(), kUnresolved);
    }
    struct FirstRef {
      std::uint32_t worker = 0;
      std::uint32_t local = 0;
    };
    // Chunk count is bounded by the executor width, not the batch size:
    // every chunk task zeroes a per-worker seen-bitmap over the
    // provisional states, so unbounded chunks would make level 1
    // O(chunks x provisional) — with ~4 chunks per thread the bitmap cost
    // stays O(width x provisional) while the stealing still load-balances.
    const std::uint64_t merge_chunk = std::max<std::uint64_t>(
        kMergeChunkPairs,
        (end - begin + Executor::instance().threads() * 4 - 1) /
            (Executor::instance().threads() * 4));
    const std::size_t nchunks =
        static_cast<std::size_t>((end - begin + merge_chunk - 1) / merge_chunk);
    std::vector<std::vector<FirstRef>> chunk_firsts(nchunks);
    Executor::parallel_chunks(
        begin, end, merge_chunk,
        [&](std::uint64_t c, std::uint64_t lo, std::uint64_t hi) {
          std::vector<std::vector<char>> seen(workers);
          for (unsigned w = 0; w < workers; ++w) seen[w].assign(outs[w].local.size(), 0);
          std::vector<FirstRef>& firsts = chunk_firsts[c];
          for (std::uint64_t p = lo; p < hi; ++p) {
            const PairCell& pc = cells[p - begin];
            for (std::uint32_t i = 0; i < pc.len; ++i) {
              const CellEntry& e = outs[pc.worker].entries[pc.offset + i];
              for (const std::uint32_t id : {e.out_receiver, e.out_sender}) {
                if ((id & kProvisional) == 0) continue;
                const std::uint32_t local = id & ~kProvisional;
                if (!seen[pc.worker][local]) {
                  seen[pc.worker][local] = 1;
                  firsts.push_back(FirstRef{pc.worker, local});
                }
              }
            }
          }
        });
    for (const auto& firsts : chunk_firsts) {
      for (const FirstRef& fr : firsts) {
        std::uint32_t& memo = resolved[fr.worker][fr.local];
        if (memo == kUnresolved) memo = core_.intern(outs[fr.worker].local.state(fr.local));
      }
    }
    std::vector<std::uint64_t> offsets(end - begin + 1, 0);
    for (std::uint64_t p = begin; p < end; ++p) {
      offsets[p - begin + 1] = offsets[p - begin] + cells[p - begin].len;
    }
    POPS_REQUIRE(core_.spec().transitions().size() + offsets[end - begin] <=
                     core_.options().max_transitions,
                 "transition explosion: raise CompileOptions.max_transitions or "
                 "lower the field caps");
    Transition* dst = core_.mutable_spec().append_transitions(offsets[end - begin]);
    Executor::parallel_chunks(
        begin, end, merge_chunk,
        [&](std::uint64_t, std::uint64_t lo, std::uint64_t hi) {
          const auto resolve = [&](std::uint32_t w, std::uint32_t id) {
            return (id & kProvisional) != 0 ? resolved[w][id & ~kProvisional] : id;
          };
          for (std::uint64_t p = lo; p < hi; ++p) {
            const auto [r, s] = decode_pair(p);
            const PairCell& pc = cells[p - begin];
            Transition* slot = dst + offsets[p - begin];
            for (std::uint32_t i = 0; i < pc.len; ++i) {
              const CellEntry& e = outs[pc.worker].entries[pc.offset + i];
              slot[i] = Transition{r, s, resolve(pc.worker, e.out_receiver),
                                   resolve(pc.worker, e.out_sender), e.rate};
            }
          }
        });
  }

  CompilerCore<P> core_;
};

/// One-call path for the common case: wrap a BoundableProtocol at the given
/// geometric cap and compile it, with enumeration and simulation caps tied.
/// `threads` = 0 compiles on all cores (same result at any thread count).
template <BoundableProtocol P>
CompileResult<Bounded<P>> compile_bounded(P base, std::uint32_t geometric_cap,
                                          CompileOptions opts = {}, unsigned threads = 0) {
  Bounded<P> bounded(std::move(base), geometric_cap);
  return ProtocolCompiler<Bounded<P>>(std::move(bounded), geometric_cap, opts)
      .compile(threads);
}

}  // namespace pops
