// Finite-state protocol compiler: agent-level transition algorithm in,
// `FiniteSpec` out.
//
// The paper states its constructions as per-agent programs over fields
// (Section 3), but the fast count simulators (sim/count_simulation.hpp,
// sim/batched_count_simulation.hpp) consume the Section-4 object — a finite
// transition relation with rate constants.  For any `BoundableProtocol`
// (compile/bounded.hpp) the translation is mechanical, and this compiler
// performs it:
//
//   1. Enumerate the initial states: run `initial` under `ChoiceRng`
//      (compile/choice.hpp), one replay per randomized branch; accumulate
//      the exact probability of each distinct resulting state.
//   2. Close under interaction: for every ordered pair (r, s) of discovered
//      states, replay `interact` over all branches; each leaf yields an
//      output pair with a dyadic-exact path probability.  Leaves that leave
//      both states unchanged become residual null mass; the rest merge into
//      rated `Transition`s (a,b →ρ c,d).  Newly produced states join the
//      frontier, so only *reachable* states are ever paired — the closure
//      itself is the pruning; the full field-product space is never built.
//      The emitted state set equals the producibility closure Λ^∞_ρ of the
//      emitted spec from the initial states (termination/producibility.hpp),
//      which `closure_matches` cross-checks.
//
// Encoding / interning scheme: each distinct agent state is identified by
// its *canonical label* — the string produced by the protocol's
// `state_label`, required to be injective on saturated states.  `Bounded`'s
// saturate hook runs before any state reaches the compiler, so labels never
// see a dead field's stale value; distinct labels really are distinct
// behaviors.  Labels are interned to dense ids in BFS discovery order, and
// the id is simultaneously (a) the index into `CompileResult::states` (the
// typed representative, for evaluating observables on count vectors) and
// (b) the `FiniteSpec` state id (names registered in the same order), so no
// translation table is needed between the typed and the compiled world.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "compile/bounded.hpp"
#include "compile/choice.hpp"
#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "stats/discrete.hpp"
#include "termination/producibility.hpp"

namespace pops {

/// What the compiler needs: branch-enumerable initial/interact plus the
/// canonical label.  `Bounded<P>` satisfies this for any BoundableProtocol P.
template <typename P>
concept CompilableProtocol =
    std::copyable<typename P::State> &&
    requires(const P p, typename P::State& a, typename P::State& b, ChoiceRng& c) {
      { p.initial(c) } -> std::same_as<typename P::State>;
      p.interact(a, b, c);
      { p.state_label(a) } -> std::convertible_to<std::string>;
    };

struct CompileOptions {
  std::size_t max_states = 100000;         ///< explosion guard (throws beyond)
  std::size_t max_transitions = 30000000;  ///< ~720 MB of Transition entries
};

template <CompilableProtocol P>
struct CompileResult {
  FiniteSpec spec;
  std::vector<typename P::State> states;    ///< dense id -> typed representative
  std::vector<double> initial_distribution; ///< by id; sums to exactly 1
  std::uint64_t pairs_explored = 0;
  std::uint64_t paths_explored = 0;

  std::uint32_t num_states() const { return spec.num_states(); }
  std::size_t num_transitions() const { return spec.transitions().size(); }

  /// Ids carrying positive initial mass.
  std::vector<std::uint32_t> initial_states() const {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < initial_distribution.size(); ++i) {
      if (initial_distribution[i] > 0.0) ids.push_back(i);
    }
    return ids;
  }

  /// Seed a count-API simulator with the n-agent initial configuration: each
  /// agent draws independently from `initial_distribution`, realized exactly
  /// by a chained binomial split (multinomial sampling).
  template <typename Sim>
  void seed_initial(Sim& sim, std::uint64_t n, Rng& rng) const {
    std::uint64_t rem = n;
    double rest = 1.0;
    for (std::uint32_t id = 0; id < initial_distribution.size() && rem > 0; ++id) {
      const double p = initial_distribution[id];
      if (p <= 0.0) continue;
      const std::uint64_t k = p >= rest ? rem : binomial(rng, rem, p / rest);
      if (k > 0) sim.set_count(id, k);
      rem -= k;
      rest -= p;
    }
    POPS_REQUIRE(rem == 0, "initial distribution left agents unassigned");
  }

  /// Typed observable on a count vector: total count over states satisfying
  /// `pred` (a predicate on P::State).
  template <typename Pred>
  std::uint64_t count_matching(const std::vector<std::uint64_t>& counts,
                               Pred&& pred) const {
    POPS_REQUIRE(counts.size() == states.size(), "count vector/spec size mismatch");
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0 && pred(states[i])) total += counts[i];
    }
    return total;
  }
};

/// Cross-check against the Section-4 machinery: the producibility closure of
/// the emitted spec from the initial states must cover exactly the interned
/// state set (BFS discovery and the Λ^m_ρ chain agree).  Quadratic-ish in
/// spec size — intended for tests on small compiled specs.
template <CompilableProtocol P>
bool closure_matches(const CompileResult<P>& result) {
  const auto init = result.initial_states();
  ProducibilityClosure closure(result.spec,
                               std::set<std::uint32_t>(init.begin(), init.end()),
                               result.num_states(), 0.0);
  return closure.closure().size() == result.num_states();
}

template <CompilableProtocol P>
class ProtocolCompiler {
 public:
  /// `geometric_cap` bounds branch enumeration of geometric draws and must
  /// match the cap the protocol simulates with (compile_bounded ties them).
  ProtocolCompiler(P protocol, std::uint32_t geometric_cap, CompileOptions opts = {})
      : proto_(std::move(protocol)), cap_(geometric_cap), opts_(opts) {}

  CompileResult<P> compile() {
    CompileResult<P> out;
    // Initial states and their exact distribution.
    enumerate_choices(cap_, [&](ChoiceRng& rng) {
      typename P::State s = proto_.initial(rng);
      const std::uint32_t id = intern(s, out);
      if (out.initial_distribution.size() < out.states.size()) {
        out.initial_distribution.resize(out.states.size(), 0.0);
      }
      out.initial_distribution[id] += rng.path_probability();
    });
    // Reachable-pair closure.  Processing state u pairs it (both orders)
    // with every state discovered no later than u; states discovered during
    // u's row get larger ids and handle the (u, ·) pairs on their own turn —
    // every ordered pair of reachable states is explored exactly once.
    std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> cell;
    for (std::uint32_t u = 0; u < out.states.size(); ++u) {
      for (std::uint32_t v = 0; v <= u; ++v) {
        explore(u, v, out, cell);
        if (v != u) explore(v, u, out, cell);
      }
    }
    out.initial_distribution.resize(out.states.size(), 0.0);
    out.spec.validate();
    return out;
  }

 private:
  /// Enumerate all interaction branches of ordered input pair (r, s), merge
  /// per-output probabilities, and emit rated transitions (identity outputs
  /// stay residual null mass).
  void explore(std::uint32_t r, std::uint32_t s, CompileResult<P>& out,
               std::vector<std::tuple<std::uint32_t, std::uint32_t, double>>& cell) {
    cell.clear();
    enumerate_choices(cap_, [&](ChoiceRng& rng) {
      typename P::State a = out.states[r];  // fresh copies per path; intern()
      typename P::State b = out.states[s];  // below may grow `states`
      proto_.interact(a, b, rng);
      ++out.paths_explored;
      const std::uint32_t oa = intern(a, out);
      const std::uint32_t ob = intern(b, out);
      if (oa == r && ob == s) return;  // null path
      const double p = rng.path_probability();
      for (auto& [cr, cs, cp] : cell) {
        if (cr == oa && cs == ob) {
          cp += p;
          return;
        }
      }
      cell.emplace_back(oa, ob, p);
    });
    ++out.pairs_explored;
    for (const auto& [cr, cs, p] : cell) {
      out.spec.add(r, s, cr, cs, p > 1.0 ? 1.0 : p);
    }
    POPS_REQUIRE(out.num_transitions() <= opts_.max_transitions,
                 "transition explosion: raise CompileOptions.max_transitions or "
                 "lower the field caps");
  }

  std::uint32_t intern(const typename P::State& s, CompileResult<P>& out) {
    std::string label = proto_.state_label(s);
    const auto [it, inserted] =
        ids_.try_emplace(std::move(label), static_cast<std::uint32_t>(out.states.size()));
    if (inserted) {
      POPS_REQUIRE(out.states.size() < opts_.max_states,
                   "state-space explosion: raise CompileOptions.max_states or "
                   "lower the field caps");
      out.states.push_back(s);
      const std::uint32_t spec_id = out.spec.state(it->first);
      POPS_REQUIRE(spec_id == it->second, "spec/compiler id order diverged");
    }
    return it->second;
  }

  P proto_;
  std::uint32_t cap_;
  CompileOptions opts_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

/// One-call path for the common case: wrap a BoundableProtocol at the given
/// geometric cap and compile it, with enumeration and simulation caps tied.
template <BoundableProtocol P>
CompileResult<Bounded<P>> compile_bounded(P base, std::uint32_t geometric_cap,
                                          CompileOptions opts = {}) {
  Bounded<P> bounded(std::move(base), geometric_cap);
  return ProtocolCompiler<Bounded<P>>(std::move(bounded), geometric_cap, opts).compile();
}

}  // namespace pops
