// Finite-state protocol compiler: agent-level transition algorithm in,
// `FiniteSpec` out.
//
// The paper states its constructions as per-agent programs over fields
// (Section 3), but the fast count simulators (sim/count_simulation.hpp,
// sim/batched_count_simulation.hpp) consume the Section-4 object — a finite
// transition relation with rate constants.  For any `BoundableProtocol`
// (compile/bounded.hpp) the translation is mechanical, and this compiler
// performs it:
//
//   1. Enumerate the initial states: run `initial` under `ChoiceRng`
//      (compile/choice.hpp), one replay per randomized branch; accumulate
//      the exact probability of each distinct resulting state.
//   2. Close under interaction: for every ordered pair (r, s) of discovered
//      states, replay `interact` over all branches; each leaf yields an
//      output pair with a dyadic-exact path probability.  Leaves that leave
//      both states unchanged become residual null mass; the rest merge into
//      rated `Transition`s (a,b →ρ c,d).  Newly produced states join the
//      frontier, so only *reachable* states are ever paired — the closure
//      itself is the pruning; the full field-product space is never built.
//      The emitted state set equals the producibility closure Λ^∞_ρ of the
//      emitted spec from the initial states (termination/producibility.hpp),
//      which `closure_matches` cross-checks.
//
// Encoding / interning scheme: each distinct agent state is identified by
// its *canonical label* — the string produced by the protocol's
// `state_label`, required to be injective on saturated states.  `Bounded`'s
// saturate hook runs before any state reaches the compiler, so labels never
// see a dead field's stale value; distinct labels really are distinct
// behaviors.  Labels are interned to dense ids in discovery order, and the
// id is simultaneously (a) the index into `CompileResult::states` (the
// typed representative, for evaluating observables on count vectors) and
// (b) the `FiniteSpec` state id (names registered in the same order), so no
// translation table is needed between the typed and the compiled world.
//
// The interning + branch-enumeration machinery lives in `CompilerCore`,
// shared by two closure strategies:
//   * eager — `ProtocolCompiler` BFS-closes the whole reachable pair space
//     up front (this file); states² pair enumeration caps interactive
//     compiles at geometric caps c ≈ 4;
//   * lazy  — `LazyCompiledSpec` (compile/lazy.hpp) interns states on first
//     contact *during simulation* and compiles only the (receiver, sender)
//     pairs a run actually touches, lifting the states² barrier and
//     admitting caps c ≈ log₂ n.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "compile/bounded.hpp"
#include "compile/choice.hpp"
#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "stats/discrete.hpp"
#include "termination/producibility.hpp"

namespace pops {

/// What the compiler needs: branch-enumerable initial/interact plus the
/// canonical label.  `Bounded<P>` satisfies this for any BoundableProtocol P.
template <typename P>
concept CompilableProtocol =
    std::copyable<typename P::State> &&
    requires(const P p, typename P::State& a, typename P::State& b, ChoiceRng& c) {
      { p.initial(c) } -> std::same_as<typename P::State>;
      p.interact(a, b, c);
      { p.state_label(a) } -> std::convertible_to<std::string>;
    };

struct CompileOptions {
  std::size_t max_states = 100000;         ///< explosion guard (throws beyond)
  std::size_t max_transitions = 30000000;  ///< ~720 MB of Transition entries
  std::size_t max_pairs = 20000000;        ///< lazy-mode registered-pair guard
};

/// Seed a count-API simulator with the n-agent initial configuration: each
/// agent draws independently from `distribution` (indexed by state id),
/// realized exactly by a chained binomial split (multinomial sampling).
template <typename Sim>
void seed_initial_distribution(Sim& sim, std::uint64_t n, Rng& rng,
                               const std::vector<double>& distribution) {
  std::uint64_t rem = n;
  double rest = 1.0;
  for (std::uint32_t id = 0; id < distribution.size() && rem > 0; ++id) {
    const double p = distribution[id];
    if (p <= 0.0) continue;
    const std::uint64_t k = p >= rest ? rem : binomial(rng, rem, p / rest);
    if (k > 0) sim.set_count(id, k);
    rem -= k;
    rest -= p;
  }
  POPS_REQUIRE(rem == 0, "initial distribution left agents unassigned");
}

/// Typed observable on a count vector: total count over states satisfying
/// `pred` (a predicate on the typed state).
template <typename State, typename Pred>
std::uint64_t count_matching_states(const std::vector<State>& states,
                                    const std::vector<std::uint64_t>& counts,
                                    Pred&& pred) {
  POPS_REQUIRE(counts.size() <= states.size(), "count vector/spec size mismatch");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 0 && pred(states[i])) total += counts[i];
  }
  return total;
}

/// The machinery both compilation modes share: canonical-label interning to
/// dense ids (mirrored into a FiniteSpec name registry), ChoiceRng branch
/// enumeration of `initial`, and per-pair branch enumeration of `interact`
/// with per-output rate merging.
template <CompilableProtocol P>
class CompilerCore {
 public:
  struct CellEntry {
    std::uint32_t out_receiver = 0;
    std::uint32_t out_sender = 0;
    double rate = 1.0;
  };

  CompilerCore(P protocol, std::uint32_t geometric_cap, CompileOptions opts)
      : proto_(std::move(protocol)), cap_(geometric_cap), opts_(opts) {}

  const P& protocol() const { return proto_; }
  std::uint32_t geometric_cap() const { return cap_; }
  const CompileOptions& options() const { return opts_; }
  const FiniteSpec& spec() const { return spec_; }
  FiniteSpec& mutable_spec() { return spec_; }
  const std::vector<typename P::State>& states() const { return states_; }
  std::uint32_t num_states() const { return static_cast<std::uint32_t>(states_.size()); }
  std::uint64_t pairs_explored() const { return pairs_explored_; }
  std::uint64_t paths_explored() const { return paths_explored_; }

  /// Intern a (saturated) state, returning its dense id.
  std::uint32_t intern(const typename P::State& s) {
    std::string label = proto_.state_label(s);
    const auto [it, inserted] =
        ids_.try_emplace(std::move(label), static_cast<std::uint32_t>(states_.size()));
    if (inserted) {
      POPS_REQUIRE(states_.size() < opts_.max_states,
                   "state-space explosion: raise CompileOptions.max_states or "
                   "lower the field caps");
      states_.push_back(s);
      const std::uint32_t spec_id = spec_.state(it->first);
      POPS_REQUIRE(spec_id == it->second, "spec/compiler id order diverged");
    }
    return it->second;
  }

  /// Enumerate the initial states and accumulate their exact distribution
  /// (indexed by id; grows `distribution` as states intern).
  void enumerate_initial(std::vector<double>& distribution) {
    enumerate_choices(cap_, [&](ChoiceRng& rng) {
      typename P::State s = proto_.initial(rng);
      const std::uint32_t id = intern(s);
      if (distribution.size() < states_.size()) {
        distribution.resize(states_.size(), 0.0);
      }
      distribution[id] += rng.path_probability();
    });
  }

  /// Enumerate all interaction branches of ordered input pair (r, s) and
  /// merge per-output probabilities (identity outputs stay residual null
  /// mass).  Output states intern as they appear; the returned reference is
  /// valid until the next explore() call.
  const std::vector<CellEntry>& explore(std::uint32_t r, std::uint32_t s) {
    cell_.clear();
    enumerate_choices(cap_, [&](ChoiceRng& rng) {
      typename P::State a = states_[r];  // fresh copies per path; intern()
      typename P::State b = states_[s];  // below may grow states_
      proto_.interact(a, b, rng);
      ++paths_explored_;
      const std::uint32_t oa = intern(a);
      const std::uint32_t ob = intern(b);
      if (oa == r && ob == s) return;  // null path
      const double p = rng.path_probability();
      for (auto& c : cell_) {
        if (c.out_receiver == oa && c.out_sender == ob) {
          c.rate += p;
          return;
        }
      }
      cell_.push_back(CellEntry{oa, ob, p});
    });
    ++pairs_explored_;
    for (auto& c : cell_) c.rate = c.rate > 1.0 ? 1.0 : c.rate;
    return cell_;
  }

 private:
  P proto_;
  std::uint32_t cap_;
  CompileOptions opts_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<typename P::State> states_;
  FiniteSpec spec_;  ///< names interned in id order; transitions only eager
  std::vector<CellEntry> cell_;
  std::uint64_t pairs_explored_ = 0;
  std::uint64_t paths_explored_ = 0;
};

template <CompilableProtocol P>
struct CompileResult {
  FiniteSpec spec;
  std::vector<typename P::State> states;    ///< dense id -> typed representative
  std::vector<double> initial_distribution; ///< by id; sums to exactly 1
  std::uint64_t pairs_explored = 0;
  std::uint64_t paths_explored = 0;

  std::uint32_t num_states() const { return spec.num_states(); }
  std::size_t num_transitions() const { return spec.transitions().size(); }

  /// Ids carrying positive initial mass.
  std::vector<std::uint32_t> initial_states() const {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < initial_distribution.size(); ++i) {
      if (initial_distribution[i] > 0.0) ids.push_back(i);
    }
    return ids;
  }

  /// Seed a count-API simulator with the n-agent initial configuration.
  template <typename Sim>
  void seed_initial(Sim& sim, std::uint64_t n, Rng& rng) const {
    seed_initial_distribution(sim, n, rng, initial_distribution);
  }

  /// Typed observable on a count vector: total count over states satisfying
  /// `pred` (a predicate on P::State).
  template <typename Pred>
  std::uint64_t count_matching(const std::vector<std::uint64_t>& counts,
                               Pred&& pred) const {
    POPS_REQUIRE(counts.size() == states.size(), "count vector/spec size mismatch");
    return count_matching_states(states, counts, pred);
  }
};

/// Cross-check against the Section-4 machinery: the producibility closure of
/// the emitted spec from the initial states must cover exactly the interned
/// state set (BFS discovery and the Λ^m_ρ chain agree).  Quadratic-ish in
/// spec size — intended for tests on small compiled specs.
template <CompilableProtocol P>
bool closure_matches(const CompileResult<P>& result) {
  const auto init = result.initial_states();
  ProducibilityClosure closure(result.spec,
                               std::set<std::uint32_t>(init.begin(), init.end()),
                               result.num_states(), 0.0);
  return closure.closure().size() == result.num_states();
}

template <CompilableProtocol P>
class ProtocolCompiler {
 public:
  /// `geometric_cap` bounds branch enumeration of geometric draws and must
  /// match the cap the protocol simulates with (compile_bounded ties them).
  ProtocolCompiler(P protocol, std::uint32_t geometric_cap, CompileOptions opts = {})
      : core_(std::move(protocol), geometric_cap, opts) {}

  CompileResult<P> compile() {
    CompileResult<P> out;
    core_.enumerate_initial(out.initial_distribution);
    // Reachable-pair closure.  Processing state u pairs it (both orders)
    // with every state discovered no later than u; states discovered during
    // u's row get larger ids and handle the (u, ·) pairs on their own turn —
    // every ordered pair of reachable states is explored exactly once.
    for (std::uint32_t u = 0; u < core_.num_states(); ++u) {
      for (std::uint32_t v = 0; v <= u; ++v) {
        emit(u, v);
        if (v != u) emit(v, u);
      }
    }
    out.initial_distribution.resize(core_.num_states(), 0.0);
    out.pairs_explored = core_.pairs_explored();
    out.paths_explored = core_.paths_explored();
    out.states = core_.states();
    out.spec = std::move(core_.mutable_spec());
    out.spec.validate();
    return out;
  }

 private:
  void emit(std::uint32_t r, std::uint32_t s) {
    const auto& cell = core_.explore(r, s);
    for (const auto& c : cell) {
      core_.mutable_spec().add(r, s, c.out_receiver, c.out_sender, c.rate);
    }
    POPS_REQUIRE(core_.spec().transitions().size() <= core_.options().max_transitions,
                 "transition explosion: raise CompileOptions.max_transitions or "
                 "lower the field caps");
  }

  CompilerCore<P> core_;
};

/// One-call path for the common case: wrap a BoundableProtocol at the given
/// geometric cap and compile it, with enumeration and simulation caps tied.
template <BoundableProtocol P>
CompileResult<Bounded<P>> compile_bounded(P base, std::uint32_t geometric_cap,
                                          CompileOptions opts = {}) {
  Bounded<P> bounded(std::move(base), geometric_cap);
  return ProtocolCompiler<Bounded<P>>(std::move(bounded), geometric_cap, opts).compile();
}

}  // namespace pops
