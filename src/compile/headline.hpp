// Ready-made bounded-field configurations of the paper's headline
// constructions, shared by benches and tests.
//
// Choosing the knobs: the compiled state count is the product of the live
// field ranges, all of which scale with the geometric cap c and the
// protocol's multipliers.  For Log-Size-Estimation the workers contribute
// Σ_ls (Tm·ls + 1) · (Em·ls) · c · 2 states (time × epoch × grv × flags per
// reachable logSize2 value ls ≤ c + offset) and the storage agents
// Σ_e (c·e + 1) per epoch level — i.e. the paper's Θ(log⁴ n) with
// "log n" frozen at the cap.  Measured counts (see BENCH_compiled.json):
// the tiny preset compiles to a few hundred states, the small preset to a
// few thousand; each extra cap unit roughly doubles-to-quadruples the count
// and squares the transition table, so caps beyond ~4 are where pair
// enumeration (states²) stops being interactive.
#pragma once

#include <cstdint>

#include "compile/compiler.hpp"
#include "core/log_size_estimation.hpp"
#include "core/uniform_leader_election.hpp"
#include "core/uniform_majority.hpp"

namespace pops {

/// MajorityStage whose initial vote is +1 with probability `positive_bias` —
/// the compiled-world analogue of `assign_votes` (a count simulator has no
/// per-agent indices to assign, so the vote split enters through the initial
/// distribution instead).
struct VotedMajorityStage : MajorityStage {
  double positive_bias = 0.5;

  template <RandomSource R>
  State initial(R& rng) const {
    State s;
    s.input = rng.bernoulli(positive_bias) ? std::int8_t{+1} : std::int8_t{-1};
    s.sign = s.input;
    s.output = s.input;
    return s;
  }
};
static_assert(StageProtocol<VotedMajorityStage>);

// ------------------------------------------------- Log-Size-Estimation ----

/// Smallest interesting regime: a few hundred states; runs to n = 10^12.
inline Bounded<LogSizeEstimation> log_size_tiny() {
  return Bounded<LogSizeEstimation>(
      LogSizeEstimation(LogSizeEstimation::Params{
          .time_multiplier = 4, .epoch_multiplier = 1, .logsize_offset = 1}),
      /*geometric_cap=*/2);
}

/// A few thousand states; the largest preset with interactive compile times.
inline Bounded<LogSizeEstimation> log_size_small() {
  return Bounded<LogSizeEstimation>(
      LogSizeEstimation(LogSizeEstimation::Params{
          .time_multiplier = 8, .epoch_multiplier = 1, .logsize_offset = 1}),
      /*geometric_cap=*/3);
}

/// JIT-only regime: cap 8 with the paper-shaped (time × epoch) cycle kept
/// wide (Tm 16, Em 3).  The reachable space is ≳10⁵ states and its eager
/// pair closure runs to ~10¹⁰ ordered pairs — far beyond interactive eager
/// compiles — but a run only dispatches the pairs its configuration
/// co-occupies, which is what `LazyCompiledSpec` compiles (measured: ~1.1·10⁴
/// interned states / ~10⁶ compiled pairs after an n = 10⁵ convergence run;
/// see BENCH_compiled.json "log_size_estimation/c8_lazy").
inline Bounded<LogSizeEstimation> log_size_c8() {
  return Bounded<LogSizeEstimation>(
      LogSizeEstimation(LogSizeEstimation::Params{
          .time_multiplier = 16, .epoch_multiplier = 3, .logsize_offset = 1}),
      /*geometric_cap=*/8);
}

// --------------------------------------------------------- composition ----

/// Composition parameters shared by the majority / leader-election presets:
/// cap 1 freezes the weak estimate at s = 1 + offset = 2, giving K = 6
/// stages of threshold 8.
inline Composed<VotedMajorityStage> majority_preset(double positive_bias) {
  return Composed<VotedMajorityStage>(
      VotedMajorityStage{{}, positive_bias},
      Composed<VotedMajorityStage>::Params{
          .clock_multiplier = 4, .stage_multiplier = 3, .estimate_offset = 1});
}

inline Bounded<Composed<VotedMajorityStage>> bounded_majority(double positive_bias) {
  return Bounded<Composed<VotedMajorityStage>>(majority_preset(positive_bias),
                                               /*geometric_cap=*/1);
}

inline UniformLeaderElection leader_election_preset(std::uint32_t max_bits) {
  return UniformLeaderElection(
      LeaderElectionStage{max_bits},
      UniformLeaderElection::Params{
          .clock_multiplier = 4, .stage_multiplier = 3, .estimate_offset = 1});
}

inline Bounded<UniformLeaderElection> bounded_leader_election(
    std::uint32_t max_bits = 4) {
  return Bounded<UniformLeaderElection>(leader_election_preset(max_bits),
                                        /*geometric_cap=*/1);
}

}  // namespace pops
