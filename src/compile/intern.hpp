// Typed-state interning: canonical field tuples hashed directly.
//
// The compiler originally interned states through one
// `unordered_map<std::string, id>` keyed on `state_label` — which meant an
// snprintf + heap string + byte-wise hash per *path output*, ~2 intern calls
// per explored branch (measured: the majority of eager compile time on the
// multi-thousand-state presets).  This header replaces that with a typed
// key:
//
//   * `StateKeyBuf` — a small inline tuple of u64 words.  A protocol packs
//     its canonical (saturated) fields into it via an optional `state_key`
//     hook; the packing must be injective exactly where `state_label` is
//     (same contract, no strings).  Protocols without the hook fall back to
//     packing the label's bytes, so every CompilableProtocol still interns
//     through the one code path.
//   * `StateInterner` — an open-addressing arena keyed on the word tuple.
//     States, key words and per-state metadata live in `StableArena`s
//     (stable addresses), and the slot table is published atomically, so
//     lookups are lock-free and safe concurrent with inserts — the property
//     the sharded JIT (compile/lazy.hpp) and the parallel eager closure
//     (compile/compiler.hpp) are built on.  Inserts serialize on one mutex;
//     the hit path (the overwhelmingly common case once the state space is
//     warm) takes no lock.
//
// String labels are still produced — once per *unique* state, on first
// insertion — because the `FiniteSpec` name registry is the debug/golden
// surface; they are just no longer on the per-path hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/require.hpp"
#include "sim/stable_arena.hpp"

namespace pops {

/// Canonical key of one state: up to kMaxWords u64 words pushed by the
/// protocol's `state_key` hook (or packed from the label as a fallback).
class StateKeyBuf {
 public:
  static constexpr std::uint32_t kMaxWords = 32;

  void clear() { len_ = 0; }

  void push(std::uint64_t word) {
    POPS_REQUIRE(len_ < kMaxWords,
                 "state key too long: pack fields tighter in state_key(), or "
                 "shorten state_label() for the label fallback");
    words_[len_++] = word;
  }

  /// Label fallback: the string's length word followed by its bytes packed
  /// 8 per word (zero-padded; unambiguous given the length word).
  void push_label(const std::string& label) {
    push(static_cast<std::uint64_t>(label.size()));
    for (std::size_t i = 0; i < label.size(); i += 8) {
      std::uint64_t w = 0;
      std::memcpy(&w, label.data() + i, std::min<std::size_t>(8, label.size() - i));
      push(w);
    }
  }

  const std::uint64_t* data() const { return words_.data(); }
  std::uint32_t size() const { return len_; }

  /// SplitMix64-style mix over the words (and the length).
  std::uint64_t hash() const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ (static_cast<std::uint64_t>(len_) << 32);
    for (std::uint32_t i = 0; i < len_; ++i) {
      std::uint64_t x = words_[i] + 0x9E3779B97F4A7C15ULL + h;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      h = x ^ (x >> 31);
    }
    return h;
  }

 private:
  std::array<std::uint64_t, kMaxWords> words_;
  std::uint32_t len_ = 0;
};

/// A protocol that packs its canonical fields into a StateKeyBuf directly.
/// The packing must be injective on saturated states (the `state_label`
/// contract, minus the string).
template <typename P>
concept KeyedProtocol = requires(const P p, const typename P::State& s, StateKeyBuf& k) {
  p.state_key(s, k);
};

/// Build the canonical key for `s`: the typed hook when the protocol has
/// one, the packed label bytes otherwise.
template <typename P>
void build_state_key(const P& proto, const typename P::State& s, StateKeyBuf& key) {
  key.clear();
  if constexpr (KeyedProtocol<P>) {
    proto.state_key(s, key);
  } else {
    key.push_label(proto.state_label(s));
  }
}

/// Open-addressing arena mapping canonical state keys to dense ids, with
/// lock-free lookup concurrent with (mutex-serialized) insertion.  Ids are
/// assigned in insertion order; `operator[]` returns the typed
/// representative (stable address for the interner's lifetime).
template <typename State>
class StateInterner {
 public:
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  explicit StateInterner(std::size_t max_states)
      : max_states_(max_states),
        states_(max_states),
        meta_(max_states),
        key_words_(max_states * StateKeyBuf::kMaxWords, /*block_elems=*/std::size_t{1} << 16) {
    POPS_REQUIRE(max_states < kNotFound, "max_states out of id range");
    // Meta::key_off is 32-bit; cap max_states so the key-word arena can
    // never outgrow it (kMaxWords words/state ⇒ ≲134M states — far beyond
    // any compilable closure) rather than silently wrapping offsets.
    POPS_REQUIRE(max_states <= 0xFFFFFFFFull / StateKeyBuf::kMaxWords,
                 "max_states too large for 32-bit key-word offsets");
    tables_.push_back(std::make_unique<Table>(std::size_t{1} << 10));
    table_.store(tables_.back().get(), std::memory_order_release);
  }

  StateInterner(const StateInterner&) = delete;
  StateInterner& operator=(const StateInterner&) = delete;

  /// Number of interned states (acquire: states_[i] is readable for i < size).
  std::uint32_t size() const { return static_cast<std::uint32_t>(states_.size()); }

  const State& operator[](std::uint32_t id) const { return states_[id]; }

  /// Lock-free lookup; kNotFound when the key is not interned.  Safe
  /// concurrent with intern() from other threads.
  std::uint32_t find(const StateKeyBuf& key, std::uint64_t hash) const {
    return find_in(*table_.load(std::memory_order_acquire), key, hash);
  }

  /// Find-or-insert.  `on_insert(id, state)` runs under the insert mutex for
  /// states new to the interner — the hook that registers the (lazily built)
  /// string label with the FiniteSpec name registry, in id order.
  template <typename OnInsert>
  std::uint32_t intern(const State& s, const StateKeyBuf& key, std::uint64_t hash,
                       OnInsert&& on_insert) {
    std::lock_guard<std::mutex> lock(mutex_);
    Table* t = table_.load(std::memory_order_relaxed);
    const std::uint32_t existing = find_in(*t, key, hash);
    if (existing != kNotFound) return existing;
    const std::uint32_t id = static_cast<std::uint32_t>(states_.size());
    POPS_REQUIRE(id < max_states_,
                 "state-space explosion: raise CompileOptions.max_states or "
                 "lower the field caps");
    // Grow before appending the new state: the rehash walks states_, so
    // growing after the push would re-insert the new id and leave a
    // duplicate slot behind.
    if ((static_cast<std::uint64_t>(id) + 1) * 4 >= (t->mask + 1) * 3) t = grow_table();
    const std::uint32_t off = static_cast<std::uint32_t>(key_words_.size());
    for (std::uint32_t i = 0; i < key.size(); ++i) key_words_.push(key.data()[i]);
    meta_.push(Meta{hash, off, key.size()});
    states_.push(s);
    on_insert(id, states_[id]);
    insert_slot(*t, hash, id + 1);
    return id;
  }

  std::vector<State> snapshot() const {
    const std::uint32_t n = size();
    std::vector<State> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(states_[i]);
    return out;
  }

 private:
  struct Meta {
    std::uint64_t hash = 0;
    std::uint32_t key_off = 0;
    std::uint32_t key_len = 0;
  };

  struct Table {
    explicit Table(std::size_t capacity)
        : mask(capacity - 1), slots(new std::atomic<std::uint32_t>[capacity]) {
      for (std::size_t i = 0; i < capacity; ++i) {
        slots[i].store(0, std::memory_order_relaxed);
      }
    }
    const std::uint64_t mask;  ///< capacity - 1 (capacity is a power of two)
    std::unique_ptr<std::atomic<std::uint32_t>[]> slots;  ///< id + 1; 0 = empty
  };

  std::uint32_t find_in(const Table& t, const StateKeyBuf& key, std::uint64_t hash) const {
    for (std::uint64_t idx = hash & t.mask;; idx = (idx + 1) & t.mask) {
      const std::uint32_t v = t.slots[idx].load(std::memory_order_acquire);
      if (v == 0) return kNotFound;
      const std::uint32_t id = v - 1;
      const Meta& m = meta_[id];
      if (m.hash == hash && m.key_len == key.size() && key_equals(m, key)) return id;
    }
  }

  bool key_equals(const Meta& m, const StateKeyBuf& key) const {
    for (std::uint32_t i = 0; i < m.key_len; ++i) {
      if (key_words_[m.key_off + i] != key.data()[i]) return false;
    }
    return true;
  }

  static void insert_slot(Table& t, std::uint64_t hash, std::uint32_t value) {
    std::uint64_t idx = hash & t.mask;
    while (t.slots[idx].load(std::memory_order_relaxed) != 0) idx = (idx + 1) & t.mask;
    t.slots[idx].store(value, std::memory_order_release);
  }

  /// Double the slot table and republish (old tables stay alive for
  /// concurrent readers; total retired memory is geometric in the final size).
  Table* grow_table() {
    const Table* old = table_.load(std::memory_order_relaxed);
    tables_.push_back(std::make_unique<Table>((old->mask + 1) * 2));
    Table* t = tables_.back().get();
    const std::uint32_t n = static_cast<std::uint32_t>(states_.size());
    for (std::uint32_t id = 0; id < n; ++id) insert_slot(*t, meta_[id].hash, id + 1);
    table_.store(t, std::memory_order_release);
    return t;
  }

  std::size_t max_states_;
  StableArena<State> states_;
  StableArena<Meta> meta_;
  StableArena<std::uint64_t> key_words_;
  std::vector<std::unique_ptr<Table>> tables_;  ///< all tables ever published
  std::atomic<Table*> table_;
  std::mutex mutex_;
};

}  // namespace pops
