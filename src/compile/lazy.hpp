// Lazy/JIT compilation: intern states on first contact, compile each
// (receiver, sender) pair the first time a simulation dispatches it.
//
// The eager `ProtocolCompiler` closes the whole reachable pair space up
// front — states² pair enumeration, which pins interactive compiles at
// geometric caps c ≈ 4 and makes the distribution-faithful regime
// (c ≳ log₂ n) unreachable.  But a *run* only ever dispatches pairs of
// states that actually co-occur in its configuration: for the headline
// protocols at c = 8 that is orders of magnitude below the closure's pair
// space.  `LazyCompiledSpec` exploits this by implementing the simulators'
// `JitCompiler` hook (sim/shared_dispatch.hpp):
//
//   * construction enumerates only the initial states (exact distribution,
//     as in the eager path) and registers them with an empty table;
//   * when a simulator's dispatch lookup misses, it calls `compile_pair`,
//     which replays `interact` over every randomized branch (ChoiceRng),
//     interns any new output states, and registers the resulting cell —
//     explicitly-null cells included (stored compactly as a row-slot code,
//     no Cell record), so each pair compiles exactly once;
//   * the table extends incrementally and the simulator grows its count
//     vectors to match, so the states² compile barrier and the S² table
//     memory floor both disappear.
//
// Pair compilation consumes no simulation randomness (branch enumeration is
// deterministic), so a lazy run under a fixed seed is reproducible, and the
// compiled fragment is *exactly* the eager closure restricted to touched
// pairs: the lazily-interned state set is a subset of the eager state set
// (modulo id numbering — both intern in discovery order, but discovery
// orders differ) and every compiled cell carries identical transitions
// (tests/test_lazy_compile.cpp asserts both).  The table persists across
// `reset()`/trials on the same LazyCompiledSpec, so multi-trial experiments
// pay the JIT cost once — warm trials run at full batched speed.
//
// Concurrency contract (thread-safe since the sharded JIT):
//
//   * any number of simulators may step one shared LazyCompiledSpec from
//     different threads (run_trials_parallel fans equivalence/bench trials
//     out this way, over the process-wide executor — core/executor.hpp,
//     whose set_threads()/POPS_THREADS width bounds the whole fan-out).
//     `compile_pair` shards its critical section by
//     receiver id — per-shard mutexes cover branch exploration + cell
//     publication, interning serializes only on insertion, and dispatch
//     lookups stay lock-free against the atomically published row views;
//   * per-seed trial results are identical at any thread count: state *ids*
//     depend on which thread interns first, but a trial's trajectory is
//     equivariant under id relabeling (the simulators iterate insertion-
//     ordered id lists, never id-sorted ranges), so observables evaluated
//     on typed states — and the interned state/pair *sets* as label sets —
//     are scheduling-independent (tests/test_jit_concurrency.cpp);
//   * name-registry queries (`spec().name/id/has_state`) require
//     quiescence: call them between runs, not concurrently with stepping
//     simulators that may still compile pairs.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "compile/compiler.hpp"
#include "sim/require.hpp"
#include "sim/shared_dispatch.hpp"

namespace pops {

template <CompilableProtocol P>
class LazyCompiledSpec final : public JitCompiler {
 public:
  explicit LazyCompiledSpec(P protocol, std::uint32_t geometric_cap,
                            CompileOptions opts = {})
      : core_(std::move(protocol), geometric_cap, opts),
        table_(opts.max_states, opts.max_pairs) {
    core_.enumerate_initial(initial_distribution_);
    initial_distribution_.resize(core_.num_states(), 0.0);
    table_.grow_states(core_.num_states());
  }

  // ------------------------------------------------ JitCompiler interface --

  void compile_pair(std::uint32_t receiver, std::uint32_t sender) override {
    Shard& shard = shards_[ConcurrentDispatchTable::shard_of(receiver)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (table_.find(receiver, sender).present) return;  // lost a compile race
    POPS_REQUIRE(table_.num_cells() < core_.options().max_pairs,
                 "pair explosion: raise CompileOptions.max_pairs or lower the "
                 "field caps");
    core_.explore(receiver, sender, shard.cell);
    shard.entries.clear();
    for (const auto& c : shard.cell) {
      shard.entries.push_back(
          ConcurrentDispatchTable::Entry{c.out_receiver, c.out_sender, c.rate});
    }
    table_.grow_states(core_.num_states());  // outputs may be new states
    table_.set_cell(receiver, sender, shard.entries.data(),
                    static_cast<std::uint32_t>(shard.entries.size()));
  }

  const ConcurrentDispatchTable& table() const override { return table_; }
  const FiniteSpec& spec() const override { return core_.spec(); }

  // ------------------------------------------------------------ compiled --

  const P& protocol() const { return core_.protocol(); }
  std::uint32_t geometric_cap() const { return core_.geometric_cap(); }
  std::uint32_t num_states() const { return core_.num_states(); }
  std::size_t pairs_compiled() const { return table_.num_cells(); }
  std::size_t null_pairs_compiled() const { return table_.num_null_cells(); }
  std::uint64_t paths_explored() const { return core_.paths_explored(); }
  const StateInterner<typename P::State>& states() const { return core_.states(); }
  const std::vector<double>& initial_distribution() const { return initial_distribution_; }

  /// Ids carrying positive initial mass.
  std::vector<std::uint32_t> initial_states() const {
    std::vector<std::uint32_t> ids;
    for (std::uint32_t i = 0; i < initial_distribution_.size(); ++i) {
      if (initial_distribution_[i] > 0.0) ids.push_back(i);
    }
    return ids;
  }

  /// Seed a count-API simulator with the n-agent initial configuration.
  template <typename Sim>
  void seed_initial(Sim& sim, std::uint64_t n, Rng& rng) const {
    seed_initial_distribution(sim, n, rng, initial_distribution_);
  }

  /// Typed observable on a count vector.  `counts` may be shorter than the
  /// interned state set (a snapshot taken before later pairs compiled).
  template <typename Pred>
  std::uint64_t count_matching(const std::vector<std::uint64_t>& counts,
                               Pred&& pred) const {
    return count_matching_states(core_.states(), counts, pred);
  }

 private:
  /// Per-shard critical section: mutex + compile scratch it protects.
  struct Shard {
    std::mutex mutex;
    std::vector<typename CompilerCore<P>::CellEntry> cell;
    std::vector<ConcurrentDispatchTable::Entry> entries;
  };

  CompilerCore<P> core_;
  ConcurrentDispatchTable table_;
  std::vector<double> initial_distribution_;
  std::array<Shard, ConcurrentDispatchTable::kNumShards> shards_;
};

/// One-call path mirroring `compile_bounded`: wrap a BoundableProtocol at
/// the given geometric cap for lazy compilation, caps tied.
template <BoundableProtocol P>
LazyCompiledSpec<Bounded<P>> lazy_compile_bounded(P base, std::uint32_t geometric_cap,
                                                  CompileOptions opts = {}) {
  Bounded<P> bounded(std::move(base), geometric_cap);
  return LazyCompiledSpec<Bounded<P>>(std::move(bounded), geometric_cap, opts);
}

}  // namespace pops
