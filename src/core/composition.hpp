// Restart-based composition with a leaderless phase clock (paper §1.1, §3.1).
//
// Theorem 4.1 rules out a terminating size estimate, so nonuniform protocols
// cannot be composed with the estimator by simply waiting for a "done"
// signal.  The paper's workaround, implemented here:
//
//   * every agent draws a geometric RV at start; the maximum s is a weak size
//     estimate (logSize2-style, Lemma 3.8) that propagates by epidemic;
//   * every agent counts its own interactions in a `StageClock` with
//     threshold f(s) = clock_multiplier · s, chosen via Lemma 3.6 so that no
//     agent finishes a stage before the stage's epidemics complete, w.h.p.;
//   * the first agent over the threshold advances the stage; higher stage
//     indices propagate by epidemic; there are K(s) = stage_multiplier · s
//     stages;
//   * whenever an agent adopts a *larger* s, the entire downstream state is
//     restarted (the paper's Restart scheme, as in [29]).
//
// The downstream protocol plugs in via the `StageProtocol` concept: it is
// told when to restart (new s), when a new stage begins for an agent, and
// participates in every interaction with both parties' stage indices.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <string>

#include "compile/intern.hpp"
#include "proto/leaderless_clock.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/require.hpp"

namespace pops {

/// A protocol that runs in the stages of the leaderless clock.
template <typename D>
concept StageProtocol = std::copyable<typename D::State> &&
    requires(const D d, typename D::State& a, typename D::State& b, Rng& rng,
             std::uint32_t u32) {
      { d.initial(rng) } -> std::same_as<typename D::State>;
      d.restart(a, u32, rng);                 // estimate became u32: wipe
      d.advance_stage(a, u32, rng);           // agent entered stage u32
      d.interact(a, u32, b, u32, rng);        // interaction with stage indices
    };

/// Refinement for stage protocols that can enter the bounded-field regime
/// (compile/bounded.hpp): clamp/canonicalize their state (the second
/// argument is the agent's current stage, the clock-derived bound on
/// stage-trailing fields) and emit a canonical label.  `Composed` forwards
/// its own compile hooks only when the downstream provides these.
template <typename D>
concept CompilableStage = requires(const D d, typename D::State& s, std::uint32_t u32) {
  d.saturate(s, u32);
  { d.state_label(s) } -> std::convertible_to<std::string>;
};

template <StageProtocol D>
class Composed {
 public:
  struct Params {
    std::uint32_t clock_multiplier = 24;  ///< f(s) = clock_multiplier · s
    std::uint32_t stage_multiplier = 6;   ///< K(s) = stage_multiplier · s
    std::uint32_t estimate_offset = 2;    ///< s = geometric + offset (Lemma 3.8)
  };

  struct State {
    std::uint32_t s = 0;  ///< weak log-size estimate (max geometric + offset)
    StageClock clock;
    typename D::State down;
  };

  explicit Composed(D downstream, Params params = {})
      : params_(params), down_(std::move(downstream)) {
    POPS_REQUIRE(params.clock_multiplier >= 1, "clock multiplier must be >= 1");
    POPS_REQUIRE(params.stage_multiplier >= 1, "stage multiplier must be >= 1");
  }

  template <RandomSource R>
  State initial(R& rng) const {
    State st;
    st.s = rng.geometric_fair() + params_.estimate_offset;
    st.down = down_.initial(rng);
    return st;
  }

  template <RandomSource R>
  void interact(State& receiver, State& sender, R& rng) const {
    // Weak estimate: max propagation with restart on adoption.
    if (receiver.s < sender.s) {
      receiver.s = sender.s;
      restart(receiver, rng);
    } else if (sender.s < receiver.s) {
      sender.s = receiver.s;
      restart(sender, rng);
    }

    tick(receiver, rng);
    tick(sender, rng);

    catch_up(receiver, sender, rng);
    catch_up(sender, receiver, rng);

    down_.interact(receiver.down, receiver.clock.stage, sender.down,
                   sender.clock.stage, rng);
  }

  std::uint32_t stage_threshold(const State& s) const {
    return params_.clock_multiplier * s.s;
  }
  std::uint32_t num_stages(const State& s) const {
    return params_.stage_multiplier * s.s;
  }

  const D& downstream() const { return down_; }
  const Params& params() const { return params_; }

  /// Canonical label (compile/compiler.hpp): estimate, clock, downstream.
  std::string state_label(const State& st) const
    requires CompilableStage<D>
  {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "e%u|g%u.%llu|", st.s, st.clock.stage,
                  static_cast<unsigned long long>(st.clock.counter));
    return buf + down_.state_label(st.down);
  }

  /// Typed interning key (compile/intern.hpp): estimate + clock words, then
  /// the downstream packing — same injectivity contract as `state_label`.
  void state_key(const State& st, StateKeyBuf& key) const
    requires KeyedProtocol<D>
  {
    key.push(static_cast<std::uint64_t>(st.s) |
             (static_cast<std::uint64_t>(st.clock.stage) << 32));
    key.push(st.clock.counter);
    down_.state_key(st.down, key);
  }

  /// Bounded-field regime hook (compile/bounded.hpp).  With geometric draws
  /// capped, the weak estimate s is capped too, which bounds the stage count
  /// K(s) and the per-stage threshold f(s); the counter stays below f(s) by
  /// construction (it resets on every stage advance) and freezes once the
  /// final stage is reached, so the clamps below never bind on reachable
  /// states — they make the space finite by construction.
  void saturate(State& st, std::uint32_t cap) const
    requires CompilableStage<D>
  {
    st.s = std::min(st.s, cap + params_.estimate_offset);
    st.clock.stage = std::min(st.clock.stage, num_stages(st));
    st.clock.counter = std::min<std::uint64_t>(st.clock.counter, stage_threshold(st));
    down_.saturate(st.down, st.clock.stage);
  }

 private:
  template <RandomSource R>
  void restart(State& st, R& rng) const {
    st.clock.reset();
    down_.restart(st.down, st.s, rng);
  }

  template <RandomSource R>
  void tick(State& st, R& rng) const {
    if (st.clock.stage >= num_stages(st)) return;  // finished
    if (st.clock.tick(stage_threshold(st))) {
      down_.advance_stage(st.down, st.clock.stage, rng);
    }
  }

  template <RandomSource R>
  void catch_up(State& me, const State& other, R& rng) const {
    while (me.clock.stage < other.clock.stage &&
           me.clock.stage < num_stages(me)) {
      me.clock.stage += 1;
      me.clock.counter = 0;
      down_.advance_stage(me.down, me.clock.stage, rng);
    }
    if (other.clock.stage > me.clock.stage) {
      // Other is past our final stage (estimates may briefly differ).
      me.clock.stage = other.clock.stage;
      me.clock.counter = 0;
    }
  }

  Params params_{};
  D down_;
};

/// All agents past the final stage (the composition itself has converged;
/// the downstream value may still be spreading).
template <StageProtocol D>
bool clock_finished(const AgentSimulation<Composed<D>>& sim) {
  const Composed<D>& proto = sim.protocol();
  for (const auto& a : sim.agents()) {
    if (a.clock.stage < proto.num_stages(a)) return false;
  }
  return true;
}

}  // namespace pops
