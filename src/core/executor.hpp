// Process-wide work-stealing executor.
//
// Every parallel layer in the repo used to own its threads: the trial
// harness spawned a pool per run_trials_parallel call, the eager compiler
// spawned one per frontier batch, and nested harnesses (trials that compile
// inside the pool, lazy trials sharing a JIT table) oversubscribed the
// machine multiplicatively.  `Executor` replaces all of that with one
// lazily-started pool the whole process shares:
//
//   * one Chase–Lev deque per worker (lock-free owner push/pop, CAS-
//     arbitrated steal) plus a mutex-protected global injection queue for
//     submissions from non-worker threads;
//   * `TaskGroup` for structured fan-out: `run()` submits, `wait()` blocks
//     until every task of the group finished — and *helps*, executing
//     queued tasks while it waits.  That help loop is what makes recursive
//     submission safe: a task running on the pool can fan out a nested
//     group and wait on it without deadlock (its wait() runs the subtasks
//     itself if no other worker picks them up) and without spawning a
//     single extra thread;
//   * `set_threads()` overrides the width process-wide — every client
//     (run_trials_parallel, ProtocolCompiler::compile, the lazy
//     equivalence/bench fan-out) sizes itself off `threads()`, so one call
//     (or the POPS_THREADS environment variable) pins the whole process to
//     a reproducible budget.
//
// Width semantics: `threads()` is the *total* parallelism, counting the
// caller.  The pool spawns threads()-1 workers on first submission and the
// submitting thread contributes itself through TaskGroup::wait()'s help
// loop, so a width-W executor never runs more than W tasks concurrently —
// and nested fan-out reuses the same W threads instead of multiplying
// them.  Width 1 spawns no workers at all: tasks queue and run inline in
// wait(), which is what makes serial reference runs genuinely serial.
//
// Determinism contract: the executor schedules, clients decide what that
// means.  Both migrated closure strategies are bit-identical at any width
// (trials index their results and derive per-trial seeds; the eager
// closure merges worker discoveries in deterministic pair order), so
// set_threads() changes wall-clock, never output
// (tests/test_executor.cpp, tests/test_jit_concurrency.cpp).
//
// set_threads() requires a quiescent pool (no queued or running tasks) —
// call it between fan-outs, as the benches and tests do.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/require.hpp"

namespace pops {

class Executor {
 public:
  class TaskGroup;

  /// The one process-wide instance (created on first use, workers joined at
  /// static destruction).
  static Executor& instance() {
    static Executor ex;
    return ex;
  }

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  ~Executor() { stop_workers(); }

  /// Effective width: the number of tasks that can run concurrently,
  /// counting the calling thread (see the width semantics above).
  unsigned threads() const { return threads_.load(std::memory_order_acquire); }

  /// Override the process-wide width (0 restores the default: POPS_THREADS
  /// if set, hardware concurrency otherwise).  Requires a quiescent pool;
  /// running workers are joined and the pool restarts lazily at the new
  /// width.  All clients observe the change on their next fan-out.
  static void set_threads(unsigned n) { instance().set_threads_impl(n); }

  /// True on a pool worker thread (not on external threads, even while
  /// they help-run tasks inside TaskGroup::wait()).
  static bool on_worker_thread() { return tl_worker_ != nullptr; }

  /// Structured fan-out handle.  Submit with run(), then wait() exactly
  /// once; wait() helps execute queued tasks (any group's — that is what
  /// makes nested groups deadlock-free) and rethrows the first exception a
  /// task of *this* group threw.  The group must outlive its tasks, which
  /// wait() guarantees; the destructor waits too if the caller forgot.
  class TaskGroup {
   public:
    explicit TaskGroup(Executor& ex = Executor::instance()) : ex_(ex) {}

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    ~TaskGroup() {
      try {
        wait();
      } catch (...) {
        // wait() already ran every task; a stray exception from an
        // un-waited group must not escape a destructor.
      }
    }

    /// Submit one task.  Safe from any thread, including from inside
    /// another task of this or any other group (recursive submission).
    void run(std::function<void()> fn) {
      pending_.fetch_add(1, std::memory_order_acq_rel);
      ex_.submit(new Task{std::move(fn), this});
    }

    /// Block until every submitted task finished, executing queued tasks
    /// while waiting.  Rethrows the first exception captured from this
    /// group's tasks.  May be called from inside a pool task.
    void wait() {
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          if (pending_.load(std::memory_order_acquire) == 0) break;
        }
        if (Task* t = ex_.find_task()) {
          ex_.run_task(t);
          continue;
        }
        // Nothing runnable anywhere: the outstanding tasks are being
        // executed on other threads.  Doze with a short timeout — the
        // timeout (not just the notify) also covers "a task became
        // stealable elsewhere while we slept".
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
          return pending_.load(std::memory_order_acquire) == 0;
        });
      }
      std::exception_ptr error;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        error = std::exchange(error_, nullptr);
      }
      if (error) std::rethrow_exception(error);
    }

   private:
    friend class Executor;

    void capture(std::exception_ptr e) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::move(e);
    }

    /// Called after a task's body ran.  The decrement holds the group
    /// mutex so a waiter cannot observe pending == 0, return, and destroy
    /// the group while this thread is still inside it.
    void finish_one() {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) cv_.notify_all();
    }

    Executor& ex_;
    std::atomic<std::uint64_t> pending_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    std::exception_ptr error_;
  };

  /// Convenience fan-out: split [begin, end) into contiguous ranges of at
  /// most `chunk` and run fn(chunk_index, lo, hi) as tasks (the calling
  /// thread helps).  Runs inline when the range fits one chunk or the
  /// width is 1.
  template <typename Fn>
  static void parallel_chunks(std::uint64_t begin, std::uint64_t end,
                              std::uint64_t chunk, Fn&& fn) {
    POPS_REQUIRE(chunk > 0, "parallel_chunks: chunk must be positive");
    Executor& ex = instance();
    if (end <= begin) return;
    if (ex.threads() == 1 || end - begin <= chunk) {
      std::uint64_t index = 0;
      for (std::uint64_t lo = begin; lo < end; lo += chunk, ++index) {
        fn(index, lo, std::min(end, lo + chunk));
      }
      return;
    }
    TaskGroup group(ex);
    std::uint64_t index = 0;
    for (std::uint64_t lo = begin; lo < end; lo += chunk, ++index) {
      const std::uint64_t hi = std::min(end, lo + chunk);
      group.run([&fn, index, lo, hi] { fn(index, lo, hi); });
    }
    group.wait();
  }

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  /// Chase–Lev work-stealing deque of Task* (Chase & Lev, SPAA'05).  The
  /// owner pushes and pops at the bottom without locks; thieves CAS the
  /// top.  seq_cst on top/bottom keeps the classic pop/steal arbitration
  /// simple and ThreadSanitizer-clean (no standalone fences, which TSan
  /// does not model); the deque holds whole trials or pair-chunk sweeps,
  /// so its constant factors are irrelevant.
  class Deque {
   public:
    Deque() {
      buffers_.push_back(std::make_unique<Buffer>(std::size_t{1} << 8));
      buffer_.store(buffers_.back().get(), std::memory_order_release);
    }

    /// Owner only.
    void push(Task* t) {
      const std::int64_t b = bottom_.load(std::memory_order_relaxed);
      const std::int64_t top = top_.load(std::memory_order_acquire);
      Buffer* buf = buffer_.load(std::memory_order_relaxed);
      if (b - top > static_cast<std::int64_t>(buf->mask)) buf = grow(buf, top, b);
      buf->slots[static_cast<std::uint64_t>(b) & buf->mask].store(
          t, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }

    /// Owner only.
    Task* pop() {
      const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
      Buffer* buf = buffer_.load(std::memory_order_relaxed);
      bottom_.store(b, std::memory_order_seq_cst);
      std::int64_t top = top_.load(std::memory_order_seq_cst);
      if (top > b) {  // empty: restore
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
      }
      Task* t = buf->slots[static_cast<std::uint64_t>(b) & buf->mask].load(
          std::memory_order_relaxed);
      if (top != b) return t;  // more than one element left; no race possible
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        t = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
      return t;
    }

    /// Any thread.
    Task* steal() {
      std::int64_t top = top_.load(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
      if (top >= b) return nullptr;
      Buffer* buf = buffer_.load(std::memory_order_acquire);
      Task* t = buf->slots[static_cast<std::uint64_t>(top) & buf->mask].load(
          std::memory_order_relaxed);
      if (!top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;  // lost the race; caller retries elsewhere
      }
      return t;
    }

   private:
    struct Buffer {
      explicit Buffer(std::size_t capacity)
          : mask(capacity - 1), slots(new std::atomic<Task*>[capacity]) {}
      const std::uint64_t mask;  ///< capacity - 1 (capacity a power of two)
      std::unique_ptr<std::atomic<Task*>[]> slots;
    };

    /// Double the ring.  Old buffers stay allocated until the deque dies —
    /// a thief may still be reading them; total retired memory is
    /// geometric in the peak size.
    Buffer* grow(Buffer* old, std::int64_t top, std::int64_t b) {
      buffers_.push_back(std::make_unique<Buffer>((old->mask + 1) * 2));
      Buffer* buf = buffers_.back().get();
      for (std::int64_t i = top; i < b; ++i) {
        buf->slots[static_cast<std::uint64_t>(i) & buf->mask].store(
            old->slots[static_cast<std::uint64_t>(i) & old->mask].load(
                std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      buffer_.store(buf, std::memory_order_release);
      return buf;
    }

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Buffer*> buffer_{nullptr};
    std::vector<std::unique_ptr<Buffer>> buffers_;  ///< owner-mutated (push/grow only)
  };

  struct Worker {
    Deque deque;
    std::size_t index = 0;
  };

  Executor() : threads_(default_threads()) {}

  static unsigned default_threads() {
    if (const char* env = std::getenv("POPS_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<unsigned>(n);
    }
    return std::max(1u, std::thread::hardware_concurrency());
  }

  void set_threads_impl(unsigned n) {
    if (n == 0) n = default_threads();
    std::lock_guard<std::mutex> lock(config_mutex_);
    POPS_REQUIRE(queued_.load(std::memory_order_acquire) == 0 &&
                     active_.load(std::memory_order_acquire) == 0,
                 "Executor::set_threads requires a quiescent pool (no queued "
                 "or running tasks)");
    if (n == threads_.load(std::memory_order_relaxed)) return;
    stop_workers_locked();
    threads_.store(n, std::memory_order_release);
  }

  void submit(Task* t) {
    start_workers_if_needed();
    queued_.fetch_add(1, std::memory_order_acq_rel);
    if (tl_owner_ == this && tl_worker_ != nullptr) {
      tl_worker_->deque.push(t);
    } else {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      injection_.push_back(t);
    }
    // The epoch bump (under the mutex sleeping workers hold while they
    // check it) is what makes idle sleeps untimed-safe: a worker either
    // saw this submission's epoch before dozing — and then its pre-sleep
    // scan could already see the pushed task — or it finds the epoch
    // advanced and rescans instead of sleeping.
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      ++submit_epoch_;
    }
    queue_cv_.notify_one();
  }

  /// Pop/steal one runnable task: own deque (workers), then the injection
  /// queue, then the other workers' deques.  Returns nullptr when nothing
  /// is runnable right now.
  Task* find_task() {
    Worker* self = tl_owner_ == this ? tl_worker_ : nullptr;
    Task* t = nullptr;
    if (self != nullptr) t = self->deque.pop();
    if (t == nullptr) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (!injection_.empty()) {
        t = injection_.front();
        injection_.pop_front();
      }
    }
    if (t == nullptr) {
      // Snapshot the pool under config_mutex_-free reads: workers_ only
      // mutates while quiescent (set_threads/stop), when no find_task can
      // be running.
      const std::size_t n = worker_count_.load(std::memory_order_acquire);
      const std::size_t start = self != nullptr ? self->index + 1 : 0;
      for (std::size_t i = 0; i < n && t == nullptr; ++i) {
        Worker* victim = workers_[(start + i) % n].get();
        if (victim != self) t = victim->deque.steal();
      }
    }
    if (t != nullptr) queued_.fetch_sub(1, std::memory_order_acq_rel);
    return t;
  }

  void run_task(Task* t) {
    active_.fetch_add(1, std::memory_order_acq_rel);
    TaskGroup* group = t->group;
    try {
      t->fn();
    } catch (...) {
      group->capture(std::current_exception());
    }
    delete t;
    active_.fetch_sub(1, std::memory_order_acq_rel);
    group->finish_one();
  }

  void start_workers_if_needed() {
    if (started_.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(config_mutex_);
    if (started_.load(std::memory_order_relaxed)) return;
    const unsigned width = threads_.load(std::memory_order_relaxed);
    workers_.clear();
    for (unsigned w = 0; w + 1 < width; ++w) {
      workers_.push_back(std::make_unique<Worker>());
      workers_.back()->index = w;
    }
    worker_count_.store(workers_.size(), std::memory_order_release);
    threads_started_.reserve(workers_.size());
    for (auto& w : workers_) {
      threads_started_.emplace_back([this, worker = w.get()] { worker_loop(worker); });
    }
    started_.store(true, std::memory_order_release);
  }

  void worker_loop(Worker* self) {
    tl_worker_ = self;
    tl_owner_ = this;
    for (;;) {
      std::uint64_t seen;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        seen = submit_epoch_;
      }
      if (stop_.load(std::memory_order_acquire)) break;
      if (Task* t = find_task()) {
        run_task(t);
        continue;
      }
      // Untimed doze — an idle pool costs zero wakeups (the pool lives for
      // the whole process, so a polling fallback here would perturb every
      // single-threaded bench timing).  No lost wakeup: any submission
      // after the `seen` read advances the epoch and fails the predicate;
      // any submission before it was visible to the find_task scan above.
      // No spin either: one scan per epoch advance at most.
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) || submit_epoch_ != seen;
      });
      if (stop_.load(std::memory_order_acquire)) break;
    }
    tl_worker_ = nullptr;
    tl_owner_ = nullptr;
  }

  void stop_workers() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    stop_workers_locked();
  }

  void stop_workers_locked() {
    if (!started_.load(std::memory_order_relaxed)) return;
    stop_.store(true, std::memory_order_release);
    { std::lock_guard<std::mutex> lock(queue_mutex_); }
    queue_cv_.notify_all();
    for (auto& th : threads_started_) th.join();
    threads_started_.clear();
    worker_count_.store(0, std::memory_order_release);
    workers_.clear();
    stop_.store(false, std::memory_order_release);
    started_.store(false, std::memory_order_release);
  }

  inline static thread_local Worker* tl_worker_ = nullptr;
  inline static thread_local Executor* tl_owner_ = nullptr;

  std::atomic<unsigned> threads_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> queued_{0};  ///< submitted, not yet dequeued
  std::atomic<std::uint64_t> active_{0};  ///< task bodies currently running
  std::atomic<std::size_t> worker_count_{0};
  std::mutex config_mutex_;  ///< pool start/stop/resize
  std::mutex queue_mutex_;   ///< injection queue + sleep coordination
  std::condition_variable queue_cv_;
  std::uint64_t submit_epoch_ = 0;  ///< bumped per submission, under queue_mutex_
  std::deque<Task*> injection_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_started_;
};

}  // namespace pops
