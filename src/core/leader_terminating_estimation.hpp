// Terminating size estimation with an initial leader (paper Section 3.4,
// Theorem 3.13).
//
// Theorem 4.1 forbids termination for uniform *dense* protocols; with a
// single initial leader the obstruction vanishes.  Construction (following
// the proof of Theorem 3.13):
//   * all agents run the main Log-Size-Estimation protocol;
//   * the leader additionally drives an Angluin-style phase clock [9] with
//     m > 288 phases, so each completed round takes Θ(log n) time w.h.p.;
//   * the leader counts its phase advances (each takes Θ(log n) time w.h.p.)
//     and terminates after a budget of phase_multiplier · 5 · logSize2
//     advances — a Θ(log² n) timer that outlasts the estimation protocol
//     w.h.p., exactly the timer construction in Theorem 3.13's proof;
//   * the `terminated` flag spreads by epidemic; the value reported at
//     termination is the estimation protocol's output.
// Time O(log² n) and states O(log⁴ n) are preserved (the clock adds O(1)
// state per agent).
#pragma once

#include <cstdint>

#include "core/log_size_estimation.hpp"
#include "proto/phase_clock.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {

class LeaderTerminatingEstimation {
 public:
  struct Params {
    LogSizeEstimation::Params main{};
    std::uint32_t num_phases = 300;        ///< m > 288 (Theorem 3.13)
    std::uint32_t phase_multiplier = 300;  ///< k2: phase budget k2·5·logSize2
                                           ///< (each leader phase advance takes
                                           ///< Θ(log n) time, so the budget is a
                                           ///< Θ(log² n) timer; k2 = 300 keeps the
                                           ///< timer ~2–10x past convergence)
  };

  struct State {
    LogSizeEstimation::State est;
    LeaderPhaseClock::State clock;
    bool terminated = false;
  };

  LeaderTerminatingEstimation() = default;
  explicit LeaderTerminatingEstimation(Params params)
      : params_(params), est_(params.main), clock_{params.num_phases} {}

  State initial(Rng& rng) const { return State{est_.initial(rng), {}, false}; }

  /// The distinguished initial state for the single leader agent.
  State make_leader(Rng& rng) const {
    State s = initial(rng);
    s.clock = LeaderPhaseClock::make_leader();
    return s;
  }

  void interact(State& receiver, State& sender, Rng& rng) const {
    est_.interact(receiver.est, sender.est, rng);
    clock_.interact(receiver.clock, sender.clock, rng);
    maybe_terminate(receiver);
    maybe_terminate(sender);
    if (receiver.terminated || sender.terminated) {
      receiver.terminated = true;
      sender.terminated = true;
    }
  }

  const Params& params() const { return params_; }

  /// Phase advances the leader waits for before declaring termination, given
  /// its current logSize2 value: k2 · 5 · logSize2 (Theorem 3.13's budget).
  std::uint64_t phase_target(const State& s) const {
    return static_cast<std::uint64_t>(params_.phase_multiplier) *
           params_.main.epoch_multiplier * s.est.log_size2;
  }

 private:
  void maybe_terminate(State& s) const {
    if (s.clock.leader && !s.terminated && s.clock.increments >= phase_target(s)) {
      s.terminated = true;
    }
  }

  Params params_{};
  LogSizeEstimation est_{};
  LeaderPhaseClock clock_{};
};
static_assert(AgentProtocol<LeaderTerminatingEstimation>);

inline bool any_terminated(const AgentSimulation<LeaderTerminatingEstimation>& sim) {
  for (const auto& a : sim.agents()) {
    if (a.terminated) return true;
  }
  return false;
}

inline bool all_terminated(const AgentSimulation<LeaderTerminatingEstimation>& sim) {
  for (const auto& a : sim.agents()) {
    if (!a.terminated) return false;
  }
  return true;
}

}  // namespace pops
