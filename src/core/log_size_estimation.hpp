// Log-Size-Estimation — the paper's primary contribution (Section 3.2,
// Protocols 1–9; Theorem 3.1).
//
// A uniform leaderless protocol computing log2(n) ± O(1) in O(log² n) time
// and O(log⁴ n) states, w.h.p.  Structure:
//
//  1. Partition-Into-A/S splits the population into workers (A) and storage
//     (S) — space multiplexing (Lemma 3.2 keeps |A| within O(sqrt(n ln n)) of
//     n/2, costing only a constant additive error).
//  2. Each A draws logSize2 = (1/2-geometric) + 2; the maximum propagates by
//     epidemic.  By Lemma 3.8, max logSize2 ∈ [log n − log ln n, 2 log n + 1]
//     w.h.p. — a weak (constant-factor) estimate of log n.  Whenever an agent
//     adopts a larger logSize2 it Restarts all downstream state.
//  3. Leaderless phase clock: every A counts its own interactions (`time`);
//     an epoch ends when time >= 95·logSize2 (Lemma 3.6/Corollary 3.7: no
//     agent crosses this before the epoch's epidemic has completed, w.h.p.).
//  4. In each of K = 5·logSize2 epochs the A agents draw a fresh geometric
//     `gr` and propagate the epoch maximum among themselves; at the end of
//     the epoch the first finished A deposits the max into an S agent's
//     running `sum` (Update-Sum), and epochs/sums propagate among S agents.
//  5. After K epochs, output = sum/epoch + 1.  Corollary D.10 (Chernoff for
//     sums of maxima of geometrics, via sub-exponential moment bounds) gives
//     |output − log n| <= 5.7 w.p. >= 1 − 9/n (Lemma 3.12).
//
// Pseudocode disambiguations are listed in DESIGN.md §4; the constants 95, 5
// and +2 are parameters (`Params`) so the ablation benches can sweep them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "compile/intern.hpp"
#include "proto/partition.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/metrics.hpp"
#include "sim/require.hpp"

namespace pops {

class LogSizeEstimation {
 public:
  /// The protocol's design constants.  Defaults are the paper's values.
  struct Params {
    std::uint32_t time_multiplier = 95;   ///< epoch length: time >= 95·logSize2
    std::uint32_t epoch_multiplier = 5;   ///< number of epochs K = 5·logSize2
    std::uint32_t logsize_offset = 2;     ///< logSize2 = geometric + 2 (Lemma 3.8)
  };

  struct State {
    Role role = Role::X;
    bool protocol_done = false;
    bool updated_sum = false;
    bool has_output = false;
    std::uint32_t time = 0;
    std::uint32_t epoch = 0;
    std::uint32_t log_size2 = 1;
    std::uint32_t gr = 1;
    std::uint32_t sum = 0;
    std::int32_t output = 0;
  };

  LogSizeEstimation() = default;
  explicit LogSizeEstimation(Params params) : params_(params) {
    POPS_REQUIRE(params.time_multiplier >= 1, "time multiplier must be >= 1");
    POPS_REQUIRE(params.epoch_multiplier >= 1, "epoch multiplier must be >= 1");
  }

  const Params& params() const { return params_; }

  template <RandomSource R>
  State initial(R&) const {
    return State{};
  }

  /// One interaction, following Protocol 1's order: Partition; clock ticks +
  /// timer checks; Propagate-Max-Clock-Value; Propagate-Incremented-Epoch;
  /// Update-Sum (A–S pairs); Propagate-Max-G.R.V. (A–A pairs); output refresh.
  template <RandomSource R>
  void interact(State& receiver, State& sender, R& rng) const {
    partition_into_roles(receiver, sender, rng);

    if (receiver.role == Role::A) {
      ++receiver.time;
      check_timer(receiver, rng);
    }
    if (sender.role == Role::A) {
      ++sender.time;
      check_timer(sender, rng);
    }

    propagate_max_clock_value(receiver, sender, rng);
    propagate_incremented_epoch(receiver, sender, rng);

    if (receiver.role == Role::A && sender.role == Role::S) {
      update_sum(receiver, sender);
    } else if (receiver.role == Role::S && sender.role == Role::A) {
      update_sum(sender, receiver);
    }

    if (receiver.role == Role::A && sender.role == Role::A &&
        receiver.epoch == sender.epoch) {
      const std::uint32_t m = std::max(receiver.gr, sender.gr);
      receiver.gr = m;
      sender.gr = m;
    }

    finalize_storage(receiver);
    finalize_storage(sender);
    share_output(receiver, sender);
  }

  /// Epoch-length threshold for this agent: 95 · logSize2.
  std::uint32_t time_threshold(const State& s) const {
    return params_.time_multiplier * s.log_size2;
  }

  /// Total number of epochs for this agent: K = 5 · logSize2.
  std::uint32_t epoch_target(const State& s) const {
    return params_.epoch_multiplier * s.log_size2;
  }

  /// Canonical label, injective on saturated states (compile/compiler.hpp).
  std::string state_label(const State& s) const {
    char buf[96];
    const char role = s.role == Role::X ? 'X' : (s.role == Role::A ? 'A' : 'S');
    std::snprintf(buf, sizeof(buf), "%c|l%u|t%u|e%u|g%u|s%u|%c%c%c|o%d", role,
                  s.log_size2, s.time, s.epoch, s.gr, s.sum,
                  s.protocol_done ? 'D' : '-', s.updated_sum ? 'U' : '-',
                  s.has_output ? 'O' : '-', s.output);
    return buf;
  }

  /// Typed interning key (compile/intern.hpp): every field `state_label`
  /// prints, packed into four words with full 32-bit lanes (no range
  /// assumptions beyond the fields' own types, so the packing is injective
  /// for any Params).
  void state_key(const State& s, StateKeyBuf& key) const {
    key.push(static_cast<std::uint64_t>(s.role) |
             (static_cast<std::uint64_t>(s.protocol_done) << 8) |
             (static_cast<std::uint64_t>(s.updated_sum) << 9) |
             (static_cast<std::uint64_t>(s.has_output) << 10) |
             (static_cast<std::uint64_t>(s.log_size2) << 32));
    key.push(static_cast<std::uint64_t>(s.time) |
             (static_cast<std::uint64_t>(s.epoch) << 32));
    key.push(static_cast<std::uint64_t>(s.gr) |
             (static_cast<std::uint64_t>(s.sum) << 32));
    key.push(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.output)));
  }

  /// Bounded-field regime hook (compile/bounded.hpp): with every geometric
  /// draw capped at `cap`, clamp each field at its invariant ceiling and
  /// canonicalize dead fields.  Per the saturation contract:
  ///  * `time` is read only via `time >= time_threshold` (Check-if-Timer-Done
  ///    and Update-Sum), so saturating at the threshold is exact — the
  ///    unbounded protocol lets a waiting worker's clock tick forever;
  ///  * a finished worker's `time`/`gr`/`updatedSum` are dead: they are read
  ///    only under !protocolDone, and the Restart that clears protocolDone
  ///    also rewrites all three — canonicalizing them merges the states a
  ///    finished worker would otherwise keep cycling through (and turns
  ///    finished-finished interactions into nulls, which the batched
  ///    simulator's dispatch skips for free);
  ///  * a storage agent's `time`/`gr`/`updatedSum` are dead for the same
  ///    reason (roles are final; only workers tick, draw g.r.v.s, or deposit);
  ///  * `epoch` and `sum` are clamped at their reachability bounds
  ///    (epochs ≤ K(max logSize2); each of the ≤ K deposits adds ≤ cap),
  ///    which never bind — rule 3 of the contract.
  void saturate(State& s, std::uint32_t cap) const {
    const std::uint32_t ls_cap = cap + params_.logsize_offset;
    s.log_size2 = std::min(s.log_size2, ls_cap);
    const std::uint32_t epoch_cap = params_.epoch_multiplier * ls_cap;
    s.epoch = std::min(s.epoch, epoch_cap);
    s.sum = std::min(s.sum, epoch_cap * cap);
    s.gr = std::min(s.gr, cap);
    s.time = std::min(s.time, time_threshold(s));
    if (s.role == Role::A && s.protocol_done) {
      s.time = time_threshold(s);
      s.gr = 1;
      s.updated_sum = true;
    } else if (s.role == Role::S) {
      s.time = 0;
      s.gr = 1;
      s.updated_sum = false;
    }
  }

 private:
  // Subprotocol 2 (Partition-Into-A/S).  A fresh A draws its logSize2.
  template <RandomSource R>
  void partition_into_roles(State& receiver, State& sender, R& rng) const {
    if (sender.role == Role::X && receiver.role == Role::X) {
      sender.role = Role::A;
      sender.log_size2 = rng.geometric_fair() + params_.logsize_offset;
      receiver.role = Role::S;
    } else if (sender.role == Role::A && receiver.role == Role::X) {
      receiver.role = Role::S;
    } else if (sender.role == Role::S && receiver.role == Role::X) {
      receiver.role = Role::A;
      receiver.log_size2 = rng.geometric_fair() + params_.logsize_offset;
    }
  }

  // Subprotocol 4 (Restart): wipe all downstream computation.
  template <RandomSource R>
  void restart(State& s, R& rng) const {
    s.time = 0;
    s.sum = 0;
    s.epoch = 0;
    s.gr = rng.geometric_fair();
    s.protocol_done = false;
    s.updated_sum = false;
    s.has_output = false;
    s.output = 0;
  }

  // Subprotocol 3 (Propagate-Max-Clock-Value): adopt a larger logSize2 and
  // restart everything that depended on the old value.
  template <RandomSource R>
  void propagate_max_clock_value(State& receiver, State& sender, R& rng) const {
    if (receiver.log_size2 < sender.log_size2) {
      receiver.log_size2 = sender.log_size2;
      restart(receiver, rng);
    } else if (sender.log_size2 < receiver.log_size2) {
      sender.log_size2 = receiver.log_size2;
      restart(sender, rng);
    }
  }

  // Subprotocol 8 (Move-to-Next-G.R.V).
  template <RandomSource R>
  void move_to_next_grv(State& s, R& rng) const {
    s.time = 0;
    s.gr = rng.geometric_fair();
    s.updated_sum = false;
  }

  // Subprotocol 6 (Check-if-Timer-Done-and-Increment-Epoch).  `>=` rather
  // than `=` (DESIGN.md §4.1); the updatedSUM guard makes the epoch advance
  // only after this epoch's deposit.
  template <RandomSource R>
  void check_timer(State& s, R& rng) const {
    if (!s.protocol_done && s.time >= time_threshold(s) && s.updated_sum) {
      ++s.epoch;
      move_to_next_grv(s, rng);
      if (s.epoch >= epoch_target(s)) s.protocol_done = true;
    }
  }

  // Subprotocol 7 (Propagate-Incremented-Epoch).
  template <RandomSource R>
  void propagate_incremented_epoch(State& receiver, State& sender, R& rng) const {
    if (receiver.role == Role::A && sender.role == Role::A) {
      if (receiver.epoch < sender.epoch) {
        adopt_epoch_a(receiver, sender.epoch, rng);
      } else if (sender.epoch < receiver.epoch) {
        adopt_epoch_a(sender, receiver.epoch, rng);
      }
    } else if (receiver.role == Role::S && sender.role == Role::S) {
      if (receiver.epoch < sender.epoch) {
        receiver.epoch = sender.epoch;
        receiver.sum = sender.sum;
      } else if (sender.epoch < receiver.epoch) {
        sender.epoch = receiver.epoch;
        sender.sum = receiver.sum;
      } else {
        // Equal epochs: propagate the maximum sum (DESIGN.md §4.2) so that all
        // S lineages converge to a common value (Lemma 3.12).
        const std::uint32_t m = std::max(receiver.sum, sender.sum);
        receiver.sum = m;
        sender.sum = m;
      }
    }
  }

  template <RandomSource R>
  void adopt_epoch_a(State& s, std::uint32_t epoch, R& rng) const {
    s.epoch = epoch;
    move_to_next_grv(s, rng);
    // An agent catching up to the final epoch is finished (DESIGN.md §4;
    // without this it could deposit a (K+1)-th value).
    if (s.epoch >= epoch_target(s)) s.protocol_done = true;
  }

  // Subprotocol 9 (Update-Sum): a finished-epoch A deposits its gr into an S
  // agent at the same epoch.
  void update_sum(State& a, State& s) const {
    if (a.epoch == s.epoch && a.time >= time_threshold(a) && !a.protocol_done &&
        !a.updated_sum) {
      ++s.epoch;
      s.sum += a.gr;
      a.updated_sum = true;
    } else if (a.epoch < s.epoch) {
      a.updated_sum = true;
    }
  }

  // An S agent that has accumulated all K epochs computes the output
  // (recomputed whenever its sum rises via max-sum propagation).
  void finalize_storage(State& s) const {
    if (s.role == Role::S && s.epoch >= epoch_target(s) && s.epoch > 0) {
      s.protocol_done = true;
      s.output = static_cast<std::int32_t>(s.sum / s.epoch) + 1;
      s.has_output = true;
    }
  }

  // Done agents propagate the maximum output (converges to the max-sum value).
  void share_output(State& x, State& y) const {
    if (x.protocol_done && y.protocol_done && (x.has_output || y.has_output)) {
      std::int32_t m = std::numeric_limits<std::int32_t>::min();
      if (x.has_output) m = std::max(m, x.output);
      if (y.has_output) m = std::max(m, y.output);
      x.output = m;
      y.output = m;
      x.has_output = true;
      y.has_output = true;
    }
  }

  Params params_{};
};
static_assert(AgentProtocol<LogSizeEstimation>);

// ----- observers used by tests, examples and benches -------------------

/// All agents finished and agree on an output value.
inline bool converged(const AgentSimulation<LogSizeEstimation>& sim) {
  const auto& agents = sim.agents();
  if (!agents.front().has_output) return false;
  const std::int32_t value = agents.front().output;
  for (const auto& a : agents) {
    if (!a.protocol_done || !a.has_output || a.output != value) return false;
  }
  return true;
}

/// Weaker criterion used by the paper's Figure 2: every agent reached
/// epoch = 5·logSize2 (protocolDone).
inline bool all_done(const AgentSimulation<LogSizeEstimation>& sim) {
  for (const auto& a : sim.agents()) {
    if (!a.protocol_done) return false;
  }
  return true;
}

/// The common output (requires `converged`).
inline std::int32_t estimate(const AgentSimulation<LogSizeEstimation>& sim) {
  return sim.agents().front().output;
}

/// Record each field's maximum over all agents (Lemma 3.9 state counting).
inline void record_field_ranges(const AgentSimulation<LogSizeEstimation>& sim,
                                FieldRangeRecorder& recorder) {
  for (const auto& a : sim.agents()) {
    recorder.observe("logSize2", a.log_size2);
    recorder.observe("gr", a.gr);
    recorder.observe("time", a.time);
    recorder.observe("epoch", a.epoch);
    recorder.observe("sum", a.sum);
  }
}

}  // namespace pops
