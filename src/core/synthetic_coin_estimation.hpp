// Size estimation with no access to random bits (paper Appendix B,
// Protocols 10–19).
//
// The transition function here is *deterministic*: the only randomness is the
// scheduler's uniformly random choice of ordered pair.  The population splits
// into workers (A) and coin-flippers (F); in an A–F encounter the A agent is
// the sender or the receiver with probability exactly 1/2 each, and that
// choice is the synthetic coin (due to Sudo et al. [39]):
//     A is sender  → "tails" → extend the geometric variable being built
//     A is receiver→ "heads" → the variable is complete
// Unlike the main protocol there is no storage role: every A keeps its own
// running sum of epoch maxima, which costs O(log^6 n) states instead of
// O(log^4 n) (Lemma B.5) but needs no Update-Sum rendezvous.
//
// `interact` takes an Rng& to satisfy the AgentProtocol concept but never
// draws from it — asserted by the determinism test in tests/.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/agent_simulation.hpp"
#include "sim/metrics.hpp"
#include "sim/require.hpp"

namespace pops {

class SyntheticCoinEstimation {
 public:
  struct Params {
    std::uint32_t time_multiplier = 95;
    std::uint32_t epoch_multiplier = 5;
  };

  enum class CoinRole : std::uint8_t { X = 0, A = 1, F = 2 };

  struct State {
    CoinRole role = CoinRole::X;
    bool log_size2_generated = false;
    bool gr_generated = false;
    bool protocol_done = false;
    std::uint32_t time = 0;
    std::uint32_t epoch = 0;
    std::uint32_t log_size2 = 1;
    std::uint32_t gr = 1;
    std::uint32_t sum = 0;
    std::int32_t output = 0;
  };

  SyntheticCoinEstimation() = default;
  explicit SyntheticCoinEstimation(Params params) : params_(params) {
    POPS_REQUIRE(params.time_multiplier >= 1, "time multiplier must be >= 1");
    POPS_REQUIRE(params.epoch_multiplier >= 1, "epoch multiplier must be >= 1");
  }

  const Params& params() const { return params_; }

  State initial(Rng&) const { return State{}; }

  void interact(State& receiver, State& sender, Rng&) const {
    partition_into_roles(receiver, sender);

    if (receiver.role == CoinRole::A) {
      ++receiver.time;
      check_timer(receiver);
    }
    if (sender.role == CoinRole::A) {
      ++sender.time;
      check_timer(sender);
    }

    // Exactly one A and one F: harvest the synthetic coin.
    const bool rec_a = receiver.role == CoinRole::A;
    const bool sen_a = sender.role == CoinRole::A;
    const bool rec_f = receiver.role == CoinRole::F;
    const bool sen_f = sender.role == CoinRole::F;
    if ((rec_a && sen_f) || (rec_f && sen_a)) {
      State& a = rec_a ? receiver : sender;
      if (!a.log_size2_generated) {
        generate_clock(receiver, sender);
      } else if (!a.gr_generated) {
        generate_grv(receiver, sender);
      }
    }

    if (rec_a && sen_a && receiver.gr_generated && sender.gr_generated) {
      propagate_max_clock_value(receiver, sender);
    }
    if (receiver.gr_generated && sender.gr_generated) {
      propagate_incremented_epoch(receiver, sender);
      // Re-check grGenerated: Propagate-Incremented-Epoch resets the adopting
      // agent's gr (Update-Sum sets gr = 1, grGenerated = False), and handing
      // it the other party's completed gr as a *starting point* for its next
      // generation would compound values and bias the estimate by Θ(log n) —
      // see DESIGN.md §4.8.  Max propagation is only between agents whose
      // current-epoch variables are both complete.
      if (receiver.gr_generated && sender.gr_generated &&
          receiver.epoch == sender.epoch) {
        const std::uint32_t m = std::max(receiver.gr, sender.gr);
        receiver.gr = m;
        sender.gr = m;
      }
    }
  }

  std::uint32_t time_threshold(const State& s) const {
    return params_.time_multiplier * s.log_size2;
  }
  std::uint32_t epoch_target(const State& s) const {
    return params_.epoch_multiplier * s.log_size2;
  }

 private:
  // Subprotocol 11 (Partition-Into-A/F).
  static void partition_into_roles(State& receiver, State& sender) {
    if (sender.role == CoinRole::X && receiver.role == CoinRole::X) {
      sender.role = CoinRole::A;
      receiver.role = CoinRole::F;
    } else if (sender.role == CoinRole::A && receiver.role == CoinRole::X) {
      receiver.role = CoinRole::F;
    } else if (sender.role == CoinRole::F && receiver.role == CoinRole::X) {
      receiver.role = CoinRole::A;
    }
  }

  // Subprotocol 12 (Generate-Clock): the A extends logSize2 while it is the
  // sender; completion (as receiver) applies the +2 of Lemma 3.8.
  static void generate_clock(State& receiver, State& sender) {
    if (sender.role == CoinRole::A) {
      ++sender.log_size2;
    } else if (receiver.role == CoinRole::A) {
      receiver.log_size2_generated = true;
      receiver.log_size2 += 2;
    }
  }

  // Subprotocol 15 (Generate-G.R.V).
  static void generate_grv(State& receiver, State& sender) {
    if (sender.role == CoinRole::A) {
      ++sender.gr;
    } else if (receiver.role == CoinRole::A) {
      receiver.gr_generated = true;
    }
  }

  // Subprotocol 14 (Restart).
  static void restart(State& s) {
    s.time = 0;
    s.sum = 0;
    s.epoch = 0;
    s.gr = 1;
    s.gr_generated = false;
    s.protocol_done = false;
    s.output = 0;
  }

  // Subprotocol 13 (Propagate-Max-Clock-Value).
  static void propagate_max_clock_value(State& receiver, State& sender) {
    if (receiver.log_size2 < sender.log_size2) {
      receiver.log_size2 = sender.log_size2;
      restart(receiver);
    } else if (sender.log_size2 < receiver.log_size2) {
      sender.log_size2 = receiver.log_size2;
      restart(sender);
    }
  }

  // Subprotocol 19 (Update-Sum): self-contained accumulation.
  static void update_sum(State& s) {
    s.sum += s.gr;
    s.time = 0;
    s.gr = 1;
    s.gr_generated = false;
  }

  void finish_if_target_reached(State& s) const {
    if (s.epoch >= epoch_target(s)) {
      s.protocol_done = true;
      s.output = static_cast<std::int32_t>(s.sum / s.epoch) + 1;
    }
  }

  // Subprotocol 17 (Check-if-Timer-Done-and-Increment-Epoch).
  void check_timer(State& s) const {
    if (!s.protocol_done && s.time >= time_threshold(s)) {
      ++s.epoch;
      update_sum(s);
      finish_if_target_reached(s);
    }
  }

  // Subprotocol 18 (Propagate-Incremented-Epoch).
  void propagate_incremented_epoch(State& receiver, State& sender) const {
    if (receiver.epoch < sender.epoch) {
      receiver.epoch = sender.epoch;
      update_sum(receiver);
      finish_if_target_reached(receiver);
    } else if (sender.epoch < receiver.epoch) {
      sender.epoch = receiver.epoch;
      update_sum(sender);
      finish_if_target_reached(sender);
    }
  }

  Params params_{};
};
static_assert(AgentProtocol<SyntheticCoinEstimation>);

// ----- observers --------------------------------------------------------

/// Every A agent reached epoch = 5·logSize2 (convergence; F agents only
/// serve coins and carry no output — paper footnote 21).
inline bool converged(const AgentSimulation<SyntheticCoinEstimation>& sim) {
  bool any_a = false;
  for (const auto& a : sim.agents()) {
    if (a.role == SyntheticCoinEstimation::CoinRole::A) {
      any_a = true;
      if (!a.protocol_done) return false;
    } else if (a.role == SyntheticCoinEstimation::CoinRole::X) {
      return false;
    }
  }
  return any_a;
}

/// Outputs of all finished A agents (they may differ slightly: each A keeps
/// its own sum).
inline std::vector<std::int32_t> outputs(const AgentSimulation<SyntheticCoinEstimation>& sim) {
  std::vector<std::int32_t> out;
  for (const auto& a : sim.agents()) {
    if (a.role == SyntheticCoinEstimation::CoinRole::A && a.protocol_done) out.push_back(a.output);
  }
  return out;
}

inline void record_field_ranges(const AgentSimulation<SyntheticCoinEstimation>& sim,
                                FieldRangeRecorder& recorder) {
  for (const auto& a : sim.agents()) {
    recorder.observe("logSize2", a.log_size2);
    recorder.observe("gr", a.gr);
    recorder.observe("time", a.time);
    recorder.observe("epoch", a.epoch);
    recorder.observe("sum", a.sum);
  }
}

}  // namespace pops
