// Uniform polylog-time leader election by composition (paper §1.1).
//
// The fast leader-election protocols the paper cites [4, 2, 17, 15] are
// nonuniform: they hard-code log n.  This module shows the paper's point —
// given the composition scheme (weak size estimate + leaderless stage clock +
// restart), the standard random-bit tournament becomes uniform:
//
//   * every agent starts as a contender with the 1-bit string "1" (a sentinel
//     leading bit, so numeric comparison equals equal-length lexicographic
//     comparison);
//   * in each stage, every surviving contender appends one fresh random bit;
//   * the maximum bitstring propagates by epidemic; a contender strictly
//     below the maximum drops out;
//   * after K(s) = Θ(log n) stages the maximum is unique w.h.p. (two fixed
//     contenders collide with probability 2^{−K}; union over pairs gives
//     n² 2^{−K} = o(1) for K >= 3 log n), so exactly one contender remains.
//
// The invariant "the numerically largest bitstring is held by a live
// contender" guarantees at least one leader always survives; uniqueness is
// the w.h.p. part.  Bitstrings live in unsigned __int128; `max_bits` caps
// how many bits a contender may append (default 120 — far beyond K(s) for
// any feasible n).  Lowering `max_bits` is the bounded-field regime used by
// the compiler (compile/): past the cap, surviving ties simply stop being
// broken, so at huge n a unique leader is no longer guaranteed — the benches
// measure exactly that saturation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "compile/intern.hpp"
#include "core/composition.hpp"
#include "sim/int128.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {

/// Lowercase-hex rendering of a 128-bit bitstring (canonical label helper).
inline std::string u128_hex(u128 v) {
  if (v == 0) return "0";
  char buf[33];
  int i = 33;
  while (v != 0) {
    buf[--i] = "0123456789abcdef"[static_cast<unsigned>(v & 0xF)];
    v >>= 4;
  }
  return std::string(buf + i, buf + 33);
}

struct LeaderElectionStage {
  std::uint32_t max_bits = 120;  ///< appended-bit cap (bounded-field knob)

  struct State {
    bool contender = true;
    u128 own = 1;   ///< this agent's bitstring (sentinel-led)
    u128 best = 1;  ///< max bitstring seen anywhere
  };

  template <RandomSource R>
  State initial(R&) const {
    return State{};
  }

  template <RandomSource R>
  void restart(State& s, std::uint32_t /*estimate*/, R&) const {
    s = State{};
  }

  template <RandomSource R>
  void advance_stage(State& s, std::uint32_t stage, R& rng) const {
    if (s.contender && stage <= max_bits) {
      s.own = (s.own << 1) | static_cast<unsigned>(rng.coin());
      s.best = std::max(s.best, s.own);
    }
  }

  template <RandomSource R>
  void interact(State& a, std::uint32_t /*stage_a*/, State& b, std::uint32_t /*stage_b*/,
                R&) const {
    const u128 m = std::max(a.best, b.best);
    a.best = m;
    b.best = m;
    if (a.contender && a.own < a.best) a.contender = false;
    if (b.contender && b.own < b.best) b.contender = false;
  }

  /// Canonical label (compile/compiler.hpp).  A dropped-out contender's
  /// `own` string is dead — nothing reads it again and a restart rewrites
  /// it — so it is not printed; `saturate` canonicalizes it to 0.
  std::string state_label(const State& s) const {
    return (s.contender ? "C" + u128_hex(s.own) : "F") + "/" + u128_hex(s.best);
  }

  /// Typed interning key (compile/intern.hpp): contender flag plus both
  /// 128-bit bitstrings, two words each.
  void state_key(const State& s, StateKeyBuf& key) const {
    key.push(s.contender ? 1 : 0);
    key.push(static_cast<std::uint64_t>(s.own));
    key.push(static_cast<std::uint64_t>(s.own >> 64));
    key.push(static_cast<std::uint64_t>(s.best));
    key.push(static_cast<std::uint64_t>(s.best >> 64));
  }

  /// Bounded-field regime hook.  `own` and `best` carry at most
  /// 1 + max_bits bits by the advance_stage guard; the clamp never binds.
  void saturate(State& s, std::uint32_t /*stage*/) const {
    // max_bits >= 127 admits all 128 bits; shifting by 128 would be UB.
    const u128 mask = max_bits >= 127 ? ~static_cast<u128>(0)
                                      : (static_cast<u128>(1) << (max_bits + 1)) - 1;
    s.own = std::min(s.own, mask);
    s.best = std::min(s.best, mask);
    if (!s.contender) s.own = 0;  // dead: only a restart resurrects it
  }
};
static_assert(StageProtocol<LeaderElectionStage>);
static_assert(CompilableStage<LeaderElectionStage>);

using UniformLeaderElection = Composed<LeaderElectionStage>;

/// Convenience factory with the default composition constants.
inline UniformLeaderElection make_uniform_leader_election(
    UniformLeaderElection::Params params = {}) {
  return UniformLeaderElection(LeaderElectionStage{}, params);
}

/// Number of live contenders (1 == successful election).
inline std::uint64_t count_contenders(const AgentSimulation<UniformLeaderElection>& sim) {
  std::uint64_t count = 0;
  for (const auto& a : sim.agents()) {
    if (a.down.contender) ++count;
  }
  return count;
}

}  // namespace pops
