// Uniform polylog-time leader election by composition (paper §1.1).
//
// The fast leader-election protocols the paper cites [4, 2, 17, 15] are
// nonuniform: they hard-code log n.  This module shows the paper's point —
// given the composition scheme (weak size estimate + leaderless stage clock +
// restart), the standard random-bit tournament becomes uniform:
//
//   * every agent starts as a contender with the 1-bit string "1" (a sentinel
//     leading bit, so numeric comparison equals equal-length lexicographic
//     comparison);
//   * in each stage, every surviving contender appends one fresh random bit;
//   * the maximum bitstring propagates by epidemic; a contender strictly
//     below the maximum drops out;
//   * after K(s) = Θ(log n) stages the maximum is unique w.h.p. (two fixed
//     contenders collide with probability 2^{−K}; union over pairs gives
//     n² 2^{−K} = o(1) for K >= 3 log n), so exactly one contender remains.
//
// The invariant "the numerically largest bitstring is held by a live
// contender" guarantees at least one leader always survives; uniqueness is
// the w.h.p. part.  Bitstrings live in unsigned __int128 (stages cap at 120
// appended bits — far beyond K(s) for any feasible n).
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/composition.hpp"
#include "sim/int128.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {

struct LeaderElectionStage {
  struct State {
    bool contender = true;
    u128 own = 1;   ///< this agent's bitstring (sentinel-led)
    u128 best = 1;  ///< max bitstring seen anywhere
  };

  State initial(Rng&) const { return State{}; }

  void restart(State& s, std::uint32_t /*estimate*/, Rng&) const { s = State{}; }

  void advance_stage(State& s, std::uint32_t stage, Rng& rng) const {
    if (s.contender && stage <= 120) {
      s.own = (s.own << 1) | static_cast<unsigned>(rng.coin());
      s.best = std::max(s.best, s.own);
    }
  }

  void interact(State& a, std::uint32_t /*stage_a*/, State& b, std::uint32_t /*stage_b*/,
                Rng&) const {
    const u128 m = std::max(a.best, b.best);
    a.best = m;
    b.best = m;
    if (a.contender && a.own < a.best) a.contender = false;
    if (b.contender && b.own < b.best) b.contender = false;
  }
};
static_assert(StageProtocol<LeaderElectionStage>);

using UniformLeaderElection = Composed<LeaderElectionStage>;

/// Convenience factory with the default composition constants.
inline UniformLeaderElection make_uniform_leader_election(
    UniformLeaderElection::Params params = {}) {
  return UniformLeaderElection(LeaderElectionStage{}, params);
}

/// Number of live contenders (1 == successful election).
inline std::uint64_t count_contenders(const AgentSimulation<UniformLeaderElection>& sim) {
  std::uint64_t count = 0;
  for (const auto& a : sim.agents()) {
    if (a.down.contender) ++count;
  }
  return count;
}

}  // namespace pops
