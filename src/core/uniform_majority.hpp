// Uniform exact-majority by composition (paper §1.1 motivation).
//
// The phased cancellation/doubling majority protocols the paper cites
// ([6, 2, 3]) need ⌈log n⌉ synchronized levels — exactly the hard-coded
// quantity that makes them nonuniform.  Composing the construction with the
// leaderless stage clock makes it uniform:
//
//   * each agent starts with an opinion (+1/−1) as a level-0 token;
//   * tokens of opposite sign and equal level cancel (both become blank);
//   * a token may double: meeting a blank agent, token at level ℓ < stage
//     converts both agents to sign tokens at level ℓ+1 — so levels trail the
//     stage clock and every level gets a full Θ(log n) stage of cancellation
//     before doubling past it;
//   * blanks remember the sign of the last token they met as their output;
//     tokens output their own sign.
//
// For majority gaps of a constant fraction the minority is eliminated w.h.p.
// and all agents output the majority sign; the benches measure the success
// rate across gaps.  (As with the cited protocols, correctness for o(n) gaps
// requires more machinery; the point here is the uniformization.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "compile/intern.hpp"
#include "core/composition.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {

struct MajorityStage {
  struct State {
    std::int8_t input = +1;   ///< the agent's immutable vote
    std::int8_t sign = +1;    ///< current token sign; 0 = blank
    std::uint32_t level = 0;  ///< doubling level (<= current stage)
    std::int8_t output = +1;  ///< reported majority opinion
  };

  template <RandomSource R>
  State initial(R&) const {
    return State{};
  }

  /// Restart must re-seed from the immutable input, not from State{}.
  template <RandomSource R>
  void restart(State& s, std::uint32_t /*estimate*/, R&) const {
    s.sign = s.input;
    s.level = 0;
    s.output = s.input;
  }

  template <RandomSource R>
  void advance_stage(State&, std::uint32_t, R&) const {}

  template <RandomSource R>
  void interact(State& a, std::uint32_t stage_a, State& b, std::uint32_t stage_b,
                R&) const {
    if (a.sign != 0 && b.sign != 0 && a.sign == -b.sign && a.level == b.level) {
      // Cancellation.
      a.sign = 0;
      b.sign = 0;
    } else if (a.sign != 0 && b.sign == 0 && a.level < stage_a) {
      // Doubling through a blank.
      b.sign = a.sign;
      ++a.level;
      b.level = a.level;
    } else if (b.sign != 0 && a.sign == 0 && b.level < stage_b) {
      a.sign = b.sign;
      ++b.level;
      a.level = b.level;
    }
    if (a.sign != 0) a.output = a.sign;
    if (b.sign != 0) b.output = b.sign;
    if (a.sign != 0 && b.sign == 0) b.output = a.sign;
    if (b.sign != 0 && a.sign == 0) a.output = b.sign;
  }

  /// Canonical label (compile/compiler.hpp): vote, token sign+level, output.
  std::string state_label(const State& s) const {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%c%c%u%c", s.input > 0 ? '+' : '-',
                  s.sign > 0 ? 'p' : (s.sign < 0 ? 'n' : 'b'), s.level,
                  s.output > 0 ? '+' : '-');
    return buf;
  }

  /// Typed interning key (compile/intern.hpp): one word covers every field
  /// the label prints (int8 fields widened via uint8 so signs survive).
  void state_key(const State& s, StateKeyBuf& key) const {
    key.push(static_cast<std::uint64_t>(static_cast<std::uint8_t>(s.input)) |
             (static_cast<std::uint64_t>(static_cast<std::uint8_t>(s.sign)) << 8) |
             (static_cast<std::uint64_t>(static_cast<std::uint8_t>(s.output)) << 16) |
             (static_cast<std::uint64_t>(s.level) << 32));
  }

  /// Bounded-field regime hook: the doubling level trails the stage clock
  /// (a token doubles only while level < stage), so the clamp never binds.
  /// A blank's level is dead — it is read only on sign-carrying tokens, and
  /// doubling through a blank overwrites it — so it canonicalizes to 0.
  void saturate(State& s, std::uint32_t stage) const {
    s.level = std::min(s.level, stage);
    if (s.sign == 0) s.level = 0;
  }
};
static_assert(CompilableStage<MajorityStage>);
static_assert(StageProtocol<MajorityStage>);

using UniformMajority = Composed<MajorityStage>;

inline UniformMajority make_uniform_majority(UniformMajority::Params params = {}) {
  return UniformMajority(MajorityStage{}, params);
}

/// Assign votes: the first `positives` agents vote +1, the rest −1.
inline void assign_votes(AgentSimulation<UniformMajority>& sim, std::uint64_t positives) {
  for (std::uint64_t i = 0; i < sim.population_size(); ++i) {
    auto st = sim.agent(i);
    st.down.input = (i < positives) ? std::int8_t{+1} : std::int8_t{-1};
    st.down.sign = st.down.input;
    st.down.output = st.down.input;
    sim.set_state(i, st);
  }
}

/// Fraction of agents whose output matches `sign`.
inline double output_agreement(const AgentSimulation<UniformMajority>& sim, int sign) {
  std::uint64_t agree = 0;
  for (const auto& a : sim.agents()) {
    if (a.down.output == sign) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(sim.population_size());
}

}  // namespace pops
