// Probability-1 upper bound on log n (paper Section 3.3).
//
// The main protocol can err in either direction.  For many downstream uses an
// *upper bound* on log n suffices for correctness (being too large only slows
// things down).  Construction:
//   * run the main Log-Size-Estimation with its estimate shifted up by 3.7
//     (so k >= log n w.h.p. — one-sided application of Lemma D.8), and
//   * in parallel run the slow exact backup ℓ_i,ℓ_i → ℓ_{i+1},f_{i+1};
//     f_i,f_j → f_i,f_i, whose kex >= log2 n with probability 1 once stable;
//   * report max(k, kex) at any moment.
// The fast estimate is correct (and an upper bound) w.p. 1 − O(log n / n); if
// it fails, kex eventually exceeds it, so the reported value is >= log n with
// probability 1, while the high-probability convergence time stays O(log² n).
//
// Since outputs are integers we shift by ceil(3.7) = 4 (documented; the
// guarantee only needs "+3.7 or more").
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/log_size_estimation.hpp"
#include "proto/exact_counting.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {

class UpperBoundEstimation {
 public:
  struct Params {
    LogSizeEstimation::Params main{};
    std::int32_t shift = 4;  ///< added to the fast estimate (paper: 3.7)
  };

  struct State {
    LogSizeEstimation::State fast;
    ExactCountingBackup::State backup;
  };

  UpperBoundEstimation() = default;
  explicit UpperBoundEstimation(Params params)
      : params_(params), fast_(params.main) {}

  State initial(Rng& rng) const {
    return State{fast_.initial(rng), backup_.initial(rng)};
  }

  void interact(State& receiver, State& sender, Rng& rng) const {
    fast_.interact(receiver.fast, sender.fast, rng);
    backup_.interact(receiver.backup, sender.backup, rng);
  }

  /// The value this agent currently reports: max(fast + shift, kex).
  std::int32_t report(const State& s) const {
    const std::int32_t kex =
        static_cast<std::int32_t>(ExactCountingBackup::estimate(s.backup));
    if (!s.fast.has_output) return kex;
    return std::max(s.fast.output + params_.shift, kex);
  }

  const Params& params() const { return params_; }

 private:
  Params params_{};
  LogSizeEstimation fast_{};
  ExactCountingBackup backup_{};
};
static_assert(AgentProtocol<UpperBoundEstimation>);

/// Fast part converged (the backup keeps running silently afterwards).
inline bool fast_converged(const AgentSimulation<UpperBoundEstimation>& sim) {
  const auto& agents = sim.agents();
  if (!agents.front().fast.has_output) return false;
  const std::int32_t value = agents.front().fast.output;
  for (const auto& a : agents) {
    if (!a.fast.protocol_done || !a.fast.has_output || a.fast.output != value) {
      return false;
    }
  }
  return true;
}

}  // namespace pops
