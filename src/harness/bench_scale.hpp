// Benchmark scale control.
//
// POPS_BENCH_SCALE in the environment selects the experiment size:
//   0 — smoke (seconds; CI-friendly)
//   1 — default (minutes on one core; the committed bench_output.txt)
//   2 — paper scale where feasible (Figure 2 up to n = 10^5; hours)
#pragma once

#include <cstdlib>
#include <string>

namespace pops {

inline int bench_scale() {
  const char* env = std::getenv("POPS_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v < 0 ? 0 : (v > 2 ? 2 : v);
}

/// Pick a value by scale: smoke / standard / paper.
template <typename T>
T by_scale(T smoke, T standard, T paper) {
  switch (bench_scale()) {
    case 0: return smoke;
    case 2: return paper;
    default: return standard;
  }
}

}  // namespace pops
