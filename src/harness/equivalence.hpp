// Compiled-vs-agent equivalence harness, shared by the chi-square
// certification suite (tests/test_compiled_equivalence.cpp) and the
// per-config equivalence record in bench_compiled_scaling.
//
// Histograms an integer observable — the number of agents whose typed state
// satisfies `observable` — over `trials` runs of `AgentSimulation<P>` and
// over `trials` runs of the compiled spec on `BatchedCountSimulation`, then
// two-sample chi-squares the histograms.  Agent trials fan out over the
// process-wide executor (deterministic per-trial seed streams).  Eager
// batched trials reuse one simulator via reset(), since the CSR dispatch
// build dwarfs a small-n trial; lazy batched trials fan out on the executor
// too, sharing one JIT table — the sharded `compile_pair` makes that safe,
// and per-seed results are thread-count invariant (see compile/lazy.hpp's
// concurrency contract), so the histograms are identical at any executor
// width (Executor::set_threads changes wall-clock, never values).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/lazy.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/batched_count_simulation.hpp"
#include "stats/chi_square.hpp"

namespace pops {

/// Agent-side histogram shared by the eager and lazy harness entry points.
template <typename P, typename Obs>
std::map<std::uint64_t, std::uint64_t> agent_observable_histogram(
    const P& proto, std::uint64_t n, std::uint64_t interactions, std::uint64_t trials,
    std::uint64_t master_seed, Obs&& observable) {
  const auto agent_values = run_trials_parallel(
      trials, master_seed, [&](std::uint64_t seed, std::uint64_t) {
        AgentSimulation<P> sim(proto, n, seed);
        sim.steps(interactions);
        std::uint64_t value = 0;
        for (const auto& a : sim.agents()) value += observable(a) ? 1 : 0;
        return value;
      });
  std::map<std::uint64_t, std::uint64_t> hist;
  for (const auto v : agent_values) ++hist[v];
  return hist;
}

template <typename P, typename Obs>
TwoSampleChiSquare compiled_agent_equivalence(const P& proto,
                                              const CompileResult<P>& compiled,
                                              std::uint64_t n, std::uint64_t interactions,
                                              std::uint64_t trials,
                                              std::uint64_t master_seed, Obs&& observable) {
  const auto agent_hist =
      agent_observable_histogram(proto, n, interactions, trials, master_seed, observable);
  std::map<std::uint64_t, std::uint64_t> count_hist;
  BatchedCountSimulation sim(compiled.spec, 1);
  for (std::uint64_t i = 0; i < trials; ++i) {
    sim.reset(trial_seed(master_seed ^ 0xBA7C4EDULL, i));
    Rng seeder(trial_seed(master_seed ^ 0x5EEDULL, i));
    compiled.seed_initial(sim, n, seeder);
    sim.steps(interactions);
    ++count_hist[compiled.count_matching(sim.counts(), observable)];
  }
  return two_sample_chi_square(agent_hist, count_hist);
}

/// Batched-side observable values for a lazy spec, one per trial, fanned out
/// via run_trials_parallel on the process-wide executor (0 = executor
/// width).  Every trial constructs its own simulator against the
/// shared JIT table; the per-trial seeds match the historical sequential
/// loop (sim seed master^0xBA7C4ED, seeder master^0x5EED, per trial index),
/// so the values are bit-identical to the pre-sharding harness and to any
/// other thread count.
template <typename P, typename Obs>
std::vector<std::uint64_t> lazy_trial_values(LazyCompiledSpec<P>& lazy, std::uint64_t n,
                                             std::uint64_t interactions,
                                             std::uint64_t trials,
                                             std::uint64_t master_seed, Obs&& observable,
                                             unsigned threads = 0) {
  return run_trials_parallel(
      trials, master_seed ^ 0xBA7C4EDULL,
      [&](std::uint64_t seed, std::uint64_t i) {
        BatchedCountSimulation sim(lazy, seed);
        Rng seeder(trial_seed(master_seed ^ 0x5EEDULL, i));
        lazy.seed_initial(sim, n, seeder);
        sim.steps(interactions);
        return lazy.count_matching(sim.counts(), observable);
      },
      threads);
}

/// Lazy-mode overload: same agent side, batched side JIT-compiles pairs on
/// first contact.  Trials share `lazy`'s table — whichever trials touch a
/// pair first warm it for the rest — and fan out over `threads` via
/// run_trials_parallel (the sharded JIT is thread-safe; results are
/// thread-count invariant).
template <typename P, typename Obs>
TwoSampleChiSquare compiled_agent_equivalence(const P& proto, LazyCompiledSpec<P>& lazy,
                                              std::uint64_t n, std::uint64_t interactions,
                                              std::uint64_t trials,
                                              std::uint64_t master_seed, Obs&& observable,
                                              unsigned threads = 0) {
  const auto agent_hist =
      agent_observable_histogram(proto, n, interactions, trials, master_seed, observable);
  const auto values =
      lazy_trial_values(lazy, n, interactions, trials, master_seed, observable, threads);
  std::map<std::uint64_t, std::uint64_t> count_hist;
  for (const auto v : values) ++count_hist[v];
  return two_sample_chi_square(agent_hist, count_hist);
}

}  // namespace pops
