// Compiled-vs-agent equivalence harness, shared by the chi-square
// certification suite (tests/test_compiled_equivalence.cpp) and the
// per-config equivalence record in bench_compiled_scaling.
//
// Histograms an integer observable — the number of agents whose typed state
// satisfies `observable` — over `trials` runs of `AgentSimulation<P>` and
// over `trials` runs of the compiled spec on `BatchedCountSimulation`, then
// two-sample chi-squares the histograms.  Agent trials fan out over threads
// (deterministic per-trial seed streams); batched trials reuse one simulator
// via reset(), since the CSR dispatch build dwarfs a small-n trial.
#pragma once

#include <cstdint>
#include <map>

#include "compile/compiler.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/batched_count_simulation.hpp"
#include "stats/chi_square.hpp"

namespace pops {

template <typename P, typename Obs>
TwoSampleChiSquare compiled_agent_equivalence(const P& proto,
                                              const CompileResult<P>& compiled,
                                              std::uint64_t n, std::uint64_t interactions,
                                              std::uint64_t trials,
                                              std::uint64_t master_seed, Obs&& observable) {
  const auto agent_values = run_trials_parallel(
      trials, master_seed, [&](std::uint64_t seed, std::uint64_t) {
        AgentSimulation<P> sim(proto, n, seed);
        sim.steps(interactions);
        std::uint64_t value = 0;
        for (const auto& a : sim.agents()) value += observable(a) ? 1 : 0;
        return value;
      });
  std::map<std::uint64_t, std::uint64_t> agent_hist, count_hist;
  for (const auto v : agent_values) ++agent_hist[v];
  BatchedCountSimulation sim(compiled.spec, 1);
  for (std::uint64_t i = 0; i < trials; ++i) {
    sim.reset(trial_seed(master_seed ^ 0xBA7C4EDULL, i));
    Rng seeder(trial_seed(master_seed ^ 0x5EEDULL, i));
    compiled.seed_initial(sim, n, seeder);
    sim.steps(interactions);
    ++count_hist[compiled.count_matching(sim.counts(), observable)];
  }
  return two_sample_chi_square(agent_hist, count_hist);
}

}  // namespace pops
