// Plain-text table printer for the benchmark harness: aligned columns,
// paper-style rows, machine-greppable.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/require.hpp"

namespace pops {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    POPS_REQUIRE(!headers_.empty(), "table needs at least one column");
  }

  Table& row(std::vector<std::string> cells) {
    POPS_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }
  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(std::int64_t v) { return std::to_string(v); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << "  " << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      }
      os << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section banner for bench output.
inline void banner(const std::string& title, std::ostream& os = std::cout) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace pops
