// Multi-trial experiment harness.
//
// Every trial gets an independent, reproducible seed derived from a master
// seed via SplitMix64; results are collected into a vector for
// summarization.  `run_trials_parallel` fans the trials out over threads:
// because each trial's RNG stream depends only on (master_seed, index) and
// results land at their trial's index, the output is bit-identical to the
// serial `run_trials` regardless of thread count or scheduling.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sim/rng.hpp"

namespace pops {

/// Derive the seed for trial `index` from `master`.
inline std::uint64_t trial_seed(std::uint64_t master, std::uint64_t index) {
  SplitMix64 sm(master ^ (0xA5A5A5A5DEADBEEFULL + index * 0x9E3779B97F4A7C15ULL));
  return sm.next();
}

/// Run `trials` independent repetitions of `fn(seed, trial_index)` and return
/// the results.
template <typename Fn>
auto run_trials(std::uint64_t trials, std::uint64_t master_seed, Fn&& fn) {
  using Result = decltype(fn(std::uint64_t{}, std::uint64_t{}));
  std::vector<Result> results;
  results.reserve(trials);
  for (std::uint64_t i = 0; i < trials; ++i) {
    results.push_back(fn(trial_seed(master_seed, i), i));
  }
  return results;
}

/// Run `trials` independent repetitions of `fn(seed, trial_index)` across
/// `threads` worker threads (0 = hardware concurrency) and return the
/// results, indexed by trial.  `fn` must be safe to call concurrently from
/// multiple threads on distinct trial indices (simulators constructed inside
/// the trial body are — each owns its RNG).  Deterministic: same master seed
/// means same results, whatever the thread count.
template <typename Fn>
auto run_trials_parallel(std::uint64_t trials, std::uint64_t master_seed, Fn&& fn,
                         unsigned threads = 0) {
  using Result = decltype(fn(std::uint64_t{}, std::uint64_t{}));
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (threads == 1 || trials <= 1) return run_trials(trials, master_seed, fn);
  // optional<Result> slots, not vector<Result>: Result need not be
  // default-constructible (serial run_trials doesn't require it), and
  // vector<bool> would bit-pack, turning writes to distinct trial indices
  // into racing read-modify-writes.
  std::vector<std::optional<Result>> slots(trials);
  std::atomic<std::uint64_t> next{0};
  // Propagate a trial's exception to the caller (as the serial harness does)
  // instead of letting it escape a worker thread into std::terminate.
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&] {
    try {
      for (;;) {
        const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= trials) return;
        slots[i] = fn(trial_seed(master_seed, i), i);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
      next.store(trials, std::memory_order_relaxed);  // drain remaining work
    }
  };
  std::vector<std::thread> pool;
  const unsigned spawned = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, trials));
  pool.reserve(spawned);
  for (unsigned t = 0; t + 1 < spawned; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker #spawned
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  std::vector<Result> results;
  results.reserve(trials);
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace pops
