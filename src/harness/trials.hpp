// Multi-trial experiment harness.
//
// Every trial gets an independent, reproducible seed derived from a master
// seed via SplitMix64; results are collected into a vector for summarization.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace pops {

/// Derive the seed for trial `index` from `master`.
inline std::uint64_t trial_seed(std::uint64_t master, std::uint64_t index) {
  SplitMix64 sm(master ^ (0xA5A5A5A5DEADBEEFULL + index * 0x9E3779B97F4A7C15ULL));
  return sm.next();
}

/// Run `trials` independent repetitions of `fn(seed, trial_index)` and return
/// the results.
template <typename Fn>
auto run_trials(std::uint64_t trials, std::uint64_t master_seed, Fn&& fn) {
  using Result = decltype(fn(std::uint64_t{}, std::uint64_t{}));
  std::vector<Result> results;
  results.reserve(trials);
  for (std::uint64_t i = 0; i < trials; ++i) {
    results.push_back(fn(trial_seed(master_seed, i), i));
  }
  return results;
}

}  // namespace pops
