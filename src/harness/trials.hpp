// Multi-trial experiment harness.
//
// Every trial gets an independent, reproducible seed derived from a master
// seed via SplitMix64; results are collected into a vector for
// summarization.  `run_trials_parallel` fans the trials out over the
// process-wide executor (core/executor.hpp): because each trial's RNG
// stream depends only on (master_seed, index) and results land at their
// trial's index, the output is bit-identical to the serial `run_trials`
// regardless of executor width or scheduling.  Trials that themselves fan
// out (compile inside the pool, nested sub-trials) reuse the same executor
// instead of oversubscribing the machine.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/executor.hpp"
#include "sim/rng.hpp"

namespace pops {

/// Derive the seed for trial `index` from `master`.
inline std::uint64_t trial_seed(std::uint64_t master, std::uint64_t index) {
  SplitMix64 sm(master ^ (0xA5A5A5A5DEADBEEFULL + index * 0x9E3779B97F4A7C15ULL));
  return sm.next();
}

/// Run `trials` independent repetitions of `fn(seed, trial_index)` and return
/// the results.
template <typename Fn>
auto run_trials(std::uint64_t trials, std::uint64_t master_seed, Fn&& fn) {
  using Result = decltype(fn(std::uint64_t{}, std::uint64_t{}));
  std::vector<Result> results;
  results.reserve(trials);
  for (std::uint64_t i = 0; i < trials; ++i) {
    results.push_back(fn(trial_seed(master_seed, i), i));
  }
  return results;
}

/// The parallelism run_trials_parallel will actually use for a `trials` /
/// `threads` request (0 = the executor's width): capped by the executor —
/// a request cannot oversubscribe the process-wide budget — and by the
/// trial count.  Benches record this value in their JSON headers so
/// cross-PR perf diffs compare like with like (the requested count used to
/// be reported, mis-labeling small-trial runs).
inline unsigned effective_trial_threads(std::uint64_t trials, unsigned threads = 0) {
  const unsigned width = Executor::instance().threads();
  const unsigned budget = threads == 0 ? width : std::min(threads, width);
  return static_cast<unsigned>(std::min<std::uint64_t>(budget, std::max<std::uint64_t>(trials, 1)));
}

/// Run `trials` independent repetitions of `fn(seed, trial_index)` across
/// the process-wide executor and return the results, indexed by trial.
/// `threads` caps the fan-out below the executor's width (0 = full width;
/// requests above the width are clamped — Executor::set_threads owns the
/// budget); `threads` = 1 is the genuinely serial reference path.  `fn`
/// must be safe to call concurrently from multiple threads on distinct
/// trial indices (simulators constructed inside the trial body are — each
/// owns its RNG).  Deterministic: same master seed means same results,
/// whatever the width.
template <typename Fn>
auto run_trials_parallel(std::uint64_t trials, std::uint64_t master_seed, Fn&& fn,
                         unsigned threads = 0) {
  using Result = decltype(fn(std::uint64_t{}, std::uint64_t{}));
  const unsigned budget = effective_trial_threads(trials, threads);
  if (budget <= 1 || trials <= 1) return run_trials(trials, master_seed, fn);
  // optional<Result> slots, not vector<Result>: Result need not be
  // default-constructible (serial run_trials doesn't require it), and
  // vector<bool> would bit-pack, turning writes to distinct trial indices
  // into racing read-modify-writes.
  std::vector<std::optional<Result>> slots(trials);
  std::atomic<std::uint64_t> next{0};
  auto body = [&] {
    try {
      for (;;) {
        const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= trials) return;
        slots[i] = fn(trial_seed(master_seed, i), i);
      }
    } catch (...) {
      next.store(trials, std::memory_order_relaxed);  // drain remaining work
      throw;  // TaskGroup::wait rethrows the first trial's failure
    }
  };
  Executor::TaskGroup group;
  for (unsigned t = 0; t < budget; ++t) group.run(body);
  group.wait();  // the calling thread help-runs the submitted bodies
  std::vector<Result> results;
  results.reserve(trials);
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace pops
