// The paper's introductory arithmetic examples (Section 1).
//
// "For example, the transition x,q → y,y (starting with at least as many q as
//  the input state x) computes f(x) = 2x in expected time O(log n), whereas
//  x,x → y,q computes f(x) = floor(x/2) exponentially slower: expected time
//  O(n)."
//
// These two protocols bracket the whole field's notion of "efficient": the
// doubling transition is an epidemic-like *spreading* process (every x–q
// meeting makes progress, and progress compounds), while halving needs
// *specific pairs* (x must meet x), whose meeting rate collapses as x is
// consumed.  The ARITH bench regenerates the exponential gap.
//
// Output convention (paper §2.1 footnote 11 — distributed output): the value
// computed is the COUNT of agents in the output state y.
#pragma once

#include "sim/finite_spec.hpp"

namespace pops {

/// x, q → y, y: computes f(x) = 2x into the count of y.  O(log n) expected.
inline FiniteSpec doubling_spec() {
  FiniteSpec spec;
  spec.add_symmetric("x", "q", "y", "y");
  return spec;
}

/// x, x → y, q: computes f(x) = floor(x/2) into the count of y.  O(n)
/// expected — the last two x's take Θ(n) time to find each other.
inline FiniteSpec halving_spec() {
  FiniteSpec spec;
  spec.add("x", "x", "y", "q");
  return spec;
}

/// x, q → y, q with rate 1: f(x) = x "copy" via catalyst — O(log n), used in
/// tests as a third data point (single-sided epidemic).
inline FiniteSpec copy_spec() {
  FiniteSpec spec;
  spec.add_symmetric("x", "q", "y", "q");
  return spec;
}

}  // namespace pops
