// Epidemic (one-way gossip) protocols.
//
// The transition i,j → j,j for i <= j propagates a maximum through the
// population by "infection" in Θ(log n) parallel time (paper Lemma A.1,
// Corollaries 3.4/3.5).  Epidemics are the workhorse primitive of the main
// protocol: logSize2, gr, epoch, sum and the final output all spread this way.
//
// Three forms are provided:
//  * `epidemic_spec()`            — 2-state S/I FiniteSpec for CountSimulation
//  * `subpopulation_epidemic_spec()` — S/I plus inert bystanders B
//                                    (Corollary 3.4's epidemic "among n/c")
//  * `ValueEpidemic`              — agent protocol propagating max of values
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/agent_simulation.hpp"
#include "sim/finite_spec.hpp"

namespace pops {

/// States "S" (susceptible) and "I" (infected); either orientation of an
/// (S, I) encounter infects the susceptible agent.
inline FiniteSpec epidemic_spec() {
  FiniteSpec spec;
  spec.add_symmetric("S", "I", "I", "I");
  return spec;
}

/// Epidemic among a subpopulation: bystanders "B" never change and never
/// infect, exactly the setting of Corollary 3.4 (epidemic transitions executed
/// only within the active subset).
inline FiniteSpec subpopulation_epidemic_spec() {
  FiniteSpec spec;
  spec.add_symmetric("S", "I", "I", "I");
  spec.state("B");
  return spec;
}

/// Max-value epidemic at agent level: each agent holds a value; both parties
/// adopt the larger.  With distinct initial values this is the "propagate the
/// maximum" primitive used throughout Section 3.
struct ValueEpidemic {
  struct State {
    std::uint64_t value = 0;
  };

  State initial(Rng&) const { return State{}; }

  void interact(State& receiver, State& sender, Rng&) const {
    const std::uint64_t m = std::max(receiver.value, sender.value);
    receiver.value = m;
    sender.value = m;
  }
};
static_assert(AgentProtocol<ValueEpidemic>);

}  // namespace pops
