// Slow probability-1 exact counting backup (paper Section 3.3).
//
// Transitions (all agents start as ℓ_0):
//     ℓ_i, ℓ_i → ℓ_{i+1}, f_{i+1}
//     f_i, f_j → f_i, f_i        for j < i
// Mass conservation (an ℓ_i represents 2^i original agents) forces the final
// ℓ-levels to be exactly the binary representation of n, so the largest merge
// level ever produced is floor(log2 n), approached from below.
//
// Disambiguation (documented in DESIGN.md §4): the paper says "after O(n)
// time all agents store kex in their subscript", but ℓ-leftovers never update
// under the listed transitions.  We therefore give every agent a `best` field
// holding the largest subscript it has seen, propagated as a max-epidemic on
// every interaction, and report kex = best + 1.  This preserves the merge
// machinery verbatim and yields the guarantee Section 3.3 actually uses:
//     kex >= log2 n   with probability 1 (once stabilized), and
//     2^{kex−1} <= n <= 2^{kex}.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/agent_simulation.hpp"

namespace pops {

struct ExactCountingBackup {
  struct State {
    bool is_level = true;      ///< true: ℓ agent; false: f agent
    std::uint32_t level = 0;   ///< subscript i of ℓ_i / f_i
    std::uint32_t best = 0;    ///< max subscript seen anywhere (epidemic)
  };

  State initial(Rng&) const { return State{}; }

  void interact(State& receiver, State& sender, Rng&) const {
    if (receiver.is_level && sender.is_level && receiver.level == sender.level) {
      // ℓ_i, ℓ_i → ℓ_{i+1}, f_{i+1}
      receiver.level += 1;
      sender.is_level = false;
      sender.level = receiver.level;
    } else if (!receiver.is_level && !sender.is_level) {
      // f_i, f_j → f_i, f_i for j < i (either orientation)
      const std::uint32_t m = std::max(receiver.level, sender.level);
      receiver.level = m;
      sender.level = m;
    }
    const std::uint32_t b =
        std::max({receiver.best, sender.best, receiver.level, sender.level});
    receiver.best = b;
    sender.best = b;
  }

  /// The value this agent currently reports: kex = best + 1, an upper bound on
  /// log2 n once the protocol has stabilized.
  static std::uint32_t estimate(const State& s) { return s.best + 1; }

};
static_assert(AgentProtocol<ExactCountingBackup>);

/// Stable once every agent's `best` equals floor(log2 n) — equivalently,
/// once the ℓ-levels are the binary representation of n and the epidemic of
/// `best` has completed.
inline bool converged(const AgentSimulation<ExactCountingBackup>& sim) {
  std::uint32_t expected = 0;
  while ((std::uint64_t{1} << (expected + 1)) <= sim.population_size()) ++expected;
  for (const auto& a : sim.agents()) {
    if (a.best != expected) return false;
  }
  return true;
}

}  // namespace pops
