// Junta-driven phase clock.
//
// Theorem 4.1 notes that termination requires breaking density with "a leader
// (or an o(n)-size junta of leaders)".  This clock generalizes the
// leader-driven phase clock of [9] to a planted junta of j >= 1 clock-setter
// agents: every junta member advances its phase on meeting an agent at its
// own phase, and followers (and slower junta members, via the same catch-up
// rule) adopt phases ahead of them within half the circle.
//
// With j = o(n) the clock still ticks at Θ(log(n/j))-ish per phase — the
// announced phase must epidemic back to *some* junta member — so a junta of
// size n^ε still supports the Θ(log² n) termination timer of Theorem 3.13,
// while j = Θ(n) (a dense "junta") collapses the per-phase time to O(1),
// which is exactly why dense protocols cannot delay termination.
#pragma once

#include <cstdint>

#include "sim/agent_simulation.hpp"
#include "sim/require.hpp"

namespace pops {

struct JuntaPhaseClock {
  std::uint32_t num_phases = 300;

  struct State {
    bool junta = false;
    std::uint32_t phase = 0;
    std::uint64_t increments = 0;  ///< junta members: phase advances
  };

  State initial(Rng&) const { return State{}; }

  static State make_junta_member() {
    State s;
    s.junta = true;
    return s;
  }

  void interact(State& receiver, State& sender, Rng&) const {
    const State receiver_before = receiver;
    const State sender_before = sender;
    step(receiver, sender_before);
    step(sender, receiver_before);
  }

 private:
  void step(State& me, const State& other) const {
    const std::uint32_t m = num_phases;
    if (me.junta && other.phase == me.phase) {
      me.phase = (me.phase + 1) % m;
      ++me.increments;
      return;
    }
    const std::uint32_t ahead = (other.phase + m - me.phase) % m;
    if (ahead >= 1 && ahead <= m / 2) me.phase = other.phase;
  }
};
static_assert(AgentProtocol<JuntaPhaseClock>);

/// Plant the first `j` agents of `sim` as junta members.
inline void plant_junta(AgentSimulation<JuntaPhaseClock>& sim, std::uint64_t j) {
  POPS_REQUIRE(j >= 1 && j <= sim.population_size(), "junta size out of range");
  for (std::uint64_t i = 0; i < j; ++i) sim.set_state(i, JuntaPhaseClock::make_junta_member());
}

/// Maximum phase advances recorded by any junta member.
inline std::uint64_t max_junta_increments(const AgentSimulation<JuntaPhaseClock>& sim) {
  std::uint64_t mx = 0;
  for (const auto& a : sim.agents()) {
    if (a.junta) mx = std::max(mx, a.increments);
  }
  return mx;
}

}  // namespace pops
