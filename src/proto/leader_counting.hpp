// Leader-driven uniform terminating exact counting (paper Section 1.2,
// modeled on Michail [32]).
//
// With a pre-elected leader, uniform *terminating* computation is possible —
// the contrast that makes Theorem 4.1's density hypothesis essential.  The
// leader marks agents as it meets them and counts the marks; it decides it
// has seen everyone after a stretch of f(c) = ceil(idle_factor · c · ln(c+2))
// consecutive own-interactions producing no new mark, where c is its current
// count.  f depends only on the leader's own observations, never on n, so the
// protocol is uniform; because (1 − u/n)^{f(c)} is polynomially small when
// u >= 1 agents remain unmarked and c = n − u, the count at termination is
// exactly n w.h.p.  Expected time Θ(n log n) — coupon collector through the
// leader's ~2 interactions per time unit.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/agent_simulation.hpp"

namespace pops {

struct LeaderCounting {
  double idle_factor = 8.0;  ///< α in f(c) = ceil(α · c · ln(c+2))

  struct State {
    bool leader = false;
    bool marked = false;
    bool terminated = false;
    std::uint64_t count = 0;  ///< leader only: number of marked agents (incl. self)
    std::uint64_t idle = 0;   ///< leader only: own-interactions since last new mark
  };

  /// All agents start unmarked and leaderless; plant the leader with
  /// `make_leader` via AgentSimulation::set_state.
  State initial(Rng&) const { return State{}; }

  static State make_leader() {
    State s;
    s.leader = true;
    s.marked = true;
    s.count = 1;
    return s;
  }

  void interact(State& receiver, State& sender, Rng&) const {
    step_leader(receiver, sender);
    step_leader(sender, receiver);
    // Termination signal spreads by epidemic.
    if (receiver.terminated || sender.terminated) {
      receiver.terminated = true;
      sender.terminated = true;
    }
  }

  /// Threshold of idle own-interactions at count c before the leader declares
  /// the census complete.
  std::uint64_t idle_threshold(std::uint64_t c) const {
    return static_cast<std::uint64_t>(
        std::ceil(idle_factor * static_cast<double>(c) * std::log(static_cast<double>(c) + 2.0)));
  }

 private:
  void step_leader(State& me, State& other) const {
    if (!me.leader || me.terminated) return;
    if (!other.marked) {
      other.marked = true;
      ++me.count;
      me.idle = 0;
    } else {
      ++me.idle;
      if (me.idle >= idle_threshold(me.count)) me.terminated = true;
    }
  }
};
static_assert(AgentProtocol<LeaderCounting>);

}  // namespace pops
