// The paper's leaderless phase clock (Sections 1.1 and 3.1).
//
// Unlike the junta/leader clocks of [3, 9, 35], this clock is trivially
// uniform: every agent simply counts its own interactions and compares the
// count against a threshold f(s) derived from a weak size estimate s
// (f(s) = c·s with c chosen via Lemma 3.6 so that, w.h.p., no agent crosses
// the threshold before the current stage's epidemic has completed).  The
// first agent over the threshold advances the stage; the new stage index
// spreads by epidemic and resets counters.
//
// `StageClock` is the per-agent component; protocols that embed it decide
// what "a stage begins" means via their own hooks.
#pragma once

#include <cstdint>

namespace pops {

struct StageClock {
  std::uint32_t stage = 0;
  std::uint64_t counter = 0;

  void reset() {
    stage = 0;
    counter = 0;
  }

  /// Count one own-interaction; advance the stage when the threshold is hit.
  /// Returns true when this tick advanced the stage.
  bool tick(std::uint64_t threshold) {
    ++counter;
    if (counter >= threshold) {
      ++stage;
      counter = 0;
      return true;
    }
    return false;
  }

  /// Adopt `other`'s stage if it is ahead.  Returns true when this call
  /// advanced the stage (the caller should then restart its stage-local work).
  bool catch_up(const StageClock& other) {
    if (other.stage > stage) {
      stage = other.stage;
      counter = 0;
      return true;
    }
    return false;
  }
};

}  // namespace pops
