// The Alistarh–Aspnes–Eisenstat–Gelashvili–Rivest baseline estimator
// (paper Section 1.2, "Approximate size estimation", reference [2]).
//
// Every agent draws one 1/2-geometric random variable and the population
// propagates the maximum by epidemic.  In O(log n) time all agents hold
// k = max_i G_i, and (Corollary A.2 / Lemma D.7 with perfectly random bits)
//     log n − log ln n  <=  k  <=  2 log n      w.p. >= 1 − O(1)/n,
// i.e. sqrt-ish multiplicative accuracy: sqrt(n)/ln n <= 2^k <= n².  The main
// protocol of the paper uses this as its first stage (the logSize2 variable)
// and then sharpens the multiplicative error to an additive one.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/agent_simulation.hpp"

namespace pops {

struct MaxGeometricEstimate {
  struct State {
    std::uint32_t estimate = 0;  ///< current max-of-geometrics known
  };

  /// Uniform initialization: the draw happens identically in every agent.
  State initial(Rng& rng) const { return State{rng.geometric_fair()}; }

  void interact(State& receiver, State& sender, Rng&) const {
    const std::uint32_t m = std::max(receiver.estimate, sender.estimate);
    receiver.estimate = m;
    sender.estimate = m;
  }

};
static_assert(AgentProtocol<MaxGeometricEstimate>);

/// True when every agent holds the same estimate (converged).
inline bool converged(const AgentSimulation<MaxGeometricEstimate>& sim) {
  const auto& agents = sim.agents();
  for (const auto& a : agents) {
    if (a.estimate != agents.front().estimate) return false;
  }
  return true;
}

}  // namespace pops
