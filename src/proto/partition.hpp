// Partition-Into-A/S (paper Subprotocol 2) as a standalone protocol.
//
// Agents start role-less (X) and split into two nearly equal groups:
//     X,X → A,S        (sender becomes A, receiver S)
//     A,X → A,S        (receiver becomes S)
//     S,X → S,A        (receiver becomes A)
// The first rule alone needs Θ(n) time; the catch-up rules bring completion to
// O(log n) at the cost of an O(sqrt(n ln n)) deviation from n/2 (Lemma 3.2:
// Pr[| |A| − n/2 | >= a] <= 2 e^{−2a²/n}; Corollary 3.3: |A| ∈ [n/3, 2n/3]
// w.p. >= 1 − e^{−n/18}).
#pragma once

#include <cstdint>
#include <string>

#include "compile/intern.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/finite_spec.hpp"

namespace pops {

enum class Role : std::uint8_t { X = 0, A = 1, S = 2 };

/// FiniteSpec form (for the fast count simulator).  Receiver listed first.
inline FiniteSpec partition_spec() {
  FiniteSpec spec;
  spec.add("X", "X", "S", "A");  // sen.role <- A, rec.role <- S
  spec.add("X", "A", "S", "A");  // sen = A, rec = X: rec <- S
  spec.add("X", "S", "A", "S");  // sen = S, rec = X: rec <- A
  return spec;
}

/// Agent-level form, reused verbatim inside Log-Size-Estimation.
struct PartitionProtocol {
  struct State {
    Role role = Role::X;
  };

  template <RandomSource R>
  State initial(R&) const {
    return State{};
  }

  template <RandomSource R>
  void interact(State& receiver, State& sender, R&) const {
    if (sender.role == Role::X && receiver.role == Role::X) {
      sender.role = Role::A;
      receiver.role = Role::S;
    } else if (sender.role == Role::A && receiver.role == Role::X) {
      receiver.role = Role::S;
    } else if (sender.role == Role::S && receiver.role == Role::X) {
      receiver.role = Role::A;
    }
  }

  /// Canonical label — matches the state names of `partition_spec()`, so the
  /// compiled form round-trips onto the hand-written spec exactly.
  std::string state_label(const State& s) const {
    return s.role == Role::X ? "X" : (s.role == Role::A ? "A" : "S");
  }

  void saturate(State&, std::uint32_t) const {}

  /// Typed interning key (compile/intern.hpp).
  void state_key(const State& s, StateKeyBuf& key) const {
    key.push(static_cast<std::uint64_t>(s.role));
  }
};
static_assert(AgentProtocol<PartitionProtocol>);

}  // namespace pops
