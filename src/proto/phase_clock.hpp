// Leader-driven phase clock (Angluin, Aspnes, Eisenstat [9]; paper §3.4).
//
// Agents carry a phase in {0, ..., m−1}.  A follower adopts the other party's
// phase when it is "ahead" by a circular distance in [1, m/2].  The leader
// advances its own phase by one when it meets an agent at its own phase —
// i.e. only after the phase it announced has spread back to it, which takes
// Θ(log n) time w.h.p. (the epidemic must reach a constant fraction before
// the leader is likely to sample it).  Both parties react to the *pre-
// interaction* state of the other, as in the population-protocol model.
//
// The leader's `increments` counter is the paper's timer: Theorem 3.13 sets
// a phase budget of k2 · 5 · logSize2 phases, giving a Θ(log² n) timer that
// outlasts the estimation protocol w.h.p.
#pragma once

#include <cstdint>

#include "sim/agent_simulation.hpp"
#include "sim/require.hpp"

namespace pops {

struct LeaderPhaseClock {
  std::uint32_t num_phases = 300;  ///< m; Theorem 3.13 uses m > 288

  struct State {
    bool leader = false;
    std::uint32_t phase = 0;
    std::uint64_t increments = 0;  ///< leader: total phase advances
  };

  State initial(Rng&) const { return State{}; }

  static State make_leader() {
    State s;
    s.leader = true;
    return s;
  }

  void interact(State& receiver, State& sender, Rng&) const {
    // Transitions read the other party's pre-interaction state.
    const State receiver_before = receiver;
    const State sender_before = sender;
    step(receiver, sender_before);
    step(sender, receiver_before);
  }

 private:
  void step(State& me, const State& other) const {
    const std::uint32_t m = num_phases;
    if (me.leader) {
      if (other.phase == me.phase) {
        me.phase = (me.phase + 1) % m;
        ++me.increments;
      }
      return;
    }
    // Follower: catch up if other is ahead within half the circle.
    const std::uint32_t ahead = (other.phase + m - me.phase) % m;
    if (ahead >= 1 && ahead <= m / 2) me.phase = other.phase;
  }
};
static_assert(AgentProtocol<LeaderPhaseClock>);

}  // namespace pops
