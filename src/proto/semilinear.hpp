// Classic constant-state predicate protocols (the semilinear predicates of
// Angluin et al. [7, 8], the computational context of the paper's Sections 1
// and 2).
//
// All problems computable with zero error by constant-state protocols are the
// semilinear predicates, computable in O(n) time [9, 26]; the paper's whole
// motivation is beating that with polylog-time, ω(1)-state protocols.  These
// specs provide the canonical members of the class — used by tests (their
// stable correctness is checkable exhaustively with sim/reachability.hpp), by
// benches as Θ(n)-time contrast points, and as FiniteSpec exercise for the
// count simulator.
//
// Output convention: Boolean output is carried by every agent (paper §2.1);
// states are named "<role><output>" and `output_of` extracts the bit.
#pragma once

#include <string>

#include "sim/finite_spec.hpp"
#include "sim/require.hpp"

namespace pops {

/// Threshold predicate [x >= c] for constant c: leaders aggregate the count
/// of x-tokens up to c.  States: L<k> (leader holding k tokens, output k>=c),
/// F0/F1 (followers echoing the current leader output).  Transitions:
///   L<i>, L<j> -> L<min(i+j, c)>, F<out>      (merge token counts)
///   F*,  L<i>  -> F<[i>=c]>, L<i>             (followers adopt output)
/// Every agent starts as L1 (carrying its own token) or L0 (input 0).
inline FiniteSpec threshold_spec(std::uint32_t c) {
  POPS_REQUIRE(c >= 1, "threshold must be at least 1");
  FiniteSpec spec;
  auto leader = [&](std::uint32_t k) { return "L" + std::to_string(k); };
  auto follower = [](bool out) { return out ? std::string("F1") : std::string("F0"); };
  for (std::uint32_t i = 0; i <= c; ++i) {
    for (std::uint32_t j = 0; j <= c; ++j) {
      const std::uint32_t merged = std::min(i + j, c);
      spec.add(leader(i), leader(j), leader(merged), follower(merged >= c));
    }
    for (const bool out : {false, true}) {
      spec.add(follower(out), leader(i), follower(i >= c), leader(i));
      spec.add(leader(i), follower(out), leader(i), follower(i >= c));
    }
  }
  return spec;
}

/// Parity predicate [sum of inputs odd]: the classic mod-2 protocol.  Leaders
/// carry a bit and merge by XOR; followers echo.
inline FiniteSpec parity_spec() {
  FiniteSpec spec;
  auto leader = [](int b) { return "L" + std::to_string(b); };
  auto follower = [](int b) { return "F" + std::to_string(b); };
  for (int i : {0, 1}) {
    for (int j : {0, 1}) {
      spec.add(leader(i), leader(j), leader(i ^ j), follower(i ^ j));
    }
    for (int b : {0, 1}) {
      spec.add(follower(b), leader(i), follower(i), leader(i));
      spec.add(leader(i), follower(b), leader(i), follower(i));
    }
  }
  return spec;
}

/// The 3-state approximate-majority protocol (Angluin, Aspnes, Eisenstat):
//      x, y -> b, b     (clash: both blank... classic form x,y -> x,b)
///     x, y -> x, b ;  y, x -> y, b ;  x, b -> x, x ;  y, b -> y, y
/// O(log n) time w.h.p., correct w.h.p. for sqrt(n log n) majority gaps —
/// the constant-state *approximate* counterpart of the exact majority the
/// composition demo builds.
inline FiniteSpec approximate_majority_spec() {
  FiniteSpec spec;
  spec.add("x", "y", "x", "b");
  spec.add("y", "x", "y", "b");
  spec.add("b", "x", "x", "x");
  spec.add("b", "y", "y", "y");
  spec.add("x", "b", "x", "x");
  spec.add("y", "b", "y", "y");
  return spec;
}

/// True output bit of a threshold/parity state name ("L3"/"F1"-style), given
/// the predicate's evaluation embedded in the name by the factories above.
inline bool output_of(const FiniteSpec& spec, std::uint32_t state, std::uint32_t threshold) {
  const std::string& name = spec.name(state);
  if (name[0] == 'F') return name[1] == '1';
  return static_cast<std::uint32_t>(std::stoul(name.substr(1))) >= threshold;
}

}  // namespace pops
