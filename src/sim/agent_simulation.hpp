// Agent-level population-protocol simulator.
//
// The model (paper, Section 2): n agents; repeatedly an ordered pair of
// distinct agents (receiver, sender) is chosen uniformly at random and both
// run the transition algorithm on the pair of states they were in before the
// interaction.  Parallel time = interactions / n.
//
// `AgentSimulation<P>` works for any protocol satisfying the `AgentProtocol`
// concept below.  It is the right tool for protocols whose state space grows
// with n (such as Log-Size-Estimation, whose fields range over Θ(polylog n)
// values); for constant-state protocols prefer `CountSimulation`.
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "sim/require.hpp"
#include "sim/rng.hpp"

namespace pops {

/// A population protocol at the agent level.
///
/// * `State` is a value type holding one agent's memory (the working tape of
///   the paper's TM formalization).
/// * `initial(rng)` returns the state every agent starts in.  Leaderless
///   protocols (paper, Section 3) must not consume randomness that
///   distinguishes agents here; protocols with an initial leader use
///   `AgentSimulation::set_state` to plant the leader.
/// * `interact(receiver, sender, rng)` applies one transition in place.  The
///   paper's randomized model (transition relation delta ⊆ Λ^4) is realized by
///   letting the transition consume random bits.
template <typename P>
concept AgentProtocol =
    std::copyable<typename P::State> && requires(const P proto, typename P::State& receiver,
                                                 typename P::State& sender, Rng& rng) {
      { proto.initial(rng) } -> std::same_as<typename P::State>;
      { proto.interact(receiver, sender, rng) };
    };

template <AgentProtocol P>
class AgentSimulation {
 public:
  using State = typename P::State;

  AgentSimulation(P protocol, std::uint64_t n, std::uint64_t seed)
      : protocol_(std::move(protocol)), rng_(seed) {
    POPS_REQUIRE(n >= 2, "a population needs at least two agents to interact");
    agents_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) agents_.push_back(protocol_.initial(rng_));
  }

  std::uint64_t population_size() const { return agents_.size(); }
  std::uint64_t interactions() const { return interactions_; }

  /// Parallel time elapsed: interactions / n (paper, Section 2).
  double time() const {
    return static_cast<double>(interactions_) / static_cast<double>(agents_.size());
  }

  const std::vector<State>& agents() const { return agents_; }
  const State& agent(std::uint64_t i) const { return agents_.at(i); }

  /// Overwrite one agent's state before the run starts (e.g. plant a leader).
  void set_state(std::uint64_t i, const State& s) { agents_.at(i) = s; }

  const P& protocol() const { return protocol_; }
  Rng& rng() { return rng_; }

  /// Execute one interaction between a uniformly random ordered pair.
  void step() {
    const auto [r, s] = rng_.ordered_pair(agents_.size());
    protocol_.interact(agents_[r], agents_[s], rng_);
    ++interactions_;
  }

  /// Execute `k` interactions.
  void steps(std::uint64_t k) {
    // Hoist the hot loop: direct indexing, no bounds re-checking.
    const std::uint64_t n = agents_.size();
    State* const a = agents_.data();
    for (std::uint64_t i = 0; i < k; ++i) {
      const auto [r, s] = rng_.ordered_pair(n);
      protocol_.interact(a[r], a[s], rng_);
    }
    interactions_ += k;
  }

  /// Advance simulated parallel time by `dt` units (n * dt interactions).
  void advance_time(double dt) {
    POPS_REQUIRE(dt >= 0.0, "advance_time needs dt >= 0");
    steps(static_cast<std::uint64_t>(dt * static_cast<double>(agents_.size())));
  }

  /// Run until `done(sim)` holds, checking every `check_dt` units of parallel
  /// time, giving up after `max_time`.  Returns the parallel time at the first
  /// successful check, or a negative value if the cap was hit.
  template <typename Pred>
  double run_until(Pred&& done, double check_dt = 1.0, double max_time = 1e12) {
    POPS_REQUIRE(check_dt > 0.0, "run_until needs check_dt > 0");
    while (time() < max_time) {
      if (done(*this)) return time();
      advance_time(check_dt);
    }
    return done(*this) ? time() : -1.0;
  }

 private:
  P protocol_;
  std::vector<State> agents_;
  Rng rng_;
  std::uint64_t interactions_ = 0;
};

}  // namespace pops
