// Batched count-based simulator: Θ(√n) interactions per RNG epoch.
//
// The paper measures protocols in parallel time (= interactions / n), so its
// convergence figures at n = 10⁸–10¹² need Θ(n polylog n) interactions per
// trial — hopeless at O(log S) Fenwick work per interaction.  This simulator
// uses the batching technique of ppsim (Doty–Severson, CMSB 2021; cf.
// Berenbrink et al., "Simulating Population Protocols in Sub-Constant Time
// per Interaction"): between two interactions that touch the same agent,
// interactions commute, so the chain can be advanced in collision-free
// batches whose length follows the birthday distribution — expected
// Θ(√n) interactions per epoch — with each batch applied by count arithmetic.
//
// One epoch, exactly distribution-preserving w.r.t. the sequential chain:
//   1. Sample L = index of the first interaction that reuses an agent
//      ("collision"), via inversion of the birthday survival function
//      P(L > t) = (n)_{2t} / (n(n-1))^t  (binary search, O(log n) evals).
//   2. The 2(L−1) agents of the collision-free prefix are a uniform sample
//      without replacement from the configuration: draw the receiver and
//      sender state multisets by multivariate hypergeometric, pair them by
//      a sequentially-sampled contingency table, and apply every transition
//      by count arithmetic (randomized transitions split by binomial draws).
//   3. Resolve the single colliding interaction exactly: the repeated agent
//      is uniform among the 2(L−1) touched agents (whose post-batch states
//      are known as a multiset), its partner uniform among touched/untouched
//      pools with the exact conditional weights.
//
// Truncating an epoch after a fixed number of interactions is also exact —
// whether a prefix is collision-free depends only on agent identities, which
// are independent of agent states — so `steps(k)` advances exactly k
// interactions and the `step/steps/advance_time/run_until` API matches
// `CountSimulation` precisely; every experiment can switch simulators with a
// template parameter.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sim/dispatch.hpp"
#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "sim/rng.hpp"
#include "sim/weighted_sampler.hpp"
#include "stats/discrete.hpp"

namespace pops {

class BatchedCountSimulation {
 public:
  BatchedCountSimulation(FiniteSpec spec, std::uint64_t seed)
      : spec_(std::move(spec)), rng_(seed) {
    spec_.validate();
    dispatch_ = DispatchTable(spec_);
    const std::uint32_t s = spec_.num_states();
    counts_.assign(s, 0);
    touched_.assign(s, 0);
    recv_.assign(s, 0);
    send_.assign(s, 0);
    occupied_send_.reserve(s);
    send_sampler_.resize(s);
    cell_accum_.assign(s, 0);
    cell_touched_.reserve(s);
  }

  /// Reset to an empty configuration with a fresh seed, reusing the compiled
  /// dispatch table.  For multi-trial experiments on compiled specs the
  /// CSR build (millions of entries) dwarfs a trial, so trials reseed one
  /// simulator instead of constructing one each.
  void reset(std::uint64_t seed) {
    rng_.reseed(seed);
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    interactions_ = 0;
  }

  /// Set the initial count of a state (before stepping).
  void set_count(const std::string& state, std::uint64_t count) {
    set_count(spec_.id(state), count);
  }
  void set_count(std::uint32_t state, std::uint64_t count) {
    total_ = total_ - counts_.at(state) + count;
    counts_.at(state) = count;
  }

  std::uint64_t count(const std::string& state) const {
    return spec_.has_state(state) ? counts_[spec_.id(state)] : 0;
  }
  std::uint64_t count(std::uint32_t state) const { return counts_.at(state); }
  std::uint64_t population_size() const { return total_; }
  std::uint64_t interactions() const { return interactions_; }
  const FiniteSpec& spec() const { return spec_; }

  double time() const {
    return static_cast<double>(interactions_) / static_cast<double>(total_);
  }

  /// One interaction (an epoch truncated to length 1 — still exact).
  void step() { steps(1); }

  /// Advance exactly `k` interactions.  steps(0) is a no-op, as in
  /// CountSimulation.
  void steps(std::uint64_t k) {
    if (k == 0) return;
    POPS_REQUIRE(total_ >= 2, "population too small to interact");
    while (k > 0) k -= epoch(k);
  }

  void advance_time(double dt) {
    POPS_REQUIRE(dt >= 0.0, "advance_time needs dt >= 0");
    steps(static_cast<std::uint64_t>(dt * static_cast<double>(total_)));
  }

  template <typename Pred>
  double run_until(Pred&& done, double check_dt = 1.0, double max_time = 1e12) {
    POPS_REQUIRE(check_dt > 0.0, "run_until needs check_dt > 0");
    while (time() < max_time) {
      if (done(*this)) return time();
      advance_time(check_dt);
    }
    return done(*this) ? time() : -1.0;
  }

  /// Snapshot of all counts, indexed by state id.
  std::vector<std::uint64_t> counts() const { return counts_; }

 private:
  // ------------------------------------------------------------ epochs ----

  /// Run one epoch, bounded by `budget` interactions; returns how many
  /// interactions were executed (>= 1).
  std::uint64_t epoch(std::uint64_t budget) {
    const std::uint64_t n = total_;
    const std::uint64_t tmax = n / 2;  // longest possible collision-free run
    if (budget == 1) {  // a single interaction is always a collision-free prefix
      run_batch(1, /*keep_split=*/false);
      return 1;
    }
    const double u = rng_.uniform_double();
    if (u <= 0.0) {  // measure-zero guard: collision arbitrarily late
      const std::uint64_t t = std::min(budget, tmax);
      run_batch(t, /*keep_split=*/false);
      return t;
    }
    const double log_u = std::log(u);
    if (budget <= tmax && log_survival(budget) >= log_u) {
      // First collision falls beyond the budget: the prefix we need is
      // collision-free, and truncation is exact (see header comment).
      run_batch(budget, /*keep_split=*/false);
      return budget;
    }
    // Binary search the smallest t with P(L > t) < u; the collision is
    // interaction t, preceded by t-1 collision-free interactions.
    std::uint64_t lo = 1, hi = std::min(budget, tmax + 1);
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (log_survival(mid) < log_u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    // P(L > 1) = 1, so lo >= 2 up to floating-point noise in log_survival;
    // clamp so the batch is never empty (budget >= 2 here, so batch + 1 fits).
    const std::uint64_t batch = std::max<std::uint64_t>(lo, 2) - 1;
    run_batch(batch, /*keep_split=*/true);
    resolve_collision(batch);
    return batch + 1;
  }

  /// log P(L > t): probability that t interactions in a row reuse no agent,
  /// i.e. the falling factorial (n)_{2t} / (n(n-1))^t.  For large n this is
  /// evaluated by a truncated log1p series with closed-form power sums (the
  /// lgamma difference would cancel catastrophically); for small n, by
  /// lgamma directly.
  double log_survival(std::uint64_t t) const {
    const std::uint64_t n = total_;
    if (2 * t > n) return -std::numeric_limits<double>::infinity();
    const double dn = static_cast<double>(n);
    const double dt = static_cast<double>(t);
    if (n < 1000000) {
      return std::lgamma(dn + 1.0) - std::lgamma(dn - 2.0 * dt + 1.0) -
             dt * (std::log(dn) + std::log(dn - 1.0));
    }
    // sum_{j=0}^{2t-1} log1p(-j/n) - t*log1p(-1/n), with
    // sum log1p(-j/n) ~ -(S1/n + S2/(2n^2) + S3/(3n^3) + S4/(4n^4)).
    // Truncation error is negligible where the value can affect the
    // comparison against log(u) >= log(2^-53) ~ -36.7.
    const double m = 2.0 * dt;
    const double s1 = m * (m - 1.0) / 2.0;
    const double s2 = (m - 1.0) * m * (2.0 * m - 1.0) / 6.0;
    const double s3 = s1 * s1;
    const double s4 = s2 * (3.0 * m * m - 3.0 * m - 1.0) / 5.0;
    const double series = -(s1 / dn + s2 / (2.0 * dn * dn) +
                            s3 / (3.0 * dn * dn * dn) +
                            s4 / (4.0 * dn * dn * dn * dn));
    return series - dt * std::log1p(-1.0 / dn);
  }

  // ------------------------------------------------------- batch moves ----

  /// Sample and apply `t` collision-free interactions by count arithmetic.
  /// If `keep_split` is set, the configuration is left split across
  /// `counts_` (untouched agents) and `touched_` (post-batch states of the
  /// 2t touched agents) for collision resolution; otherwise it is merged.
  void run_batch(std::uint64_t t, bool keep_split) {
    const std::uint32_t s = spec_.num_states();
    std::fill(touched_.begin(), touched_.end(), 0);
    // Receiver and sender state multisets: uniform without replacement.
    draw_without_replacement(t, recv_);
    draw_without_replacement(t, send_);
    // Compiled specs have thousands of states, of which a batch occupies at
    // most min(t, S); the pairing below must iterate occupied classes, not
    // the full state range.
    occupied_send_.clear();
    std::uint64_t occupied_recv = 0;
    for (std::uint32_t j = 0; j < s; ++j) {
      if (send_[j] != 0) occupied_send_.push_back(j);
      if (recv_[j] != 0) ++occupied_recv;
    }
    // Pair receivers with senders: a uniform bipartite matching, realized as
    // a sequentially-sampled contingency table (each receiver class takes
    // its share of the remaining sender pool; receiver classes are
    // exchangeable, so conditioning row by row is exact).  Two equivalent
    // samplers with opposite cost profiles:
    //   * dense — one hypergeometric per (receiver class, sender class):
    //     O(occ_r · occ_s) rejection draws.  Wins when the batch is huge
    //     relative to the occupied grid (early dynamics, n ≳ 10^11).
    //   * individual — draw each of the t senders by Fenwick descent on the
    //     sender multiset: O(t log S).  Wins when a many-state compiled spec
    //     saturates its occupancy (occ_r · occ_s ≫ t), where the dense scan
    //     would spend ~20 hypergeometric draws per realized interaction.
    // The ~5x factor below is the measured cost ratio of a rejection draw
    // vs a Fenwick walk.
    if (5 * t < occupied_recv * occupied_send_.size()) {
      pair_individual(t);
    } else {
      pair_dense(t);
    }
    interactions_ += t;
    if (!keep_split) merge_touched();
  }

  /// Dense contingency-table pairing: hypergeometric share per cell.
  void pair_dense(std::uint64_t t) {
    const std::uint32_t s = spec_.num_states();
    std::uint64_t send_total = t;
    for (std::uint32_t i = 0; i < s; ++i) {
      std::uint64_t need = recv_[i];
      if (need == 0) continue;
      std::uint64_t pool = send_total;
      for (const std::uint32_t j : occupied_send_) {
        if (need == 0) break;
        if (send_[j] == 0) {
          continue;
        }
        const std::uint64_t d = hypergeometric(rng_, pool, send_[j], need);
        pool -= send_[j];
        if (d > 0) {
          send_[j] -= d;
          need -= d;
          send_total -= d;
          apply_cell(i, j, d);
        }
      }
    }
  }

  /// Individual pairing: each receiver slot draws its sender uniformly
  /// without replacement from the remaining multiset (Fenwick descent),
  /// accumulating per-cell counts so randomized cells still split in bulk.
  void pair_individual(std::uint64_t /*t*/) {
    const std::uint32_t s = spec_.num_states();
    send_sampler_.rebuild(send_);
    for (std::uint32_t i = 0; i < s; ++i) {
      std::uint64_t need = recv_[i];
      if (need == 0) continue;
      cell_touched_.clear();
      while (need-- > 0) {
        const auto j = static_cast<std::uint32_t>(send_sampler_.sample(rng_));
        send_sampler_.add(j, -1);
        if (cell_accum_[j]++ == 0) cell_touched_.push_back(j);
      }
      for (const std::uint32_t j : cell_touched_) {
        apply_cell(i, j, cell_accum_[j]);
        cell_accum_[j] = 0;
      }
    }
    std::fill(send_.begin(), send_.end(), 0);  // all senders consumed
  }

  /// Draw `t` agents without replacement from `counts_` into `out`
  /// (multivariate hypergeometric) and remove them from `counts_`.
  void draw_without_replacement(std::uint64_t t, std::vector<std::uint64_t>& out) {
    multivariate_hypergeometric(rng_, counts_, t, out);
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] -= out[i];
  }

  /// Apply `d` simultaneous interactions with input pair (i, j), appending
  /// the output states to the touched multiset.  Randomized cells split `d`
  /// across their transitions (plus the residual null) by binomial draws.
  void apply_cell(std::uint32_t i, std::uint32_t j, std::uint64_t d) {
    const std::size_t cell = dispatch_.cell(i, j);
    switch (dispatch_.kind(cell)) {
      case DispatchTable::CellKind::kNull:
        touched_[i] += d;
        touched_[j] += d;
        return;
      case DispatchTable::CellKind::kDeterministic: {
        const auto& e = dispatch_.only(cell);
        touched_[e.out_receiver] += d;
        touched_[e.out_sender] += d;
        return;
      }
      case DispatchTable::CellKind::kRandomized: {
        std::uint64_t rem = d;
        double rest = 1.0;
        for (const auto* e = dispatch_.begin(cell);
             e != dispatch_.end(cell) && rem > 0; ++e) {
          const double p = std::min(1.0, std::max(0.0, e->rate / rest));
          const std::uint64_t k = binomial(rng_, rem, p);
          touched_[e->out_receiver] += k;
          touched_[e->out_sender] += k;
          rem -= k;
          rest -= e->rate;
        }
        touched_[i] += rem;  // residual mass: null transitions
        touched_[j] += rem;
        return;
      }
    }
  }

  void merge_touched() {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += touched_[i];
  }

  // ------------------------------------------------------- collisions ----

  /// Execute the colliding interaction exactly.  After a kept-split batch of
  /// `batch` interactions, `touched_` holds the 2*batch post-batch states and
  /// `counts_` the untouched agents.  Conditioned on being the first
  /// collision, the ordered pair is uniform over ordered distinct pairs that
  /// are not untouched-untouched; with T = 2*batch touched and U untouched
  /// agents the three cases have weights T·U, U·T, T·(T−1) — T divides out,
  /// leaving U : U : T−1.
  void resolve_collision(std::uint64_t batch) {
    const std::uint64_t touched_total = 2 * batch;
    const std::uint64_t untouched_total = total_ - touched_total;
    std::uint64_t t_pool = touched_total;
    std::uint64_t u_pool = untouched_total;
    const std::uint64_t x = rng_.below(2 * untouched_total + touched_total - 1);
    std::uint32_t r_state, s_state;
    if (x < untouched_total) {  // receiver touched, sender untouched
      r_state = draw_one(touched_, t_pool);
      s_state = draw_one(counts_, u_pool);
    } else if (x < 2 * untouched_total) {  // receiver untouched, sender touched
      r_state = draw_one(counts_, u_pool);
      s_state = draw_one(touched_, t_pool);
    } else {  // both touched (two distinct touched agents)
      r_state = draw_one(touched_, t_pool);
      s_state = draw_one(touched_, t_pool);
    }
    const auto [out_r, out_s] = resolve_transition(r_state, s_state);
    ++touched_[out_r];
    ++touched_[out_s];
    ++interactions_;
    merge_touched();
  }

  /// Remove and return one uniform agent from the multiset `pool` of total
  /// size `pool_total` (linear scan: S is small).
  std::uint32_t draw_one(std::vector<std::uint64_t>& pool, std::uint64_t& pool_total) {
    std::uint64_t slot = rng_.below(pool_total);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (slot < pool[i]) {
        --pool[i];
        --pool_total;
        return static_cast<std::uint32_t>(i);
      }
      slot -= pool[i];
    }
    POPS_REQUIRE(false, "corrupt multiset in collision draw");
    return 0;  // unreachable
  }

  /// Outcome of a single (receiver, sender) interaction, consuming the rate
  /// draw only for randomized cells.
  std::pair<std::uint32_t, std::uint32_t> resolve_transition(std::uint32_t r,
                                                             std::uint32_t s) {
    const std::size_t cell = dispatch_.cell(r, s);
    switch (dispatch_.kind(cell)) {
      case DispatchTable::CellKind::kNull:
        return {r, s};
      case DispatchTable::CellKind::kDeterministic: {
        const auto& e = dispatch_.only(cell);
        return {e.out_receiver, e.out_sender};
      }
      case DispatchTable::CellKind::kRandomized: {
        const auto* e = dispatch_.pick(cell, rng_.uniform_double());
        if (e != nullptr) return {e->out_receiver, e->out_sender};
        return {r, s};  // residual: null transition
      }
    }
    return {r, s};
  }

  FiniteSpec spec_;
  Rng rng_;
  DispatchTable dispatch_;
  std::vector<std::uint64_t> counts_;  ///< configuration vector
  std::uint64_t total_ = 0;
  std::uint64_t interactions_ = 0;
  // Per-epoch scratch (preallocated; hot path does no allocation).
  std::vector<std::uint64_t> touched_, recv_, send_;
  std::vector<std::uint32_t> occupied_send_;
  WeightedSampler send_sampler_;
  std::vector<std::uint64_t> cell_accum_;
  std::vector<std::uint32_t> cell_touched_;
};

}  // namespace pops
