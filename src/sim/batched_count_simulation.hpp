// Batched count-based simulator: Θ(√n) interactions per RNG epoch.
//
// The paper measures protocols in parallel time (= interactions / n), so its
// convergence figures at n = 10⁸–10¹² need Θ(n polylog n) interactions per
// trial — hopeless at O(log S) Fenwick work per interaction.  This simulator
// uses the batching technique of ppsim (Doty–Severson, CMSB 2021; cf.
// Berenbrink et al., "Simulating Population Protocols in Sub-Constant Time
// per Interaction"): between two interactions that touch the same agent,
// interactions commute, so the chain can be advanced in collision-free
// batches whose length follows the birthday distribution — expected
// Θ(√n) interactions per epoch — with each batch applied by count arithmetic.
//
// One epoch, exactly distribution-preserving w.r.t. the sequential chain:
//   1. Sample L = index of the first interaction that reuses an agent
//      ("collision"), via inversion of the birthday survival function
//      P(L > t) = (n)_{2t} / (n(n-1))^t  (binary search, O(log n) evals).
//   2. The 2(L−1) agents of the collision-free prefix are a uniform sample
//      without replacement from the configuration: draw their *joint* state
//      multiset with one multivariate hypergeometric pass, split it into
//      receiver/sender multisets (the receivers are a uniform t-subset of
//      the 2t agents, so the receiver class counts are again multivariate
//      hypergeometric — one fused draw replaces the former two full-
//      configuration draws), pair them by a uniform bipartite matching, and
//      apply every transition by count arithmetic (randomized transitions
//      split by binomial draws).
//   3. Resolve the single colliding interaction exactly: the repeated agent
//      is uniform among the 2(L−1) touched agents (whose post-batch states
//      are known as a multiset), its partner uniform among touched/untouched
//      pools with the exact conditional weights.
//
// Parallel epochs: each epoch's heavy stages shard across the process-wide
// work-stealing executor (core/executor.hpp) —
//   * the fused joint draw splits into per-state-class blocks: a short
//     block-level hypergeometric chain (grouping classes is exact), then
//     each block's per-class counts and receiver split resolve on an
//     independent substream;
//   * the serial Fisher–Yates sender shuffle becomes a MergeShuffle-style
//     block shuffle (stats/blocked.hpp): `split_multiset` deals the sender
//     multiset into per-group slot quotas (the exact compositions a uniform
//     global shuffle would produce), and each group fills + shuffles +
//     consumes its own slot range;
//   * transition outputs accumulate into per-shard delta vectors, merged
//     into the configuration in shard order at the end of the stage.
// Determinism is the design center: every epoch draws from counter-based
// RNG substreams keyed (seed, epoch, stream) — sim/rng.hpp
// `substream_seed` — and the shard decomposition depends only on the
// epoch's workload (batch length, occupancy, POPS_EPOCH_SHARDS), never on
// the executor width.  A run is therefore per-seed bit-invariant at every
// width — the same contract ProtocolCompiler honors — verified at widths
// 1/2/8 under TSan by tests/test_parallel_epochs.cpp.  Nested inside
// parallel trials, shard tasks ride the same executor (help-first
// TaskGroup::wait), so trials × epochs never oversubscribe the machine.
//
// Every per-epoch structure is sparse in the *occupied* state classes — a
// persistent occupied-class list (compacted once per epoch) drives the
// hypergeometric pass, touched-class lists drive the merges, and scratch is
// cleared by id list rather than by O(S) fills — so a 10⁴–10⁵-state compiled
// spec pays for the classes it populates, not for S.  Dispatch goes through
// the sparse `DispatchTable` rows; with a `JitCompiler` source, pairs
// compile on first contact and the count vectors grow as states intern.
//
// Truncating an epoch after a fixed number of interactions is also exact —
// whether a prefix is collision-free depends only on agent identities, which
// are independent of agent states — so `steps(k)` advances exactly k
// interactions and the `step/steps/advance_time/run_until` API matches
// `CountSimulation` precisely; every experiment can switch simulators with a
// template parameter.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "sim/dispatch.hpp"
#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "sim/rng.hpp"
#include "sim/shared_dispatch.hpp"
#include "stats/blocked.hpp"
#include "stats/discrete.hpp"

namespace pops {

class BatchedCountSimulation {
 public:
  BatchedCountSimulation(FiniteSpec spec, std::uint64_t seed,
                         DispatchTable::RowLayout layout = DispatchTable::RowLayout::kAuto)
      : spec_storage_(std::move(spec)), spec_(&spec_storage_), master_seed_(seed) {
    spec_storage_.validate();
    table_storage_ = DispatchTable(spec_storage_, layout);
    dispatch_ = &table_storage_;
    init_scratch(dispatch_->num_states());
  }

  /// Lazy/JIT mode: pairs compile on first contact; `jit` must outlive the
  /// simulator (it owns the growing table and the interned state names).
  /// Multiple simulators on different threads may share one `jit` source —
  /// its table is lock-free to read and compile_pair is sharded.
  BatchedCountSimulation(JitCompiler& jit, std::uint64_t seed)
      : spec_(&jit.spec()), master_seed_(seed), jit_table_(&jit.table()), jit_(&jit) {
    init_scratch(jit_table_->num_states());
  }

  // spec_/dispatch_ point into own storage in eager mode; copies would dangle.
  BatchedCountSimulation(const BatchedCountSimulation&) = delete;
  BatchedCountSimulation& operator=(const BatchedCountSimulation&) = delete;

  /// Epoch shard ceiling: the most blocks/groups any per-epoch stage
  /// decomposes into.  Shards are *logical* — the count per stage depends
  /// only on the epoch's workload (batch length, occupancy), never on the
  /// executor width, so the substream layout (and therefore every sampled
  /// bit) is identical at any thread count; the executor merely decides how
  /// many shards run concurrently.  POPS_EPOCH_SHARDS overrides the default
  /// of 32 (clamped to [1, 63] so the per-epoch stream-index ranges stay
  /// disjoint).  Changing it selects a different — still exact — epoch
  /// decomposition, so runs are per-seed comparable only at equal shard
  /// ceilings; bench headers record it ("epoch_shards") next to
  /// executor_threads for that reason.
  static std::uint32_t max_epoch_shards() {
    static const std::uint32_t cached = [] {
      if (const char* env = std::getenv("POPS_EPOCH_SHARDS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<std::uint32_t>(std::min<long>(v, 63));
      }
      return std::uint32_t{32};
    }();
    return cached;
  }

  /// Reset to an empty configuration with a fresh seed, reusing the compiled
  /// dispatch table.  For multi-trial experiments on compiled specs the
  /// table build (millions of entries — or, lazily, the JIT warm-up) dwarfs
  /// a trial, so trials reseed one simulator instead of constructing one each.
  void reset(std::uint64_t seed) {
    master_seed_ = seed;
    epoch_index_ = 0;
    sync_states();
    for (const std::uint32_t i : occupied_) {
      counts_[i] = 0;
      in_occupied_[i] = 0;
    }
    occupied_.clear();
    total_ = 0;
    interactions_ = 0;
  }

  /// Set the initial count of a state (before stepping).
  void set_count(const std::string& state, std::uint64_t count) {
    set_count(spec_->id(state), count);
  }
  void set_count(std::uint32_t state, std::uint64_t count) {
    sync_states();
    total_ = total_ - counts_.at(state) + count;
    counts_.at(state) = count;
    if (count != 0 && !in_occupied_[state]) {
      in_occupied_[state] = 1;
      occupied_.push_back(state);
    }
  }

  std::uint64_t count(const std::string& state) const {
    return spec_->has_state(state) ? count(spec_->id(state)) : 0;
  }
  std::uint64_t count(std::uint32_t state) const {
    return state < counts_.size() ? counts_[state] : 0;
  }
  std::uint64_t population_size() const { return total_; }
  std::uint64_t interactions() const { return interactions_; }
  const FiniteSpec& spec() const { return *spec_; }

  double time() const {
    return static_cast<double>(interactions_) / static_cast<double>(total_);
  }

  /// One interaction (an epoch truncated to length 1 — still exact).
  void step() { steps(1); }

  /// Advance exactly `k` interactions.  steps(0) is a no-op, as in
  /// CountSimulation.
  void steps(std::uint64_t k) {
    if (k == 0) return;
    POPS_REQUIRE(total_ >= 2, "population too small to interact");
    // Another simulator sharing our JIT source may have interned states
    // since we last ran: its compiled cells are `present` (so our lookup
    // fallback won't fire) yet can output ids beyond our scratch vectors.
    sync_states();
    while (k > 0) k -= epoch(k);
  }

  void advance_time(double dt) {
    POPS_REQUIRE(dt >= 0.0, "advance_time needs dt >= 0");
    steps(static_cast<std::uint64_t>(dt * static_cast<double>(total_)));
  }

  template <typename Pred>
  double run_until(Pred&& done, double check_dt = 1.0, double max_time = 1e12) {
    POPS_REQUIRE(check_dt > 0.0, "run_until needs check_dt > 0");
    while (time() < max_time) {
      if (done(*this)) return time();
      advance_time(check_dt);
    }
    return done(*this) ? time() : -1.0;
  }

  /// Snapshot of all counts, indexed by state id.
  std::vector<std::uint64_t> counts() const { return counts_; }

 private:
  // --------------------------------------------------- epoch substreams ----
  // Per-epoch stream-index layout (SubstreamSeeder keyed (seed, epoch, i));
  // the ranges are disjoint for any shard ceiling <= 63:
  //   0          — root: collision search, block-level chains, dense
  //                pairing, collision resolution
  //   [1, 64)    — joint-draw class blocks
  //   [64, 192)  — split_multiset recursion-tree nodes (heap order)
  //   [256, ...) — pairing groups (fill + shuffle + transition binomials)
  static constexpr std::uint64_t kStreamRoot = 0;
  static constexpr std::uint64_t kStreamJointBase = 1;
  static constexpr std::uint64_t kStreamSplitBase = 64;
  static constexpr std::uint64_t kStreamGroupBase = 256;
  /// Minimum pairing-slot mass per shard: below this, task overhead beats
  /// the work, so small batches stay single-group (and width cannot matter).
  static constexpr std::uint64_t kMinShardSlots = 8192;
  /// Minimum occupied classes per joint-draw block, for the same reason
  /// (one hypergeometric draw per class is the unit of work there).
  static constexpr std::uint32_t kMinShardClasses = 256;

  /// Per-shard scratch: transition-output deltas (merged into the
  /// configuration in shard order — determinism needs no atomics), plus the
  /// pairing cell accumulator and the joint-draw block's drawn-id list.
  struct ShardScratch {
    std::vector<std::uint64_t> delta;
    std::vector<std::uint32_t> delta_ids;  ///< touch order
    std::vector<std::uint64_t> cell_accum;
    std::vector<std::uint32_t> cell_touched;
    std::vector<std::uint32_t> joint_ids;

    /// Shard-local touch: grows only this shard's delta vector when a JIT
    /// compile on another shard interned states mid-epoch (the shared
    /// scratch must not resize while shards run — sync happens at the next
    /// serial point).
    void touch(std::uint32_t state, std::uint64_t d) {
      if (d == 0) return;
      if (state >= delta.size()) [[unlikely]] delta.resize(state + 1, 0);
      if (delta[state] == 0) delta_ids.push_back(state);
      delta[state] += d;
    }
  };

  /// Run fn(0) .. fn(blocks-1), over the executor when it has width (the
  /// calling thread helps; nested under a trial task this reuses the same
  /// pool).  Results must not depend on execution order — every shard draws
  /// from its own substream and writes only shard-local state.
  template <typename Fn>
  static void for_shards(std::size_t blocks, Fn&& fn) {
    if (blocks <= 1 || Executor::instance().threads() <= 1) {
      for (std::size_t b = 0; b < blocks; ++b) fn(b);
      return;
    }
    Executor::parallel_chunks(
        0, blocks, 1, [&fn](std::uint64_t, std::uint64_t lo, std::uint64_t) { fn(lo); });
  }

  /// split_multiset invoker: resolve sibling subtrees concurrently (each
  /// node owns a substream, so order cannot affect the output bits).
  struct ParallelInvoke {
    template <typename A, typename B>
    void operator()(A&& a, B&& b) const {
      if (Executor::instance().threads() <= 1) {
        a();
        b();
        return;
      }
      Executor::TaskGroup group;
      group.run([&a] { a(); });
      b();
      group.wait();
    }
  };

  // ------------------------------------------------------------ epochs ----

  /// Run one epoch, bounded by `budget` interactions; returns how many
  /// interactions were executed (>= 1).  Each epoch owns the counter-based
  /// substream family keyed (master_seed_, epoch_index_, stream).
  std::uint64_t epoch(std::uint64_t budget) {
    const std::uint64_t n = total_;
    const std::uint64_t tmax = n / 2;  // longest possible collision-free run
    const SubstreamSeeder seeder(master_seed_, epoch_index_++);
    Rng root = seeder.stream(kStreamRoot);
    if (budget == 1) {  // a single interaction is always a collision-free prefix
      run_batch(1, /*keep_split=*/false, seeder, root);
      return 1;
    }
    const double u = root.uniform_double();
    if (u <= 0.0) {  // measure-zero guard: collision arbitrarily late
      const std::uint64_t t = std::min(budget, tmax);
      run_batch(t, /*keep_split=*/false, seeder, root);
      return t;
    }
    const double log_u = std::log(u);
    if (budget <= tmax && log_survival(budget) >= log_u) {
      // First collision falls beyond the budget: the prefix we need is
      // collision-free, and truncation is exact (see header comment).
      run_batch(budget, /*keep_split=*/false, seeder, root);
      return budget;
    }
    // Binary search the smallest t with P(L > t) < u; the collision is
    // interaction t, preceded by t-1 collision-free interactions.
    std::uint64_t lo = 1, hi = std::min(budget, tmax + 1);
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (log_survival(mid) < log_u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    // P(L > 1) = 1, so lo >= 2 up to floating-point noise in log_survival;
    // clamp so the batch is never empty (budget >= 2 here, so batch + 1 fits).
    const std::uint64_t batch = std::max<std::uint64_t>(lo, 2) - 1;
    run_batch(batch, /*keep_split=*/true, seeder, root);
    resolve_collision(batch, root);
    return batch + 1;
  }

  /// log P(L > t): probability that t interactions in a row reuse no agent,
  /// i.e. the falling factorial (n)_{2t} / (n(n-1))^t.  For large n this is
  /// evaluated by a truncated log1p series with closed-form power sums (the
  /// log-factorial difference would cancel catastrophically); for small n,
  /// by `log_factorial` (stats/discrete.hpp) — not libm's lgamma, which
  /// writes the global `signgam` and so races when trials fan out over
  /// threads on one shared JIT table.
  double log_survival(std::uint64_t t) const {
    const std::uint64_t n = total_;
    if (2 * t > n) return -std::numeric_limits<double>::infinity();
    const double dn = static_cast<double>(n);
    const double dt = static_cast<double>(t);
    if (n < 1000000) {
      return detail::log_factorial(dn) - detail::log_factorial(dn - 2.0 * dt) -
             dt * (std::log(dn) + std::log(dn - 1.0));
    }
    // sum_{j=0}^{2t-1} log1p(-j/n) - t*log1p(-1/n), with
    // sum log1p(-j/n) ~ -(S1/n + S2/(2n^2) + S3/(3n^3) + S4/(4n^4)).
    // Truncation error is negligible where the value can affect the
    // comparison against log(u) >= log(2^-53) ~ -36.7.
    const double m = 2.0 * dt;
    const double s1 = m * (m - 1.0) / 2.0;
    const double s2 = (m - 1.0) * m * (2.0 * m - 1.0) / 6.0;
    const double s3 = s1 * s1;
    const double s4 = s2 * (3.0 * m * m - 3.0 * m - 1.0) / 5.0;
    const double series = -(s1 / dn + s2 / (2.0 * dn * dn) +
                            s3 / (3.0 * dn * dn * dn) +
                            s4 / (4.0 * dn * dn * dn * dn));
    return series - dt * std::log1p(-1.0 / dn);
  }

  // ------------------------------------------------------- batch moves ----

  /// Sample and apply `t` collision-free interactions by count arithmetic.
  /// If `keep_split` is set, the configuration is left split across
  /// `counts_` (untouched agents) and `touched_` (post-batch states of the
  /// 2t touched agents) for collision resolution; otherwise it is merged.
  void run_batch(std::uint64_t t, bool keep_split, const SubstreamSeeder& seeder,
                 Rng& root) {
    draw_joint(t, seeder, root);
    // Pair receivers with senders: a uniform bipartite matching.  Two
    // equivalent samplers with opposite cost profiles:
    //   * dense — a sequentially-sampled contingency table, one
    //     hypergeometric per (receiver class, sender class): O(occ_r · occ_s)
    //     draws.  Wins when the batch is huge relative to the occupied grid
    //     (early dynamics, n ≳ 10^11).
    //   * shuffle — expand the sender multiset into t slots, shuffle, and
    //     let receiver classes consume slots in order: a uniform permutation
    //     of the sender multiset against receiver slots is exactly a uniform
    //     matching.  O(t) with tiny constants; wins when the occupied grid
    //     is not tiny relative to the batch — a slot write costs ~1/8 of a
    //     rejection draw, so the dense scan only wins when occ_r · occ_s ≪ t
    //     (few huge classes at n ≳ 10¹¹).  Sharded across the executor: see
    //     pair_shuffle.
    // The shuffle buffer is capped so sub-√n epochs never allocate
    // unboundedly at n = 10¹²⁺; past the cap the dense scan takes over.
    std::uint64_t occ_r = 0, occ_s = 0;
    for (const std::uint32_t j : joint_ids_) {
      occ_r += recv_[j] != 0 ? 1 : 0;
      occ_s += send_[j] != 0 ? 1 : 0;
    }
    if (occ_r * occ_s * 8 < t || t > kMaxShuffleSlots) {
      pair_dense(t, root);
    } else {
      pair_shuffle(t, seeder);
    }
    for (const std::uint32_t j : joint_ids_) {
      joint_[j] = 0;
      recv_[j] = 0;
      send_[j] = 0;
    }
    joint_ids_.clear();
    interactions_ += t;
    if (!keep_split) merge_touched();
  }

  /// The fused batch draw.  Drawing t receivers then t senders without
  /// replacement is distribution-identical to drawing the 2t batch agents in
  /// one pass and then marking a uniform t-subset of them as receivers: the
  /// joint class counts are one multivariate hypergeometric over the
  /// occupied classes of the configuration, and conditioned on them the
  /// receiver class counts are a multivariate hypergeometric of the (much
  /// smaller, mostly small-count) joint multiset.  The former two
  /// full-configuration passes collapse into one, and the occupied-class
  /// list persists across epochs — only compaction of classes that emptied
  /// touches it.
  ///
  /// Blocked for the executor: the occupied list splits into equal-class
  /// blocks (per-class cost is ~one hypergeometric draw, so class count is
  /// the balance metric); a block-level chain on the root stream fixes each
  /// block's joint and receiver totals — grouping classes in a multivariate
  /// hypergeometric is exact — and each block then resolves its per-class
  /// chain on its own substream, in any order, on any thread.
  void draw_joint(std::uint64_t t, const SubstreamSeeder& seeder, Rng& root) {
    compact_occupied();
    const auto occ = static_cast<std::uint32_t>(occupied_.size());
    const std::uint32_t blocks = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(max_epoch_shards(), occ / kMinShardClasses));
    joint_ids_.clear();
    if (blocks == 1) {
      Rng rng = seeder.stream(kStreamJointBase);
      resolve_joint_block(0, occ, total_, 2 * t, t, rng, joint_ids_);
      return;
    }
    ensure_shards(blocks);
    block_bounds_.clear();
    for (std::uint32_t b = 0; b <= blocks; ++b) {
      block_bounds_.push_back(
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(occ) * b / blocks));
    }
    block_mass_.assign(blocks, 0);
    block_joint_.assign(blocks, 0);
    block_recv_.assign(blocks, 0);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      for (std::uint32_t k = block_bounds_[b]; k < block_bounds_[b + 1]; ++k) {
        block_mass_[b] += counts_[occupied_[k]];
      }
    }
    std::uint64_t remaining_total = total_;
    std::uint64_t remaining = 2 * t;
    for (std::uint32_t b = 0; b < blocks && remaining > 0; ++b) {
      const std::uint64_t k = hypergeometric(root, remaining_total, block_mass_[b], remaining);
      block_joint_[b] = k;
      remaining -= k;
      remaining_total -= block_mass_[b];
    }
    std::uint64_t pool = 2 * t;
    std::uint64_t need = t;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::uint64_t r =
          need == 0 ? 0 : hypergeometric(root, pool, block_joint_[b], need);
      block_recv_[b] = r;
      pool -= block_joint_[b];
      need -= r;
    }
    for_shards(blocks, [&](std::size_t b) {
      Rng rng = seeder.stream(kStreamJointBase + b);
      shards_[b].joint_ids.clear();
      resolve_joint_block(block_bounds_[b], block_bounds_[b + 1], block_mass_[b],
                          block_joint_[b], block_recv_[b], rng, shards_[b].joint_ids);
    });
    for (std::uint32_t b = 0; b < blocks; ++b) {
      joint_ids_.insert(joint_ids_.end(), shards_[b].joint_ids.begin(),
                        shards_[b].joint_ids.end());
      shards_[b].joint_ids.clear();
    }
  }

  /// Resolve one class block of the fused joint draw: chain the per-class
  /// joint counts over the block's slice of the occupied list, then chain
  /// the per-class receiver split over the block's drawn agents.  Appends
  /// the block's drawn class ids to `ids` (occupied-list order, so the
  /// blockwise concatenation matches the single-block order exactly).
  void resolve_joint_block(std::uint32_t lo, std::uint32_t hi, std::uint64_t block_mass,
                           std::uint64_t block_joint, std::uint64_t block_recv,
                           Rng& rng, std::vector<std::uint32_t>& ids) {
    std::uint64_t remaining_total = block_mass;
    std::uint64_t remaining = block_joint;
    const std::size_t first = ids.size();
    for (std::uint32_t k = lo; k < hi; ++k) {
      if (remaining == 0) break;
      const std::uint32_t i = occupied_[k];
      const std::uint64_t c = counts_[i];
      if (c == 0) continue;
      const std::uint64_t d = hypergeometric(rng, remaining_total, c, remaining);
      remaining_total -= c;
      if (d != 0) {
        joint_[i] = d;
        ids.push_back(i);
        counts_[i] = c - d;
        remaining -= d;
      }
    }
    POPS_REQUIRE(remaining == 0, "batch draw exceeded population");
    // Split: this block's receivers are a uniform block_recv-subset of its
    // block_joint drawn agents.
    std::uint64_t pool = block_joint;
    std::uint64_t need = block_recv;
    for (std::size_t k = first; k < ids.size(); ++k) {
      const std::uint32_t i = ids[k];
      const std::uint64_t r = need == 0 ? 0 : hypergeometric(rng, pool, joint_[i], need);
      recv_[i] = r;
      send_[i] = joint_[i] - r;
      pool -= joint_[i];
      need -= r;
    }
  }

  /// Drop occupied-list entries whose class emptied (agents drawn out and
  /// never returned).  O(occupancy), once per epoch; the list never holds
  /// duplicates, so multivariate passes see each class exactly once.
  void compact_occupied() {
    std::size_t w = 0;
    for (const std::uint32_t i : occupied_) {
      if (counts_[i] != 0) {
        occupied_[w++] = i;
      } else {
        in_occupied_[i] = 0;
      }
    }
    occupied_.resize(w);
  }

  /// Dense contingency-table pairing: hypergeometric share per cell.
  /// Serial on the root stream — it runs precisely when the occupied grid
  /// is tiny relative to the batch, where per-epoch cost is O(occ²), not
  /// O(t), and sharding would cost more than it saves.
  void pair_dense(std::uint64_t t, Rng& rng) {
    std::uint64_t send_total = t;
    for (const std::uint32_t i : joint_ids_) {
      std::uint64_t need = recv_[i];
      if (need == 0) continue;
      std::uint64_t pool = send_total;
      for (const std::uint32_t j : joint_ids_) {
        if (need == 0) break;
        const std::uint64_t sj = send_[j];
        if (sj == 0) continue;
        const std::uint64_t d = hypergeometric(rng, pool, sj, need);
        pool -= sj;
        if (d > 0) {
          send_[j] -= d;
          need -= d;
          send_total -= d;
          apply_cell_main(i, j, d, rng);
        }
      }
    }
  }

  /// Shuffle pairing, sharded: receiver classes group into contiguous runs
  /// of ~equal slot mass; `split_multiset` deals the sender multiset into
  /// per-group quotas (exactly the compositions a uniform global shuffle
  /// gives those slot ranges); each group then fills + Fisher–Yates
  /// shuffles its own slot range and consumes it — accumulating per-cell
  /// counts so randomized cells still split in bulk — into its shard-local
  /// delta, all on the group's substream.  Group deltas merge in group
  /// order, so the epoch's output is identical whether groups ran on one
  /// thread or eight.
  void pair_shuffle(std::uint64_t t, const SubstreamSeeder& seeder) {
    recv_weights_.clear();
    for (const std::uint32_t i : joint_ids_) recv_weights_.push_back(recv_[i]);
    group_bounds_ = plan_blocks(recv_weights_, t, max_epoch_shards(), kMinShardSlots);
    const std::size_t groups = group_bounds_.size() - 1;
    ensure_shards(groups);
    sender_ms_.ids = joint_ids_;
    sender_ms_.counts.clear();
    for (const std::uint32_t i : joint_ids_) sender_ms_.counts.push_back(send_[i]);
    part_sizes_.assign(groups, 0);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::uint32_t k = group_bounds_[g]; k < group_bounds_[g + 1]; ++k) {
        part_sizes_[g] += recv_weights_[k];
      }
    }
    split_multiset(seeder, kStreamSplitBase, sender_ms_, part_sizes_, parts_,
                   ParallelInvoke{});
    if (sender_slots_.size() < t) sender_slots_.resize(t);
    group_offsets_.assign(groups + 1, 0);
    for (std::size_t g = 0; g < groups; ++g) {
      group_offsets_[g + 1] = group_offsets_[g] + part_sizes_[g];
    }
    for_shards(groups, [&](std::size_t g) {
      ShardScratch& sh = shards_[g];
      Rng rng = seeder.stream(kStreamGroupBase + g);
      block_shuffle_fill(rng, parts_[g], sender_slots_.data() + group_offsets_[g],
                         part_sizes_[g]);
      std::uint64_t pos = group_offsets_[g];
      for (std::uint32_t k = group_bounds_[g]; k < group_bounds_[g + 1]; ++k) {
        const std::uint32_t i = joint_ids_[k];
        std::uint64_t need = recv_[i];
        if (need == 0) continue;
        sh.cell_touched.clear();
        while (need-- > 0) {
          const std::uint32_t j = sender_slots_[pos++];
          if (sh.cell_accum[j]++ == 0) sh.cell_touched.push_back(j);
        }
        for (const std::uint32_t j : sh.cell_touched) {
          apply_cell_shard(i, j, sh.cell_accum[j], rng, sh);
          sh.cell_accum[j] = 0;
        }
      }
    });
    merge_shard_deltas(groups);
  }

  /// Apply `d` simultaneous interactions with input pair (i, j), appending
  /// the output states to `sink`.  Randomized cells split `d` across their
  /// transitions (plus the residual null) by binomial draws from `rng`.
  /// `kShardContext` selects the lookup that never resizes shared scratch.
  template <bool kShardContext, typename Sink>
  void apply_cell(std::uint32_t i, std::uint32_t j, std::uint64_t d, Rng& rng,
                  Sink& sink) {
    const DispatchTable::Cell cell =
        kShardContext ? lookup_shard(i, j) : lookup(i, j);
    switch (cell.kind) {
      case DispatchTable::CellKind::kNull:
        sink.touch(i, d);
        sink.touch(j, d);
        return;
      case DispatchTable::CellKind::kDeterministic: {
        const auto& e = *cell.begin;
        sink.touch(e.out_receiver, d);
        sink.touch(e.out_sender, d);
        return;
      }
      case DispatchTable::CellKind::kRandomized: {
        std::uint64_t rem = d;
        double rest = 1.0;
        for (const auto* e = cell.begin; e != cell.end && rem > 0; ++e) {
          // A full-mass cell has no null residue: its last entry absorbs the
          // floating-point sliver the subtraction chain leaves in `rest`,
          // mirroring DispatchTable::pick's clamp on the single-draw path.
          const bool clamp_last = cell.clamp && e + 1 == cell.end;
          const double p =
              clamp_last ? 1.0 : std::min(1.0, std::max(0.0, e->rate / rest));
          const std::uint64_t k = binomial(rng, rem, p);
          sink.touch(e->out_receiver, k);
          sink.touch(e->out_sender, k);
          rem -= k;
          rest -= e->rate;
        }
        sink.touch(i, rem);  // residual mass: null transitions
        sink.touch(j, rem);
        return;
      }
    }
  }

  /// Serial-context sink: routes into the epoch-wide touched multiset
  /// (which may resize shared scratch via sync_states — serial only).
  struct MainSink {
    BatchedCountSimulation* sim;
    void touch(std::uint32_t state, std::uint64_t d) { sim->touch(state, d); }
  };

  void apply_cell_main(std::uint32_t i, std::uint32_t j, std::uint64_t d, Rng& rng) {
    MainSink sink{this};
    apply_cell<false>(i, j, d, rng, sink);
  }

  void apply_cell_shard(std::uint32_t i, std::uint32_t j, std::uint64_t d, Rng& rng,
                        ShardScratch& sh) {
    apply_cell<true>(i, j, d, rng, sh);
  }

  /// Dispatch lookup with the JIT fallback (see CountSimulation::lookup).
  /// State growth is synced after our own compiles; cells compiled by
  /// *other* threads sharing the JIT source are caught by `touch`'s guard.
  DispatchTable::Cell lookup(std::uint32_t receiver, std::uint32_t sender) {
    if (jit_ == nullptr) return dispatch_->find(receiver, sender);
    DispatchTable::Cell cell = jit_table_->find(receiver, sender);
    if (!cell.present) [[unlikely]] {
      jit_->compile_pair(receiver, sender);
      sync_states();
      cell = jit_table_->find(receiver, sender);
    }
    return cell;
  }

  /// Shard-context lookup: same JIT fallback, but never resizes the shared
  /// scratch (other shards may be running) — new states interned by the
  /// compile land in the shard's delta via ShardScratch::touch's local
  /// growth, and the shared vectors sync at the next serial point.
  DispatchTable::Cell lookup_shard(std::uint32_t receiver, std::uint32_t sender) {
    if (jit_ == nullptr) return dispatch_->find(receiver, sender);
    DispatchTable::Cell cell = jit_table_->find(receiver, sender);
    if (!cell.present) [[unlikely]] {
      jit_->compile_pair(receiver, sender);
      cell = jit_table_->find(receiver, sender);
    }
    return cell;
  }

  void touch(std::uint32_t state, std::uint64_t d) {
    if (d == 0) return;
    // Another simulator thread sharing our JIT source may have interned
    // `state` after our last sync; grow the scratch mid-epoch (exact — the
    // new classes simply hold zero counts).
    if (state >= touched_.size()) [[unlikely]] sync_states();
    if (touched_[state] == 0) touched_ids_.push_back(state);
    touched_[state] += d;
  }

  void merge_touched() {
    for (const std::uint32_t i : touched_ids_) {
      const std::uint64_t v = touched_[i];
      touched_[i] = 0;
      if (v != 0) {
        counts_[i] += v;
        if (!in_occupied_[i]) {
          in_occupied_[i] = 1;
          occupied_.push_back(i);
        }
      }
    }
    touched_ids_.clear();
  }

  /// Fold every shard's delta into the epoch-wide touched multiset, in
  /// shard order — the serial merge point that makes the parallel stage's
  /// output order-deterministic.
  void merge_shard_deltas(std::size_t count) {
    for (std::size_t b = 0; b < count; ++b) {
      ShardScratch& sh = shards_[b];
      for (const std::uint32_t i : sh.delta_ids) {
        const std::uint64_t v = sh.delta[i];
        sh.delta[i] = 0;
        touch(i, v);
      }
      sh.delta_ids.clear();
    }
  }

  /// Size shard scratch for `count` shards against the current state count
  /// (serial point; shards never resize these concurrently).
  void ensure_shards(std::size_t count) {
    if (shards_.size() < count) shards_.resize(count);
    const std::uint32_t s = dispatch_num_states();
    for (std::size_t b = 0; b < count; ++b) {
      if (shards_[b].delta.size() < s) shards_[b].delta.resize(s, 0);
      if (shards_[b].cell_accum.size() < s) shards_[b].cell_accum.resize(s, 0);
    }
  }

  // ------------------------------------------------------- collisions ----

  /// Execute the colliding interaction exactly.  After a kept-split batch of
  /// `batch` interactions, `touched_` holds the 2*batch post-batch states and
  /// `counts_` the untouched agents.  Conditioned on being the first
  /// collision, the ordered pair is uniform over ordered distinct pairs that
  /// are not untouched-untouched; with T = 2*batch touched and U untouched
  /// agents the three cases have weights T·U, U·T, T·(T−1) — T divides out,
  /// leaving U : U : T−1.
  void resolve_collision(std::uint64_t batch, Rng& rng) {
    const std::uint64_t touched_total = 2 * batch;
    const std::uint64_t untouched_total = total_ - touched_total;
    std::uint64_t t_pool = touched_total;
    std::uint64_t u_pool = untouched_total;
    const std::uint64_t x = rng.below(2 * untouched_total + touched_total - 1);
    std::uint32_t r_state, s_state;
    if (x < untouched_total) {  // receiver touched, sender untouched
      r_state = draw_one_touched(t_pool, rng);
      s_state = draw_one_untouched(u_pool, rng);
    } else if (x < 2 * untouched_total) {  // receiver untouched, sender touched
      r_state = draw_one_untouched(u_pool, rng);
      s_state = draw_one_touched(t_pool, rng);
    } else {  // both touched (two distinct touched agents)
      r_state = draw_one_touched(t_pool, rng);
      s_state = draw_one_touched(t_pool, rng);
    }
    const auto [out_r, out_s] = resolve_transition(r_state, s_state, rng);
    touch(out_r, 1);
    touch(out_s, 1);
    ++interactions_;
    merge_touched();
  }

  /// Remove and return one uniform agent from the touched multiset (walking
  /// the touched-id list, not the full state range).
  std::uint32_t draw_one_touched(std::uint64_t& pool_total, Rng& rng) {
    std::uint64_t slot = rng.below(pool_total);
    for (const std::uint32_t i : touched_ids_) {
      const std::uint64_t c = touched_[i];
      if (slot < c) {
        --touched_[i];
        --pool_total;
        return i;
      }
      slot -= c;
    }
    POPS_REQUIRE(false, "corrupt touched multiset in collision draw");
    return 0;  // unreachable
  }

  /// Remove and return one uniform untouched agent (walking the occupied
  /// list; classes emptied by the batch draw weigh zero and are skipped).
  std::uint32_t draw_one_untouched(std::uint64_t& pool_total, Rng& rng) {
    std::uint64_t slot = rng.below(pool_total);
    for (const std::uint32_t i : occupied_) {
      const std::uint64_t c = counts_[i];
      if (slot < c) {
        --counts_[i];
        --pool_total;
        return i;
      }
      slot -= c;
    }
    POPS_REQUIRE(false, "corrupt configuration in collision draw");
    return 0;  // unreachable
  }

  /// Outcome of a single (receiver, sender) interaction, consuming the rate
  /// draw only for randomized cells.
  std::pair<std::uint32_t, std::uint32_t> resolve_transition(std::uint32_t r,
                                                             std::uint32_t s,
                                                             Rng& rng) {
    const DispatchTable::Cell cell = lookup(r, s);
    switch (cell.kind) {
      case DispatchTable::CellKind::kNull:
        return {r, s};
      case DispatchTable::CellKind::kDeterministic: {
        const auto& e = *cell.begin;
        return {e.out_receiver, e.out_sender};
      }
      case DispatchTable::CellKind::kRandomized: {
        const auto* e = DispatchTable::pick(cell, rng.uniform_double());
        if (e != nullptr) return {e->out_receiver, e->out_sender};
        return {r, s};  // residual: null transition
      }
    }
    return {r, s};
  }

  // ------------------------------------------------------ state growth ----

  void init_scratch(std::uint32_t s) {
    counts_.assign(s, 0);
    touched_.assign(s, 0);
    recv_.assign(s, 0);
    send_.assign(s, 0);
    joint_.assign(s, 0);
    in_occupied_.assign(s, 0);
    occupied_.reserve(s);
    joint_ids_.reserve(s);
    touched_ids_.reserve(s);
  }

  std::uint32_t dispatch_num_states() const {
    return jit_ != nullptr ? jit_table_->num_states() : dispatch_->num_states();
  }

  void sync_states() {
    const std::uint32_t s = dispatch_num_states();
    if (s == counts_.size()) return;
    counts_.resize(s, 0);
    touched_.resize(s, 0);
    recv_.resize(s, 0);
    send_.resize(s, 0);
    joint_.resize(s, 0);
    in_occupied_.resize(s, 0);
  }

  /// Shuffle-slot ceiling: above this, fall back to the contingency-table
  /// pairing rather than materializing an O(√n) slot buffer at n = 10¹²⁺.
  static constexpr std::uint64_t kMaxShuffleSlots = std::uint64_t{1} << 22;

  FiniteSpec spec_storage_;      ///< owned in eager mode; empty in lazy mode
  const FiniteSpec* spec_;
  std::uint64_t master_seed_;    ///< every epoch substream derives from this
  std::uint64_t epoch_index_ = 0;
  DispatchTable table_storage_;  ///< owned in eager mode; empty in lazy mode
  const DispatchTable* dispatch_ = nullptr;
  const ConcurrentDispatchTable* jit_table_ = nullptr;  ///< lazy mode only
  JitCompiler* jit_ = nullptr;
  std::vector<std::uint64_t> counts_;  ///< configuration vector
  std::uint64_t total_ = 0;
  std::uint64_t interactions_ = 0;
  // Per-epoch scratch, sparse in the occupied classes (hot path allocates
  // nothing and never walks the full state range).
  std::vector<std::uint64_t> touched_, recv_, send_, joint_;
  std::vector<std::uint8_t> in_occupied_;
  std::vector<std::uint32_t> occupied_, joint_ids_, touched_ids_;
  std::vector<std::uint32_t> sender_slots_;
  // Parallel-epoch scratch: per-shard deltas/accumulators plus the blocked
  // decompositions' plans (reused across epochs; sized to shards in use).
  std::vector<ShardScratch> shards_;
  ClassMultiset sender_ms_;
  std::vector<ClassMultiset> parts_;
  std::vector<std::uint64_t> part_sizes_, recv_weights_, block_mass_, block_joint_,
      block_recv_, group_offsets_;
  std::vector<std::uint32_t> group_bounds_, block_bounds_;
};

}  // namespace pops
