// Batched count-based simulator: Θ(√n) interactions per RNG epoch.
//
// The paper measures protocols in parallel time (= interactions / n), so its
// convergence figures at n = 10⁸–10¹² need Θ(n polylog n) interactions per
// trial — hopeless at O(log S) Fenwick work per interaction.  This simulator
// uses the batching technique of ppsim (Doty–Severson, CMSB 2021; cf.
// Berenbrink et al., "Simulating Population Protocols in Sub-Constant Time
// per Interaction"): between two interactions that touch the same agent,
// interactions commute, so the chain can be advanced in collision-free
// batches whose length follows the birthday distribution — expected
// Θ(√n) interactions per epoch — with each batch applied by count arithmetic.
//
// One epoch, exactly distribution-preserving w.r.t. the sequential chain:
//   1. Sample L = index of the first interaction that reuses an agent
//      ("collision"), via inversion of the birthday survival function
//      P(L > t) = (n)_{2t} / (n(n-1))^t  (binary search, O(log n) evals).
//   2. The 2(L−1) agents of the collision-free prefix are a uniform sample
//      without replacement from the configuration: draw their *joint* state
//      multiset with one multivariate hypergeometric pass, split it into
//      receiver/sender multisets (the receivers are a uniform t-subset of
//      the 2t agents, so the receiver class counts are again multivariate
//      hypergeometric — one fused draw replaces the former two full-
//      configuration draws), pair them by a uniform bipartite matching, and
//      apply every transition by count arithmetic (randomized transitions
//      split by binomial draws).
//   3. Resolve the single colliding interaction exactly: the repeated agent
//      is uniform among the 2(L−1) touched agents (whose post-batch states
//      are known as a multiset), its partner uniform among touched/untouched
//      pools with the exact conditional weights.
//
// Every per-epoch structure is sparse in the *occupied* state classes — a
// persistent occupied-class list (compacted once per epoch) drives the
// hypergeometric pass, touched-class lists drive the merges, and scratch is
// cleared by id list rather than by O(S) fills — so a 10⁴–10⁵-state compiled
// spec pays for the classes it populates, not for S.  Dispatch goes through
// the sparse `DispatchTable` rows; with a `JitCompiler` source, pairs
// compile on first contact and the count vectors grow as states intern.
//
// Truncating an epoch after a fixed number of interactions is also exact —
// whether a prefix is collision-free depends only on agent identities, which
// are independent of agent states — so `steps(k)` advances exactly k
// interactions and the `step/steps/advance_time/run_until` API matches
// `CountSimulation` precisely; every experiment can switch simulators with a
// template parameter.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sim/dispatch.hpp"
#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "sim/rng.hpp"
#include "sim/shared_dispatch.hpp"
#include "stats/discrete.hpp"

namespace pops {

class BatchedCountSimulation {
 public:
  BatchedCountSimulation(FiniteSpec spec, std::uint64_t seed,
                         DispatchTable::RowLayout layout = DispatchTable::RowLayout::kAuto)
      : spec_storage_(std::move(spec)), spec_(&spec_storage_), rng_(seed) {
    spec_storage_.validate();
    table_storage_ = DispatchTable(spec_storage_, layout);
    dispatch_ = &table_storage_;
    init_scratch(dispatch_->num_states());
  }

  /// Lazy/JIT mode: pairs compile on first contact; `jit` must outlive the
  /// simulator (it owns the growing table and the interned state names).
  /// Multiple simulators on different threads may share one `jit` source —
  /// its table is lock-free to read and compile_pair is sharded.
  BatchedCountSimulation(JitCompiler& jit, std::uint64_t seed)
      : spec_(&jit.spec()), rng_(seed), jit_table_(&jit.table()), jit_(&jit) {
    init_scratch(jit_table_->num_states());
  }

  // spec_/dispatch_ point into own storage in eager mode; copies would dangle.
  BatchedCountSimulation(const BatchedCountSimulation&) = delete;
  BatchedCountSimulation& operator=(const BatchedCountSimulation&) = delete;

  /// Reset to an empty configuration with a fresh seed, reusing the compiled
  /// dispatch table.  For multi-trial experiments on compiled specs the
  /// table build (millions of entries — or, lazily, the JIT warm-up) dwarfs
  /// a trial, so trials reseed one simulator instead of constructing one each.
  void reset(std::uint64_t seed) {
    rng_.reseed(seed);
    sync_states();
    for (const std::uint32_t i : occupied_) {
      counts_[i] = 0;
      in_occupied_[i] = 0;
    }
    occupied_.clear();
    total_ = 0;
    interactions_ = 0;
  }

  /// Set the initial count of a state (before stepping).
  void set_count(const std::string& state, std::uint64_t count) {
    set_count(spec_->id(state), count);
  }
  void set_count(std::uint32_t state, std::uint64_t count) {
    sync_states();
    total_ = total_ - counts_.at(state) + count;
    counts_.at(state) = count;
    if (count != 0 && !in_occupied_[state]) {
      in_occupied_[state] = 1;
      occupied_.push_back(state);
    }
  }

  std::uint64_t count(const std::string& state) const {
    return spec_->has_state(state) ? count(spec_->id(state)) : 0;
  }
  std::uint64_t count(std::uint32_t state) const {
    return state < counts_.size() ? counts_[state] : 0;
  }
  std::uint64_t population_size() const { return total_; }
  std::uint64_t interactions() const { return interactions_; }
  const FiniteSpec& spec() const { return *spec_; }

  double time() const {
    return static_cast<double>(interactions_) / static_cast<double>(total_);
  }

  /// One interaction (an epoch truncated to length 1 — still exact).
  void step() { steps(1); }

  /// Advance exactly `k` interactions.  steps(0) is a no-op, as in
  /// CountSimulation.
  void steps(std::uint64_t k) {
    if (k == 0) return;
    POPS_REQUIRE(total_ >= 2, "population too small to interact");
    // Another simulator sharing our JIT source may have interned states
    // since we last ran: its compiled cells are `present` (so our lookup
    // fallback won't fire) yet can output ids beyond our scratch vectors.
    sync_states();
    while (k > 0) k -= epoch(k);
  }

  void advance_time(double dt) {
    POPS_REQUIRE(dt >= 0.0, "advance_time needs dt >= 0");
    steps(static_cast<std::uint64_t>(dt * static_cast<double>(total_)));
  }

  template <typename Pred>
  double run_until(Pred&& done, double check_dt = 1.0, double max_time = 1e12) {
    POPS_REQUIRE(check_dt > 0.0, "run_until needs check_dt > 0");
    while (time() < max_time) {
      if (done(*this)) return time();
      advance_time(check_dt);
    }
    return done(*this) ? time() : -1.0;
  }

  /// Snapshot of all counts, indexed by state id.
  std::vector<std::uint64_t> counts() const { return counts_; }

 private:
  // ------------------------------------------------------------ epochs ----

  /// Run one epoch, bounded by `budget` interactions; returns how many
  /// interactions were executed (>= 1).
  std::uint64_t epoch(std::uint64_t budget) {
    const std::uint64_t n = total_;
    const std::uint64_t tmax = n / 2;  // longest possible collision-free run
    if (budget == 1) {  // a single interaction is always a collision-free prefix
      run_batch(1, /*keep_split=*/false);
      return 1;
    }
    const double u = rng_.uniform_double();
    if (u <= 0.0) {  // measure-zero guard: collision arbitrarily late
      const std::uint64_t t = std::min(budget, tmax);
      run_batch(t, /*keep_split=*/false);
      return t;
    }
    const double log_u = std::log(u);
    if (budget <= tmax && log_survival(budget) >= log_u) {
      // First collision falls beyond the budget: the prefix we need is
      // collision-free, and truncation is exact (see header comment).
      run_batch(budget, /*keep_split=*/false);
      return budget;
    }
    // Binary search the smallest t with P(L > t) < u; the collision is
    // interaction t, preceded by t-1 collision-free interactions.
    std::uint64_t lo = 1, hi = std::min(budget, tmax + 1);
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (log_survival(mid) < log_u) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    // P(L > 1) = 1, so lo >= 2 up to floating-point noise in log_survival;
    // clamp so the batch is never empty (budget >= 2 here, so batch + 1 fits).
    const std::uint64_t batch = std::max<std::uint64_t>(lo, 2) - 1;
    run_batch(batch, /*keep_split=*/true);
    resolve_collision(batch);
    return batch + 1;
  }

  /// log P(L > t): probability that t interactions in a row reuse no agent,
  /// i.e. the falling factorial (n)_{2t} / (n(n-1))^t.  For large n this is
  /// evaluated by a truncated log1p series with closed-form power sums (the
  /// log-factorial difference would cancel catastrophically); for small n,
  /// by `log_factorial` (stats/discrete.hpp) — not libm's lgamma, which
  /// writes the global `signgam` and so races when trials fan out over
  /// threads on one shared JIT table.
  double log_survival(std::uint64_t t) const {
    const std::uint64_t n = total_;
    if (2 * t > n) return -std::numeric_limits<double>::infinity();
    const double dn = static_cast<double>(n);
    const double dt = static_cast<double>(t);
    if (n < 1000000) {
      return detail::log_factorial(dn) - detail::log_factorial(dn - 2.0 * dt) -
             dt * (std::log(dn) + std::log(dn - 1.0));
    }
    // sum_{j=0}^{2t-1} log1p(-j/n) - t*log1p(-1/n), with
    // sum log1p(-j/n) ~ -(S1/n + S2/(2n^2) + S3/(3n^3) + S4/(4n^4)).
    // Truncation error is negligible where the value can affect the
    // comparison against log(u) >= log(2^-53) ~ -36.7.
    const double m = 2.0 * dt;
    const double s1 = m * (m - 1.0) / 2.0;
    const double s2 = (m - 1.0) * m * (2.0 * m - 1.0) / 6.0;
    const double s3 = s1 * s1;
    const double s4 = s2 * (3.0 * m * m - 3.0 * m - 1.0) / 5.0;
    const double series = -(s1 / dn + s2 / (2.0 * dn * dn) +
                            s3 / (3.0 * dn * dn * dn) +
                            s4 / (4.0 * dn * dn * dn * dn));
    return series - dt * std::log1p(-1.0 / dn);
  }

  // ------------------------------------------------------- batch moves ----

  /// Sample and apply `t` collision-free interactions by count arithmetic.
  /// If `keep_split` is set, the configuration is left split across
  /// `counts_` (untouched agents) and `touched_` (post-batch states of the
  /// 2t touched agents) for collision resolution; otherwise it is merged.
  void run_batch(std::uint64_t t, bool keep_split) {
    draw_joint(t);
    // Pair receivers with senders: a uniform bipartite matching.  Two
    // equivalent samplers with opposite cost profiles:
    //   * dense — a sequentially-sampled contingency table, one
    //     hypergeometric per (receiver class, sender class): O(occ_r · occ_s)
    //     draws.  Wins when the batch is huge relative to the occupied grid
    //     (early dynamics, n ≳ 10^11).
    //   * shuffle — expand the sender multiset into t slots, Fisher–Yates
    //     shuffle, and let receiver classes consume slots in order: a
    //     uniform permutation of the sender multiset against receiver slots
    //     is exactly a uniform matching.  O(t) with tiny constants; wins
    //     when the occupied grid is not tiny relative to the batch — a slot
    //     write costs ~1/8 of a rejection draw, so the dense scan only wins
    //     when occ_r · occ_s ≪ t (few huge classes at n ≳ 10¹¹).
    // The shuffle buffer is capped so sub-√n epochs never allocate
    // unboundedly at n = 10¹²⁺; past the cap the dense scan takes over.
    std::uint64_t occ_r = 0, occ_s = 0;
    for (const std::uint32_t j : joint_ids_) {
      occ_r += recv_[j] != 0 ? 1 : 0;
      occ_s += send_[j] != 0 ? 1 : 0;
    }
    if (occ_r * occ_s * 8 < t || t > kMaxShuffleSlots) {
      pair_dense(t);
    } else {
      pair_shuffle(t);
    }
    for (const std::uint32_t j : joint_ids_) {
      joint_[j] = 0;
      recv_[j] = 0;
      send_[j] = 0;
    }
    joint_ids_.clear();
    interactions_ += t;
    if (!keep_split) merge_touched();
  }

  /// The fused batch draw.  Drawing t receivers then t senders without
  /// replacement is distribution-identical to drawing the 2t batch agents in
  /// one pass and then marking a uniform t-subset of them as receivers: the
  /// joint class counts are one multivariate hypergeometric over the
  /// occupied classes of the configuration, and conditioned on them the
  /// receiver class counts are a multivariate hypergeometric of the (much
  /// smaller, mostly small-count) joint multiset.  The former two
  /// full-configuration passes collapse into one, and the occupied-class
  /// list persists across epochs — only compaction of classes that emptied
  /// touches it.
  void draw_joint(std::uint64_t t) {
    compact_occupied();
    std::uint64_t remaining_total = total_;
    std::uint64_t remaining = 2 * t;
    joint_ids_.clear();
    for (const std::uint32_t i : occupied_) {
      if (remaining == 0) break;
      const std::uint64_t c = counts_[i];
      if (c == 0) continue;
      const std::uint64_t k = hypergeometric(rng_, remaining_total, c, remaining);
      remaining_total -= c;
      if (k != 0) {
        joint_[i] = k;
        joint_ids_.push_back(i);
        counts_[i] = c - k;
        remaining -= k;
      }
    }
    POPS_REQUIRE(remaining == 0, "batch draw exceeded population");
    // Split: receivers are a uniform t-subset of the 2t drawn agents.
    std::uint64_t pool = 2 * t;
    std::uint64_t need = t;
    for (const std::uint32_t i : joint_ids_) {
      const std::uint64_t k =
          need == 0 ? 0 : hypergeometric(rng_, pool, joint_[i], need);
      recv_[i] = k;
      send_[i] = joint_[i] - k;
      pool -= joint_[i];
      need -= k;
    }
  }

  /// Drop occupied-list entries whose class emptied (agents drawn out and
  /// never returned).  O(occupancy), once per epoch; the list never holds
  /// duplicates, so multivariate passes see each class exactly once.
  void compact_occupied() {
    std::size_t w = 0;
    for (const std::uint32_t i : occupied_) {
      if (counts_[i] != 0) {
        occupied_[w++] = i;
      } else {
        in_occupied_[i] = 0;
      }
    }
    occupied_.resize(w);
  }

  /// Dense contingency-table pairing: hypergeometric share per cell.
  void pair_dense(std::uint64_t t) {
    std::uint64_t send_total = t;
    for (const std::uint32_t i : joint_ids_) {
      std::uint64_t need = recv_[i];
      if (need == 0) continue;
      std::uint64_t pool = send_total;
      for (const std::uint32_t j : joint_ids_) {
        if (need == 0) break;
        const std::uint64_t sj = send_[j];
        if (sj == 0) continue;
        const std::uint64_t d = hypergeometric(rng_, pool, sj, need);
        pool -= sj;
        if (d > 0) {
          send_[j] -= d;
          need -= d;
          send_total -= d;
          apply_cell(i, j, d);
        }
      }
    }
  }

  /// Shuffle pairing: expand senders into slots, shuffle uniformly, consume
  /// sequentially per receiver class, accumulating per-cell counts so
  /// randomized cells still split in bulk.
  void pair_shuffle(std::uint64_t t) {
    sender_slots_.clear();
    for (const std::uint32_t j : joint_ids_) {
      sender_slots_.insert(sender_slots_.end(), static_cast<std::size_t>(send_[j]), j);
    }
    for (std::uint64_t k = t - 1; k > 0; --k) {
      std::swap(sender_slots_[k], sender_slots_[rng_.below(k + 1)]);
    }
    std::size_t pos = 0;
    for (const std::uint32_t i : joint_ids_) {
      std::uint64_t need = recv_[i];
      if (need == 0) continue;
      cell_touched_.clear();
      while (need-- > 0) {
        const std::uint32_t j = sender_slots_[pos++];
        if (cell_accum_[j]++ == 0) cell_touched_.push_back(j);
      }
      for (const std::uint32_t j : cell_touched_) {
        apply_cell(i, j, cell_accum_[j]);
        cell_accum_[j] = 0;
      }
    }
  }

  /// Apply `d` simultaneous interactions with input pair (i, j), appending
  /// the output states to the touched multiset.  Randomized cells split `d`
  /// across their transitions (plus the residual null) by binomial draws.
  void apply_cell(std::uint32_t i, std::uint32_t j, std::uint64_t d) {
    const DispatchTable::Cell cell = lookup(i, j);
    switch (cell.kind) {
      case DispatchTable::CellKind::kNull:
        touch(i, d);
        touch(j, d);
        return;
      case DispatchTable::CellKind::kDeterministic: {
        const auto& e = *cell.begin;
        touch(e.out_receiver, d);
        touch(e.out_sender, d);
        return;
      }
      case DispatchTable::CellKind::kRandomized: {
        std::uint64_t rem = d;
        double rest = 1.0;
        for (const auto* e = cell.begin; e != cell.end && rem > 0; ++e) {
          // A full-mass cell has no null residue: its last entry absorbs the
          // floating-point sliver the subtraction chain leaves in `rest`,
          // mirroring DispatchTable::pick's clamp on the single-draw path.
          const bool clamp_last = cell.clamp && e + 1 == cell.end;
          const double p =
              clamp_last ? 1.0 : std::min(1.0, std::max(0.0, e->rate / rest));
          const std::uint64_t k = binomial(rng_, rem, p);
          touch(e->out_receiver, k);
          touch(e->out_sender, k);
          rem -= k;
          rest -= e->rate;
        }
        touch(i, rem);  // residual mass: null transitions
        touch(j, rem);
        return;
      }
    }
  }

  /// Dispatch lookup with the JIT fallback (see CountSimulation::lookup).
  /// State growth is synced after our own compiles; cells compiled by
  /// *other* threads sharing the JIT source are caught by `touch`'s guard.
  DispatchTable::Cell lookup(std::uint32_t receiver, std::uint32_t sender) {
    if (jit_ == nullptr) return dispatch_->find(receiver, sender);
    DispatchTable::Cell cell = jit_table_->find(receiver, sender);
    if (!cell.present) [[unlikely]] {
      jit_->compile_pair(receiver, sender);
      sync_states();
      cell = jit_table_->find(receiver, sender);
    }
    return cell;
  }

  void touch(std::uint32_t state, std::uint64_t d) {
    if (d == 0) return;
    // Another simulator thread sharing our JIT source may have interned
    // `state` after our last sync; grow the scratch mid-epoch (exact — the
    // new classes simply hold zero counts).
    if (state >= touched_.size()) [[unlikely]] sync_states();
    if (touched_[state] == 0) touched_ids_.push_back(state);
    touched_[state] += d;
  }

  void merge_touched() {
    for (const std::uint32_t i : touched_ids_) {
      const std::uint64_t v = touched_[i];
      touched_[i] = 0;
      if (v != 0) {
        counts_[i] += v;
        if (!in_occupied_[i]) {
          in_occupied_[i] = 1;
          occupied_.push_back(i);
        }
      }
    }
    touched_ids_.clear();
  }

  // ------------------------------------------------------- collisions ----

  /// Execute the colliding interaction exactly.  After a kept-split batch of
  /// `batch` interactions, `touched_` holds the 2*batch post-batch states and
  /// `counts_` the untouched agents.  Conditioned on being the first
  /// collision, the ordered pair is uniform over ordered distinct pairs that
  /// are not untouched-untouched; with T = 2*batch touched and U untouched
  /// agents the three cases have weights T·U, U·T, T·(T−1) — T divides out,
  /// leaving U : U : T−1.
  void resolve_collision(std::uint64_t batch) {
    const std::uint64_t touched_total = 2 * batch;
    const std::uint64_t untouched_total = total_ - touched_total;
    std::uint64_t t_pool = touched_total;
    std::uint64_t u_pool = untouched_total;
    const std::uint64_t x = rng_.below(2 * untouched_total + touched_total - 1);
    std::uint32_t r_state, s_state;
    if (x < untouched_total) {  // receiver touched, sender untouched
      r_state = draw_one_touched(t_pool);
      s_state = draw_one_untouched(u_pool);
    } else if (x < 2 * untouched_total) {  // receiver untouched, sender touched
      r_state = draw_one_untouched(u_pool);
      s_state = draw_one_touched(t_pool);
    } else {  // both touched (two distinct touched agents)
      r_state = draw_one_touched(t_pool);
      s_state = draw_one_touched(t_pool);
    }
    const auto [out_r, out_s] = resolve_transition(r_state, s_state);
    touch(out_r, 1);
    touch(out_s, 1);
    ++interactions_;
    merge_touched();
  }

  /// Remove and return one uniform agent from the touched multiset (walking
  /// the touched-id list, not the full state range).
  std::uint32_t draw_one_touched(std::uint64_t& pool_total) {
    std::uint64_t slot = rng_.below(pool_total);
    for (const std::uint32_t i : touched_ids_) {
      const std::uint64_t c = touched_[i];
      if (slot < c) {
        --touched_[i];
        --pool_total;
        return i;
      }
      slot -= c;
    }
    POPS_REQUIRE(false, "corrupt touched multiset in collision draw");
    return 0;  // unreachable
  }

  /// Remove and return one uniform untouched agent (walking the occupied
  /// list; classes emptied by the batch draw weigh zero and are skipped).
  std::uint32_t draw_one_untouched(std::uint64_t& pool_total) {
    std::uint64_t slot = rng_.below(pool_total);
    for (const std::uint32_t i : occupied_) {
      const std::uint64_t c = counts_[i];
      if (slot < c) {
        --counts_[i];
        --pool_total;
        return i;
      }
      slot -= c;
    }
    POPS_REQUIRE(false, "corrupt configuration in collision draw");
    return 0;  // unreachable
  }

  /// Outcome of a single (receiver, sender) interaction, consuming the rate
  /// draw only for randomized cells.
  std::pair<std::uint32_t, std::uint32_t> resolve_transition(std::uint32_t r,
                                                             std::uint32_t s) {
    const DispatchTable::Cell cell = lookup(r, s);
    switch (cell.kind) {
      case DispatchTable::CellKind::kNull:
        return {r, s};
      case DispatchTable::CellKind::kDeterministic: {
        const auto& e = *cell.begin;
        return {e.out_receiver, e.out_sender};
      }
      case DispatchTable::CellKind::kRandomized: {
        const auto* e = DispatchTable::pick(cell, rng_.uniform_double());
        if (e != nullptr) return {e->out_receiver, e->out_sender};
        return {r, s};  // residual: null transition
      }
    }
    return {r, s};
  }

  // ------------------------------------------------------ state growth ----

  void init_scratch(std::uint32_t s) {
    counts_.assign(s, 0);
    touched_.assign(s, 0);
    recv_.assign(s, 0);
    send_.assign(s, 0);
    joint_.assign(s, 0);
    cell_accum_.assign(s, 0);
    in_occupied_.assign(s, 0);
    occupied_.reserve(s);
    joint_ids_.reserve(s);
    touched_ids_.reserve(s);
    cell_touched_.reserve(s);
  }

  std::uint32_t dispatch_num_states() const {
    return jit_ != nullptr ? jit_table_->num_states() : dispatch_->num_states();
  }

  void sync_states() {
    const std::uint32_t s = dispatch_num_states();
    if (s == counts_.size()) return;
    counts_.resize(s, 0);
    touched_.resize(s, 0);
    recv_.resize(s, 0);
    send_.resize(s, 0);
    joint_.resize(s, 0);
    cell_accum_.resize(s, 0);
    in_occupied_.resize(s, 0);
  }

  /// Shuffle-slot ceiling: above this, fall back to the contingency-table
  /// pairing rather than materializing an O(√n) slot buffer at n = 10¹²⁺.
  static constexpr std::uint64_t kMaxShuffleSlots = std::uint64_t{1} << 22;

  FiniteSpec spec_storage_;      ///< owned in eager mode; empty in lazy mode
  const FiniteSpec* spec_;
  Rng rng_;
  DispatchTable table_storage_;  ///< owned in eager mode; empty in lazy mode
  const DispatchTable* dispatch_ = nullptr;
  const ConcurrentDispatchTable* jit_table_ = nullptr;  ///< lazy mode only
  JitCompiler* jit_ = nullptr;
  std::vector<std::uint64_t> counts_;  ///< configuration vector
  std::uint64_t total_ = 0;
  std::uint64_t interactions_ = 0;
  // Per-epoch scratch, sparse in the occupied classes (hot path allocates
  // nothing and never walks the full state range).
  std::vector<std::uint64_t> touched_, recv_, send_, joint_, cell_accum_;
  std::vector<std::uint8_t> in_occupied_;
  std::vector<std::uint32_t> occupied_, joint_ids_, touched_ids_, cell_touched_;
  std::vector<std::uint32_t> sender_slots_;
};

}  // namespace pops
