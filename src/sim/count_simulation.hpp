// Count-based (configuration-vector) simulator for finite-state protocols.
//
// A configuration ~c ∈ N^Λ (paper, Section 2) stores the count of each state.
// Each step draws an ordered pair of *distinct* agents uniformly — receiver
// first, then sender from the remaining n-1 — by sampling state indices with
// probability proportional to counts, and fires one of the transitions
// registered for that input pair according to the rate constants.
//
// For protocols with S = O(1) states this is dramatically faster than
// per-agent simulation (no Θ(n) agent array to touch) and is exact: the
// induced Markov chain on configurations is identical to the agent-level one.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "sim/rng.hpp"
#include "sim/weighted_sampler.hpp"

namespace pops {

class CountSimulation {
 public:
  CountSimulation(FiniteSpec spec, std::uint64_t seed)
      : spec_(std::move(spec)), rng_(seed), sampler_(spec_.num_states()) {
    spec_.validate();
    build_dispatch();
  }

  /// Set the initial count of a state (before stepping).
  void set_count(const std::string& state, std::uint64_t count) {
    sampler_.set_count(spec_.id(state), count);
  }
  void set_count(std::uint32_t state, std::uint64_t count) {
    sampler_.set_count(state, count);
  }

  std::uint64_t count(const std::string& state) const {
    return spec_.has_state(state) ? sampler_.count(spec_.id(state)) : 0;
  }
  std::uint64_t count(std::uint32_t state) const { return sampler_.count(state); }
  std::uint64_t population_size() const { return sampler_.total(); }
  std::uint64_t interactions() const { return interactions_; }
  const FiniteSpec& spec() const { return spec_; }

  double time() const {
    return static_cast<double>(interactions_) / static_cast<double>(population_size());
  }

  /// One interaction.
  void step() {
    POPS_REQUIRE(population_size() >= 2, "population too small to interact");
    // Receiver uniform among all agents; sender uniform among the rest.
    const std::size_t receiver = sampler_.sample(rng_);
    sampler_.add(receiver, -1);
    const std::size_t sender = sampler_.sample(rng_);
    sampler_.add(receiver, +1);
    apply(static_cast<std::uint32_t>(receiver), static_cast<std::uint32_t>(sender));
    ++interactions_;
  }

  void steps(std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step();
  }

  void advance_time(double dt) {
    POPS_REQUIRE(dt >= 0.0, "advance_time needs dt >= 0");
    steps(static_cast<std::uint64_t>(dt * static_cast<double>(population_size())));
  }

  template <typename Pred>
  double run_until(Pred&& done, double check_dt = 1.0, double max_time = 1e12) {
    POPS_REQUIRE(check_dt > 0.0, "run_until needs check_dt > 0");
    while (time() < max_time) {
      if (done(*this)) return time();
      advance_time(check_dt);
    }
    return done(*this) ? time() : -1.0;
  }

  /// Snapshot of all counts, indexed by state id.
  std::vector<std::uint64_t> counts() const { return sampler_.counts(); }

 private:
  void build_dispatch() {
    const std::uint32_t s = spec_.num_states();
    dispatch_.assign(static_cast<std::size_t>(s) * s, {});
    for (const auto& t : spec_.transitions()) {
      dispatch_[static_cast<std::size_t>(t.in_receiver) * s + t.in_sender].push_back(t);
    }
  }

  void apply(std::uint32_t receiver, std::uint32_t sender) {
    const auto& options =
        dispatch_[static_cast<std::size_t>(receiver) * spec_.num_states() + sender];
    if (options.empty()) return;
    double u = rng_.uniform_double();
    for (const auto& t : options) {
      if (u < t.rate) {
        if (t.out_receiver != receiver) {
          sampler_.add(receiver, -1);
          sampler_.add(t.out_receiver, +1);
        }
        if (t.out_sender != sender) {
          sampler_.add(sender, -1);
          sampler_.add(t.out_sender, +1);
        }
        return;
      }
      u -= t.rate;
    }
    // Residual probability mass: null transition.
  }

  FiniteSpec spec_;
  Rng rng_;
  WeightedSampler sampler_;
  std::vector<std::vector<Transition>> dispatch_;
  std::uint64_t interactions_ = 0;
};

}  // namespace pops
