// Count-based (configuration-vector) simulator for finite-state protocols.
//
// A configuration ~c ∈ N^Λ (paper, Section 2) stores the count of each state.
// Each step draws an ordered pair of *distinct* agents uniformly — the
// receiver is a uniform agent-slot in the cumulative count order, and the
// sender is drawn by rejection: uniform agent-slots are redrawn until one
// differs from the receiver's slot, which is exactly uniform over the other
// n−1 agents and never mutates the Fenwick tree.  The fired transition comes
// from the sparse dispatch table (sim/dispatch.hpp); deterministic cells skip
// the rate draw entirely.
//
// Two construction modes share every hot path:
//   * eager — a complete `FiniteSpec` compiled to a `DispatchTable` up front;
//   * lazy  — a `JitCompiler` (compile/lazy.hpp) that compiles each
//     (receiver, sender) pair on first contact; the simulator grows its
//     Fenwick sampler whenever the JIT interns new states.
//
// For protocols with S = O(1) states this is dramatically faster than
// per-agent simulation (no Θ(n) agent array to touch) and is exact: the
// induced Markov chain on configurations is identical to the agent-level one.
// For Θ(√n)-interaction batches on top of the same dispatch table, see
// sim/batched_count_simulation.hpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/dispatch.hpp"
#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "sim/rng.hpp"
#include "sim/shared_dispatch.hpp"
#include "sim/weighted_sampler.hpp"

namespace pops {

class CountSimulation {
 public:
  CountSimulation(FiniteSpec spec, std::uint64_t seed,
                  DispatchTable::RowLayout layout = DispatchTable::RowLayout::kAuto)
      : spec_storage_(std::move(spec)),
        spec_(&spec_storage_),
        rng_(seed),
        sampler_(spec_storage_.num_states()) {
    spec_storage_.validate();
    table_storage_ = DispatchTable(spec_storage_, layout);
    dispatch_ = &table_storage_;
  }

  /// Lazy/JIT mode: pairs compile on first contact; `jit` must outlive the
  /// simulator (it owns the growing table and the interned state names).
  /// Multiple simulators on different threads may share one `jit` source —
  /// its table is lock-free to read and compile_pair is sharded.
  CountSimulation(JitCompiler& jit, std::uint64_t seed)
      : spec_(&jit.spec()),
        rng_(seed),
        sampler_(jit.table().num_states()),
        jit_table_(&jit.table()),
        jit_(&jit) {}

  // spec_/dispatch_ point into own storage in eager mode; copies would dangle.
  CountSimulation(const CountSimulation&) = delete;
  CountSimulation& operator=(const CountSimulation&) = delete;

  /// Set the initial count of a state (before stepping).
  void set_count(const std::string& state, std::uint64_t count) {
    set_count(spec_->id(state), count);
  }
  void set_count(std::uint32_t state, std::uint64_t count) {
    sync_states();
    sampler_.set_count(state, count);
  }

  std::uint64_t count(const std::string& state) const {
    return spec_->has_state(state) ? count(spec_->id(state)) : 0;
  }
  std::uint64_t count(std::uint32_t state) const {
    return state < sampler_.size() ? sampler_.count(state) : 0;
  }
  std::uint64_t population_size() const { return sampler_.total(); }
  std::uint64_t interactions() const { return interactions_; }
  const FiniteSpec& spec() const { return *spec_; }

  double time() const {
    return static_cast<double>(interactions_) / static_cast<double>(population_size());
  }

  /// One interaction.
  void step() {
    sync_states();  // another simulator on the same JIT source may have grown it
    const std::uint64_t n = population_size();
    POPS_REQUIRE(n >= 2, "population too small to interact");
    // Receiver: a uniform agent-slot.  Sender: rejection over agent-slots —
    // redraw on the receiver's exact slot, so the tree is never touched just
    // to exclude one agent (expected < 2 draws even for n = 2).
    const std::uint64_t receiver_slot = rng_.below(n);
    const std::size_t receiver = sampler_.find(receiver_slot);
    std::uint64_t sender_slot = rng_.below(n);
    while (sender_slot == receiver_slot) sender_slot = rng_.below(n);
    const std::size_t sender = sampler_.find(sender_slot);
    apply(static_cast<std::uint32_t>(receiver), static_cast<std::uint32_t>(sender));
    ++interactions_;
  }

  void steps(std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step();
  }

  void advance_time(double dt) {
    POPS_REQUIRE(dt >= 0.0, "advance_time needs dt >= 0");
    steps(static_cast<std::uint64_t>(dt * static_cast<double>(population_size())));
  }

  template <typename Pred>
  double run_until(Pred&& done, double check_dt = 1.0, double max_time = 1e12) {
    POPS_REQUIRE(check_dt > 0.0, "run_until needs check_dt > 0");
    while (time() < max_time) {
      if (done(*this)) return time();
      advance_time(check_dt);
    }
    return done(*this) ? time() : -1.0;
  }

  /// Snapshot of all counts, indexed by state id.
  std::vector<std::uint64_t> counts() const { return sampler_.counts(); }

 private:
  /// Dispatch lookup with the JIT fallback: an unregistered pair under a lazy
  /// source is compiled in place (possibly interning new states) and looked
  /// up again.  Compilation consumes no simulation randomness, so lazy runs
  /// are deterministic under a fixed seed.
  DispatchTable::Cell lookup(std::uint32_t receiver, std::uint32_t sender) {
    if (jit_ == nullptr) return dispatch_->find(receiver, sender);
    DispatchTable::Cell cell = jit_table_->find(receiver, sender);
    if (!cell.present) [[unlikely]] {
      jit_->compile_pair(receiver, sender);
      sync_states();
      cell = jit_table_->find(receiver, sender);
    }
    return cell;
  }

  std::uint32_t dispatch_num_states() const {
    return jit_ != nullptr ? jit_table_->num_states() : dispatch_->num_states();
  }

  void sync_states() {
    if (dispatch_num_states() > sampler_.size()) sampler_.grow(dispatch_num_states());
  }

  void apply(std::uint32_t receiver, std::uint32_t sender) {
    const DispatchTable::Cell cell = lookup(receiver, sender);
    switch (cell.kind) {
      case DispatchTable::CellKind::kNull:
        return;
      case DispatchTable::CellKind::kDeterministic:
        fire(*cell.begin, receiver, sender);
        return;
      case DispatchTable::CellKind::kRandomized: {
        const auto* e = DispatchTable::pick(cell, rng_.uniform_double());
        if (e != nullptr) fire(*e, receiver, sender);
        return;  // nullptr: residual probability mass, null transition
      }
    }
  }

  void fire(const DispatchTable::Entry& e, std::uint32_t receiver,
            std::uint32_t sender) {
    // A cell compiled by *another* simulator thread sharing our JIT source
    // can reference states interned after our last sync.
    if (std::max(e.out_receiver, e.out_sender) >= sampler_.size()) [[unlikely]] {
      sync_states();
    }
    if (e.out_receiver != receiver) {
      sampler_.add(receiver, -1);
      sampler_.add(e.out_receiver, +1);
    }
    if (e.out_sender != sender) {
      sampler_.add(sender, -1);
      sampler_.add(e.out_sender, +1);
    }
  }

  FiniteSpec spec_storage_;       ///< owned in eager mode; empty in lazy mode
  const FiniteSpec* spec_;
  Rng rng_;
  WeightedSampler sampler_;
  DispatchTable table_storage_;   ///< owned in eager mode; empty in lazy mode
  const DispatchTable* dispatch_ = nullptr;
  const ConcurrentDispatchTable* jit_table_ = nullptr;  ///< lazy mode only
  JitCompiler* jit_ = nullptr;
  std::uint64_t interactions_ = 0;
};

}  // namespace pops
