// Count-based (configuration-vector) simulator for finite-state protocols.
//
// A configuration ~c ∈ N^Λ (paper, Section 2) stores the count of each state.
// Each step draws an ordered pair of *distinct* agents uniformly — the
// receiver is a uniform agent-slot in the cumulative count order, and the
// sender is drawn by rejection: uniform agent-slots are redrawn until one
// differs from the receiver's slot, which is exactly uniform over the other
// n−1 agents and never mutates the Fenwick tree.  The fired transition comes
// from a CSR dispatch table (sim/dispatch.hpp); deterministic cells skip the
// rate draw entirely.
//
// For protocols with S = O(1) states this is dramatically faster than
// per-agent simulation (no Θ(n) agent array to touch) and is exact: the
// induced Markov chain on configurations is identical to the agent-level one.
// For Θ(√n)-interaction batches on top of the same dispatch table, see
// sim/batched_count_simulation.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/dispatch.hpp"
#include "sim/finite_spec.hpp"
#include "sim/require.hpp"
#include "sim/rng.hpp"
#include "sim/weighted_sampler.hpp"

namespace pops {

class CountSimulation {
 public:
  CountSimulation(FiniteSpec spec, std::uint64_t seed)
      : spec_(std::move(spec)), rng_(seed), sampler_(spec_.num_states()) {
    spec_.validate();
    dispatch_ = DispatchTable(spec_);
  }

  /// Set the initial count of a state (before stepping).
  void set_count(const std::string& state, std::uint64_t count) {
    sampler_.set_count(spec_.id(state), count);
  }
  void set_count(std::uint32_t state, std::uint64_t count) {
    sampler_.set_count(state, count);
  }

  std::uint64_t count(const std::string& state) const {
    return spec_.has_state(state) ? sampler_.count(spec_.id(state)) : 0;
  }
  std::uint64_t count(std::uint32_t state) const { return sampler_.count(state); }
  std::uint64_t population_size() const { return sampler_.total(); }
  std::uint64_t interactions() const { return interactions_; }
  const FiniteSpec& spec() const { return spec_; }

  double time() const {
    return static_cast<double>(interactions_) / static_cast<double>(population_size());
  }

  /// One interaction.
  void step() {
    const std::uint64_t n = population_size();
    POPS_REQUIRE(n >= 2, "population too small to interact");
    // Receiver: a uniform agent-slot.  Sender: rejection over agent-slots —
    // redraw on the receiver's exact slot, so the tree is never touched just
    // to exclude one agent (expected < 2 draws even for n = 2).
    const std::uint64_t receiver_slot = rng_.below(n);
    const std::size_t receiver = sampler_.find(receiver_slot);
    std::uint64_t sender_slot = rng_.below(n);
    while (sender_slot == receiver_slot) sender_slot = rng_.below(n);
    const std::size_t sender = sampler_.find(sender_slot);
    apply(static_cast<std::uint32_t>(receiver), static_cast<std::uint32_t>(sender));
    ++interactions_;
  }

  void steps(std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step();
  }

  void advance_time(double dt) {
    POPS_REQUIRE(dt >= 0.0, "advance_time needs dt >= 0");
    steps(static_cast<std::uint64_t>(dt * static_cast<double>(population_size())));
  }

  template <typename Pred>
  double run_until(Pred&& done, double check_dt = 1.0, double max_time = 1e12) {
    POPS_REQUIRE(check_dt > 0.0, "run_until needs check_dt > 0");
    while (time() < max_time) {
      if (done(*this)) return time();
      advance_time(check_dt);
    }
    return done(*this) ? time() : -1.0;
  }

  /// Snapshot of all counts, indexed by state id.
  std::vector<std::uint64_t> counts() const { return sampler_.counts(); }

 private:
  void apply(std::uint32_t receiver, std::uint32_t sender) {
    const std::size_t cell = dispatch_.cell(receiver, sender);
    switch (dispatch_.kind(cell)) {
      case DispatchTable::CellKind::kNull:
        return;
      case DispatchTable::CellKind::kDeterministic:
        fire(dispatch_.only(cell), receiver, sender);
        return;
      case DispatchTable::CellKind::kRandomized: {
        const auto* e = dispatch_.pick(cell, rng_.uniform_double());
        if (e != nullptr) fire(*e, receiver, sender);
        return;  // nullptr: residual probability mass, null transition
      }
    }
  }

  void fire(const DispatchTable::Entry& e, std::uint32_t receiver,
            std::uint32_t sender) {
    if (e.out_receiver != receiver) {
      sampler_.add(receiver, -1);
      sampler_.add(e.out_receiver, +1);
    }
    if (e.out_sender != sender) {
      sampler_.add(sender, -1);
      sampler_.add(e.out_sender, +1);
    }
  }

  FiniteSpec spec_;
  Rng rng_;
  WeightedSampler sampler_;
  DispatchTable dispatch_;
  std::uint64_t interactions_ = 0;
};

}  // namespace pops
