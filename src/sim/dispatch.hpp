// Flattened transition dispatch shared by the count-based simulators.
//
// `FiniteSpec` stores transitions as an edit-friendly list; the simulators
// need the inverse view — "given the input pair (receiver, sender), which
// transitions can fire?" — on the hottest path.  `DispatchTable` compiles the
// spec into a CSR (compressed sparse row) layout over the S×S input-pair
// grid: one contiguous entry array plus offsets, with a per-cell kind tag so
// the common cases cost no indirection and no RNG:
//   * kNull          — no registered transition: the interaction is a no-op;
//   * kDeterministic — exactly one transition with rate 1.0: fire it without
//     consuming randomness (most paper protocols are deterministic, so this
//     skips a uniform_double() per interaction);
//   * kRandomized    — general case: choose among entries (or the residual
//     null transition) by cumulative rate.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/finite_spec.hpp"

namespace pops {

class DispatchTable {
 public:
  struct Entry {
    std::uint32_t out_receiver = 0;
    std::uint32_t out_sender = 0;
    double rate = 1.0;
  };

  enum class CellKind : std::uint8_t { kNull, kDeterministic, kRandomized };

  DispatchTable() = default;

  explicit DispatchTable(const FiniteSpec& spec) : num_states_(spec.num_states()) {
    const std::size_t cells =
        static_cast<std::size_t>(num_states_) * num_states_;
    // Counting pass, then prefix-sum into CSR offsets.
    std::vector<std::uint32_t> cell_sizes(cells, 0);
    for (const auto& t : spec.transitions()) ++cell_sizes[cell_index(t)];
    offsets_.assign(cells + 1, 0);
    for (std::size_t c = 0; c < cells; ++c) {
      offsets_[c + 1] = offsets_[c] + cell_sizes[c];
    }
    entries_.resize(spec.transitions().size());
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const auto& t : spec.transitions()) {
      entries_[cursor[cell_index(t)]++] =
          Entry{t.out_receiver, t.out_sender, t.rate};
    }
    kinds_.assign(cells, CellKind::kNull);
    for (std::size_t c = 0; c < cells; ++c) {
      const std::uint32_t len = offsets_[c + 1] - offsets_[c];
      if (len == 0) continue;
      kinds_[c] = (len == 1 && entries_[offsets_[c]].rate >= 1.0)
                      ? CellKind::kDeterministic
                      : CellKind::kRandomized;
    }
  }

  std::uint32_t num_states() const { return num_states_; }

  std::size_t cell(std::uint32_t receiver, std::uint32_t sender) const {
    return static_cast<std::size_t>(receiver) * num_states_ + sender;
  }

  CellKind kind(std::size_t cell) const { return kinds_[cell]; }
  const Entry* begin(std::size_t cell) const { return entries_.data() + offsets_[cell]; }
  const Entry* end(std::size_t cell) const {
    return entries_.data() + offsets_[cell + 1];
  }
  /// The sole entry of a deterministic cell.
  const Entry& only(std::size_t cell) const { return entries_[offsets_[cell]]; }

  /// Select the entry of a randomized cell fired by rate draw `u` (uniform in
  /// [0, 1)), or nullptr for the residual null transition.  Both count
  /// simulators route their rate draws through here so the cumulative walk
  /// (and its floating-point residual handling) exists exactly once.
  const Entry* pick(std::size_t cell, double u) const {
    for (const Entry* e = begin(cell); e != end(cell); ++e) {
      if (u < e->rate) return e;
      u -= e->rate;
    }
    return nullptr;
  }

 private:
  std::size_t cell_index(const Transition& t) const {
    return static_cast<std::size_t>(t.in_receiver) * num_states_ + t.in_sender;
  }

  std::uint32_t num_states_ = 0;
  std::vector<std::uint32_t> offsets_;
  std::vector<Entry> entries_;
  std::vector<CellKind> kinds_;
};

}  // namespace pops
