// Flattened transition dispatch shared by the count-based simulators.
//
// `FiniteSpec` stores transitions as an edit-friendly list; the simulators
// need the inverse view — "given the input pair (receiver, sender), which
// transitions can fire?" — on the hottest path.  `DispatchTable` compiles the
// spec into per-receiver *rows* over the S×S input-pair grid instead of the
// former dense S² offset/kind arrays (which were the memory floor at ~10⁴
// states and made incremental extension impossible):
//
//   * sorted row  — column ids in ascending order + parallel cell ids;
//     lookup is a binary search over the row's occupancy (compiled specs
//     touch a sliver of each row, so this is the common layout);
//   * direct row  — a column-indexed array of cell ids; O(1) lookup, chosen
//     when the row's occupancy makes the array worth its S slots (and always
//     for small S, where the array is a cache line anyway).
//
// Rows choose their layout independently by occupancy (`RowLayout::kAuto`);
// tests can force all-sorted or all-direct — the two layouts index the same
// entry storage, so trajectories under a fixed seed are bit-identical.
//
// Cells carry a kind tag so the common cases cost no indirection and no RNG:
//   * kNull          — no registered transition: the interaction is a no-op;
//   * kDeterministic — exactly one transition with rate 1.0: fire it without
//     consuming randomness (most paper protocols are deterministic, so this
//     skips a uniform_double() per interaction);
//   * kRandomized    — general case: choose among entries (or the residual
//     null transition) by cumulative rate.
//
// The table also extends *incrementally* (`grow_states` + `set_cell`), and a
// registered cell — even an explicitly null one — reports `Cell::present`.
// The lazy/JIT compilation path no longer uses this table: it registers
// cells into the thread-safe `ConcurrentDispatchTable`
// (sim/shared_dispatch.hpp), which shares this table's Entry/Cell types so
// the simulators' dispatch code is layout-agnostic.  This table stays the
// eager build: single-threaded construction, then read-only (safe to share
// across simulator threads).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/finite_spec.hpp"
#include "sim/require.hpp"

namespace pops {

class DispatchTable {
 public:
  struct Entry {
    std::uint32_t out_receiver = 0;
    std::uint32_t out_sender = 0;
    double rate = 1.0;
  };

  enum class CellKind : std::uint8_t { kNull, kDeterministic, kRandomized };

  /// Row-layout policy.  kAuto picks per row by occupancy; kSorted/kDirect
  /// force one layout everywhere (equivalence tests A/B the two).
  enum class RowLayout : std::uint8_t { kAuto, kSorted, kDirect };

  /// Resolved view of one (receiver, sender) cell — the hot-path handle
  /// returned by `find`.  Pointers remain valid until the table is next
  /// extended (`set_cell`), which only the JIT path does, between lookups.
  struct Cell {
    const Entry* begin = nullptr;
    const Entry* end = nullptr;
    CellKind kind = CellKind::kNull;
    bool clamp = false;    ///< rates cover 1.0: no residual null mass
    bool present = false;  ///< cell explicitly registered (JIT bookkeeping)
  };

  DispatchTable() = default;

  /// Empty table over `num_states` states; cells arrive via `set_cell`.
  DispatchTable(std::uint32_t num_states, RowLayout layout)
      : num_states_(num_states), layout_(layout) {
    rows_.resize(num_states);
  }

  /// Eager build from a complete spec: group the transition list into cells
  /// without ever materializing the S² grid (counting sort by receiver, then
  /// an in-row stable sort by sender keeps each cell's entries in spec
  /// order, which fixes the cumulative-rate walk and the binomial-split
  /// order independently of the row layout).
  explicit DispatchTable(const FiniteSpec& spec, RowLayout layout = RowLayout::kAuto)
      : num_states_(spec.num_states()), layout_(layout) {
    rows_.resize(num_states_);
    const auto& ts = spec.transitions();
    std::vector<std::uint32_t> row_start(num_states_ + 1, 0);
    for (const auto& t : ts) ++row_start[t.in_receiver + 1];
    for (std::uint32_t r = 0; r < num_states_; ++r) row_start[r + 1] += row_start[r];
    std::vector<std::uint32_t> order(ts.size());
    {
      std::vector<std::uint32_t> cursor(row_start.begin(), row_start.end() - 1);
      for (std::uint32_t i = 0; i < ts.size(); ++i) order[cursor[ts[i].in_receiver]++] = i;
    }
    entries_.reserve(ts.size());
    for (std::uint32_t r = 0; r < num_states_; ++r) {
      const auto row_begin = order.begin() + row_start[r];
      const auto row_end = order.begin() + row_start[r + 1];
      std::stable_sort(row_begin, row_end, [&](std::uint32_t a, std::uint32_t b) {
        return ts[a].in_sender < ts[b].in_sender;
      });
      for (auto it = row_begin; it != row_end;) {
        const std::uint32_t s = ts[*it].in_sender;
        const std::uint32_t first = static_cast<std::uint32_t>(entries_.size());
        double total = 0.0;
        while (it != row_end && ts[*it].in_sender == s) {
          const Transition& t = ts[*it];
          entries_.push_back(Entry{t.out_receiver, t.out_sender, t.rate});
          total += t.rate;
          ++it;
        }
        append_cell(r, s, first, static_cast<std::uint32_t>(entries_.size()) - first,
                    total);
      }
    }
  }

  std::uint32_t num_states() const { return num_states_; }
  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_entries() const { return entries_.size(); }

  /// Extend the state space (new states have empty rows until `set_cell`).
  void grow_states(std::uint32_t num_states) {
    POPS_REQUIRE(num_states >= num_states_, "dispatch table cannot shrink");
    num_states_ = num_states;
    rows_.resize(num_states);
  }

  /// Register the cell for pair (r, s): `len` entries starting at `cell`
  /// (len 0 records an explicitly null cell).  Each pair registers once.
  void set_cell(std::uint32_t r, std::uint32_t s, const Entry* cell, std::uint32_t len) {
    POPS_REQUIRE(r < num_states_ && s < num_states_, "set_cell state out of range");
    POPS_REQUIRE(!find(r, s).present, "pair registered twice");
    const std::uint32_t first = static_cast<std::uint32_t>(entries_.size());
    double total = 0.0;
    for (std::uint32_t i = 0; i < len; ++i) {
      entries_.push_back(cell[i]);
      total += cell[i].rate;
    }
    append_cell(r, s, first, len, total);
  }

  Cell find(std::uint32_t receiver, std::uint32_t sender) const {
    const Row& row = rows_[receiver];
    std::uint32_t cell_id = kNoCell;
    if (row.is_direct) {
      if (sender < row.direct.size()) cell_id = row.direct[sender];
    } else {
      const auto it = std::lower_bound(row.cols.begin(), row.cols.end(), sender);
      if (it != row.cols.end() && *it == sender) {
        cell_id = row.cell_ids[static_cast<std::size_t>(it - row.cols.begin())];
      }
    }
    if (cell_id == kNoCell) return Cell{};
    const CellMeta& m = cells_[cell_id];
    const Entry* base = entries_.data() + m.first;
    return Cell{base, base + m.len, m.kind, m.clamp, true};
  }

  /// Select the entry of a randomized cell fired by rate draw `u` (uniform in
  /// [0, 1)), or nullptr for the residual null transition.  Both count
  /// simulators route their rate draws through here so the cumulative walk
  /// (and its floating-point residual handling) exists exactly once.  When
  /// the cell's rates sum to (at least) 1.0 there is no residual null mass,
  /// yet accumulated rounding in the subtraction chain can let `u` fall off
  /// the end — `clamp` assigns that stray sliver to the last entry instead of
  /// spuriously returning the null transition.
  static const Entry* pick(const Cell& cell, double u) {
    for (const Entry* e = cell.begin; e != cell.end; ++e) {
      if (u < e->rate) return e;
      u -= e->rate;
    }
    return cell.clamp ? cell.end - 1 : nullptr;
  }

 private:
  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

  struct CellMeta {
    std::uint32_t first = 0;  ///< index into entries_
    std::uint32_t len = 0;
    CellKind kind = CellKind::kNull;
    bool clamp = false;
  };

  struct Row {
    std::vector<std::uint32_t> cols;      ///< sorted column (sender) ids
    std::vector<std::uint32_t> cell_ids;  ///< parallel to cols
    std::vector<std::uint32_t> direct;    ///< column-indexed cell ids
    bool is_direct = false;
  };

  /// A row earns the direct (column-indexed) layout when its occupancy pays
  /// for the S-slot array — or trivially, when S itself is small.
  bool wants_direct(std::size_t occupancy) const {
    if (layout_ == RowLayout::kSorted) return false;
    if (layout_ == RowLayout::kDirect) return true;
    return num_states_ <= 64 || occupancy * 8 >= num_states_;
  }

  void append_cell(std::uint32_t r, std::uint32_t s, std::uint32_t first,
                   std::uint32_t len, double total_rate) {
    const std::uint32_t cell_id = static_cast<std::uint32_t>(cells_.size());
    CellMeta m{first, len, CellKind::kNull, total_rate >= 1.0};
    if (len > 0) {
      m.kind = (len == 1 && entries_[first].rate >= 1.0) ? CellKind::kDeterministic
                                                         : CellKind::kRandomized;
    }
    cells_.push_back(m);
    Row& row = rows_[r];
    if (!row.is_direct) {
      const auto it = std::lower_bound(row.cols.begin(), row.cols.end(), s);
      row.cell_ids.insert(row.cell_ids.begin() + (it - row.cols.begin()), cell_id);
      row.cols.insert(it, s);
      if (wants_direct(row.cols.size())) {
        row.direct.assign(num_states_, kNoCell);
        for (std::size_t i = 0; i < row.cols.size(); ++i) {
          row.direct[row.cols[i]] = row.cell_ids[i];
        }
        row.cols.clear();
        row.cols.shrink_to_fit();
        row.cell_ids.clear();
        row.cell_ids.shrink_to_fit();
        row.is_direct = true;
      }
    } else {
      if (s >= row.direct.size()) row.direct.resize(num_states_, kNoCell);
      row.direct[s] = cell_id;
    }
  }

  std::uint32_t num_states_ = 0;
  RowLayout layout_ = RowLayout::kAuto;
  std::vector<Entry> entries_;   ///< per-cell contiguous runs
  std::vector<CellMeta> cells_;
  std::vector<Row> rows_;
};

}  // namespace pops
