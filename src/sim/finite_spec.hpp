// Explicit description of a finite-state population protocol.
//
// Section 4 of the paper works with a transition *relation* delta ⊆ Λ^4 with
// rate constants: a,b →ρ c,d means that when (receiver a, sender b) interact,
// with probability ρ they become (c, d).  `FiniteSpec` is that object made
// concrete: named states plus a list of randomized transitions.  It backs
//   * `CountSimulation` (exact simulation of the configuration vector), and
//   * `producibility` (the Λ^m_ρ closure used by Theorem 4.1 / Lemma 4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/require.hpp"

namespace pops {

/// One randomized transition a,b →ρ c,d (receiver a, sender b).
struct Transition {
  std::uint32_t in_receiver = 0;
  std::uint32_t in_sender = 0;
  std::uint32_t out_receiver = 0;
  std::uint32_t out_sender = 0;
  double rate = 1.0;  ///< probability of firing when (a, b) interact
};

class FiniteSpec {
 public:
  /// Builds the label of a lazily-named state on first `name()` query (see
  /// `add_unnamed_state`).  Must return the same label for the same id for
  /// the spec's lifetime (the compiler's namers render the interned typed
  /// state, which never changes).
  using LazyNamer = std::function<std::string(std::uint32_t)>;

  /// Register (or look up) a state by name; returns its dense id.
  std::uint32_t state(const std::string& name) {
    ensure_names_built();  // a lazy name may equal `name`; dedup needs them all
    sync_ids();
    auto [it, inserted] = ids_.try_emplace(name, static_cast<std::uint32_t>(names_.size()));
    if (inserted) {
      names_.push_back(name);
      ++ids_synced_;
    }
    return it->second;
  }

  /// Register a state whose label is deferred: nothing is built until the
  /// first `name()` (or name-keyed lookup) — the compiler's fast path, so
  /// JIT-heavy runs that never print names never pay the label snprintf.
  /// The namer (`set_lazy_namer`) supplies the string on demand and must
  /// return a non-empty label (the empty string marks "not built yet").
  std::uint32_t add_unnamed_state() {
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back();
    ++unbuilt_count_;
    return id;
  }

  /// Install (or replace) the label builder for lazily-named states.  The
  /// namer must outlive every deferred name query — `LazyCompiledSpec`
  /// keeps its compiler core alive for exactly this reason; the eager
  /// compiler instead calls `materialize_names()` before the spec escapes.
  void set_lazy_namer(LazyNamer namer) { namer_ = std::move(namer); }

  /// Materialize every deferred label and the name index, then drop the
  /// namer: afterwards the registry holds no reference to its producer and
  /// every const accessor is a pure read again — concurrent name lookups
  /// on the spec are safe, as they were before lazy registration existed.
  /// The eager compiler calls this once at emission, so labels are still
  /// built off the per-path hot loop (one id-ordered pass per compile).
  void materialize_names() {
    ensure_names_built();
    sync_ids();
    namer_ = nullptr;
  }

  bool has_state(const std::string& name) const {
    ensure_names_built();
    sync_ids();
    return ids_.count(name) != 0;
  }

  std::uint32_t id(const std::string& name) const {
    ensure_names_built();
    sync_ids();
    auto it = ids_.find(name);
    POPS_REQUIRE(it != ids_.end(), "unknown state: " + name);
    return it->second;
  }

  /// Name queries on lazily-registered states build (and cache) the label
  /// on first call.  While deferred labels exist (a live JIT spec), name
  /// reads require quiescence — no concurrent compilation or lookups
  /// (compile/lazy.hpp's contract); after `materialize_names()` (every
  /// eager CompileResult) all name accessors are pure concurrent-safe reads.
  const std::string& name(std::uint32_t id) const {
    if (unbuilt_count_ > 0 && names_.at(id).empty()) build_name(id);
    return names_.at(id);
  }

  std::uint32_t num_states() const { return static_cast<std::uint32_t>(names_.size()); }

  /// Add transition a,b →rate c,d.  The total rate of transitions sharing the
  /// same input pair must not exceed 1; any remainder is a null transition.
  void add(const std::string& a, const std::string& b, const std::string& c,
           const std::string& d, double rate = 1.0) {
    POPS_REQUIRE(rate > 0.0 && rate <= 1.0, "transition rate must lie in (0, 1]");
    transitions_.push_back(Transition{state(a), state(b), state(c), state(d), rate});
  }

  /// Id-based overload for machine-generated specs (compile/compiler.hpp):
  /// no name lookups on the emission path.  All ids must already exist.
  void add(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d,
           double rate = 1.0) {
    POPS_REQUIRE(rate > 0.0 && rate <= 1.0, "transition rate must lie in (0, 1]");
    const auto n = num_states();
    POPS_REQUIRE(a < n && b < n && c < n && d < n, "transition uses unknown state id");
    transitions_.push_back(Transition{a, b, c, d, rate});
  }

  /// Bulk emission for the compiler's parallel merge: append `count`
  /// value-initialized transitions and return the slice, which the caller
  /// fills concurrently (distinct slots per writer) with already-interned
  /// ids and rates in (0, 1].  add()'s per-call checks are skipped here;
  /// validate() re-checks every slot's ids and rate plus the per-pair
  /// rate discipline, and the compiler validates before a spec escapes.
  Transition* append_transitions(std::size_t count) {
    transitions_.resize(transitions_.size() + count);
    return transitions_.data() + (transitions_.size() - count);
  }

  /// Symmetric convenience: adds both a,b → c,d and b,a → d,c.
  void add_symmetric(const std::string& a, const std::string& b, const std::string& c,
                     const std::string& d, double rate = 1.0) {
    add(a, b, c, d, rate);
    if (a != b) add(b, a, d, c, rate);
  }

  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Total rate over all transitions with input pair (a, b); must be <= 1.
  double total_rate(std::uint32_t a, std::uint32_t b) const {
    double total = 0.0;
    for (const auto& t : transitions_) {
      if (t.in_receiver == a && t.in_sender == b) total += t.rate;
    }
    return total;
  }

  /// Check every transition (ids in range, rate in (0, 1] — the bulk
  /// `append_transitions` path skips add()'s per-call checks, so this is
  /// where malformed compiler output fails fast) and the rate discipline
  /// for every input pair.  Hash-keyed so compiled specs with millions of
  /// transitions validate in linear time.
  void validate() const {
    const auto n = num_states();
    std::unordered_map<std::uint64_t, double> totals;
    totals.reserve(transitions_.size());
    for (const auto& t : transitions_) {
      POPS_REQUIRE(t.in_receiver < n && t.in_sender < n && t.out_receiver < n &&
                       t.out_sender < n,
                   "transition uses unknown state id");
      POPS_REQUIRE(t.rate > 0.0 && t.rate <= 1.0, "transition rate must lie in (0, 1]");
      totals[(static_cast<std::uint64_t>(t.in_receiver) << 32) | t.in_sender] += t.rate;
    }
    for (const auto& [key, total] : totals) {
      POPS_REQUIRE(total <= 1.0 + 1e-12,
                   "transition rates for pair (" + name(static_cast<std::uint32_t>(key >> 32)) +
                       ", " + name(static_cast<std::uint32_t>(key)) + ") exceed 1");
    }
  }

 private:
  void build_name(std::uint32_t id) const {
    POPS_REQUIRE(namer_ != nullptr, "lazily-named state queried before set_lazy_namer");
    std::string label = namer_(id);
    POPS_REQUIRE(!label.empty(), "lazy namer produced an empty label");
    names_[id] = std::move(label);
    --unbuilt_count_;
  }

  /// Materialize every deferred label (name-keyed lookups and by-name
  /// registration need the full registry to dedup against).
  void ensure_names_built() const {
    if (unbuilt_count_ == 0) return;
    for (std::uint32_t id = 0; id < names_.size() && unbuilt_count_ > 0; ++id) {
      if (names_[id].empty()) build_name(id);
    }
  }

  /// Extend the name -> id index over labels registered since the last
  /// name-keyed lookup (lazily-named states bypass it on registration).
  void sync_ids() const {
    while (ids_synced_ < names_.size()) {
      const auto id = static_cast<std::uint32_t>(ids_synced_);
      const auto [it, inserted] = ids_.try_emplace(names_[id], id);
      POPS_REQUIRE(inserted, "duplicate state label: " + names_[id]);
      ++ids_synced_;
    }
  }

  mutable std::map<std::string, std::uint32_t> ids_;
  mutable std::vector<std::string> names_;
  mutable std::size_t ids_synced_ = 0;      ///< names_[0, ids_synced_) are in ids_
  mutable std::size_t unbuilt_count_ = 0;   ///< lazily-named states not yet built
  LazyNamer namer_;
  std::vector<Transition> transitions_;
};

}  // namespace pops
