// Explicit description of a finite-state population protocol.
//
// Section 4 of the paper works with a transition *relation* delta ⊆ Λ^4 with
// rate constants: a,b →ρ c,d means that when (receiver a, sender b) interact,
// with probability ρ they become (c, d).  `FiniteSpec` is that object made
// concrete: named states plus a list of randomized transitions.  It backs
//   * `CountSimulation` (exact simulation of the configuration vector), and
//   * `producibility` (the Λ^m_ρ closure used by Theorem 4.1 / Lemma 4.2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/require.hpp"

namespace pops {

/// One randomized transition a,b →ρ c,d (receiver a, sender b).
struct Transition {
  std::uint32_t in_receiver = 0;
  std::uint32_t in_sender = 0;
  std::uint32_t out_receiver = 0;
  std::uint32_t out_sender = 0;
  double rate = 1.0;  ///< probability of firing when (a, b) interact
};

class FiniteSpec {
 public:
  /// Register (or look up) a state by name; returns its dense id.
  std::uint32_t state(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(name, static_cast<std::uint32_t>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }

  bool has_state(const std::string& name) const { return ids_.count(name) != 0; }

  std::uint32_t id(const std::string& name) const {
    auto it = ids_.find(name);
    POPS_REQUIRE(it != ids_.end(), "unknown state: " + name);
    return it->second;
  }

  const std::string& name(std::uint32_t id) const { return names_.at(id); }
  std::uint32_t num_states() const { return static_cast<std::uint32_t>(names_.size()); }

  /// Add transition a,b →rate c,d.  The total rate of transitions sharing the
  /// same input pair must not exceed 1; any remainder is a null transition.
  void add(const std::string& a, const std::string& b, const std::string& c,
           const std::string& d, double rate = 1.0) {
    POPS_REQUIRE(rate > 0.0 && rate <= 1.0, "transition rate must lie in (0, 1]");
    transitions_.push_back(Transition{state(a), state(b), state(c), state(d), rate});
  }

  /// Id-based overload for machine-generated specs (compile/compiler.hpp):
  /// no name lookups on the emission path.  All ids must already exist.
  void add(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d,
           double rate = 1.0) {
    POPS_REQUIRE(rate > 0.0 && rate <= 1.0, "transition rate must lie in (0, 1]");
    const auto n = num_states();
    POPS_REQUIRE(a < n && b < n && c < n && d < n, "transition uses unknown state id");
    transitions_.push_back(Transition{a, b, c, d, rate});
  }

  /// Symmetric convenience: adds both a,b → c,d and b,a → d,c.
  void add_symmetric(const std::string& a, const std::string& b, const std::string& c,
                     const std::string& d, double rate = 1.0) {
    add(a, b, c, d, rate);
    if (a != b) add(b, a, d, c, rate);
  }

  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Total rate over all transitions with input pair (a, b); must be <= 1.
  double total_rate(std::uint32_t a, std::uint32_t b) const {
    double total = 0.0;
    for (const auto& t : transitions_) {
      if (t.in_receiver == a && t.in_sender == b) total += t.rate;
    }
    return total;
  }

  /// Check the rate discipline for every input pair that has transitions.
  /// Hash-keyed so compiled specs with millions of transitions validate in
  /// linear time.
  void validate() const {
    std::unordered_map<std::uint64_t, double> totals;
    totals.reserve(transitions_.size());
    for (const auto& t : transitions_) {
      totals[(static_cast<std::uint64_t>(t.in_receiver) << 32) | t.in_sender] += t.rate;
    }
    for (const auto& [key, total] : totals) {
      POPS_REQUIRE(total <= 1.0 + 1e-12,
                   "transition rates for pair (" + name(static_cast<std::uint32_t>(key >> 32)) +
                       ", " + name(static_cast<std::uint32_t>(key)) + ") exceed 1");
    }
  }

 private:
  std::map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
  std::vector<Transition> transitions_;
};

}  // namespace pops
