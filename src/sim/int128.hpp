// 128-bit unsigned integer alias.
//
// __int128 is a GCC/Clang extension; wrapping the typedef in __extension__
// keeps -Wpedantic happy while letting us use fast 64x64->128 multiplication
// (Lemire rejection sampling) and long tournament bitstrings.
#pragma once

namespace pops {

__extension__ typedef unsigned __int128 u128;

}  // namespace pops
