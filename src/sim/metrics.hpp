// Measurement helpers shared by tests and benchmarks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace pops {

/// Tracks the maximum value each named field of an agent state reaches during
/// a run.  Lemma 3.9 bounds the protocol's state count by the product of the
/// ranges of its fields; this recorder measures those ranges empirically.
class FieldRangeRecorder {
 public:
  void observe(const std::string& field, std::uint64_t value) {
    auto& mx = max_[field];
    mx = std::max(mx, value);
  }

  std::uint64_t max_value(const std::string& field) const {
    auto it = max_.find(field);
    return it == max_.end() ? 0 : it->second;
  }

  /// Product of (max + 1) over all observed fields: an upper bound on the
  /// number of distinct states actually used (each field ranged over
  /// {0, ..., max}).
  double state_count_bound() const {
    double product = 1.0;
    for (const auto& [_, mx] : max_) product *= static_cast<double>(mx + 1);
    return product;
  }

  const std::map<std::string, std::uint64_t>& maxima() const { return max_; }

 private:
  std::map<std::string, std::uint64_t> max_;
};

/// A (time, value) series sampled on a parallel-time grid.
struct TimeSeries {
  std::vector<double> times;
  std::vector<double> values;

  void add(double t, double v) {
    times.push_back(t);
    values.push_back(v);
  }
  std::size_t size() const { return times.size(); }
};

}  // namespace pops
