// Exhaustive configuration-space analysis for finite protocols at small n.
//
// Section 2.1 of the paper defines correctness notions on the configuration
// graph: a configuration is *stably correct* if every configuration reachable
// from it is correct; an execution *converges* when its configurations are
// correct forever after, and *stabilizes* when they are stably correct
// forever after.  For constant-state protocols and small n the reachability
// relation is finite and can be explored exhaustively, which lets tests
// verify these semantic definitions directly instead of sampling:
//
//   * `reachable_configurations(spec, from)` — BFS over the configuration
//     graph (transitions applied to every input pair with positive count).
//   * `is_stably(spec, config, predicate)` — does `predicate` hold in every
//     reachable configuration?
//   * `can_reach(spec, from, predicate)` — is a configuration satisfying
//     `predicate` reachable?
//
// Configurations are count vectors indexed by state id; population sizes of
// practical interest here are n <= ~30 with a handful of states (the
// configuration count is C(n + |Λ| − 1, |Λ| − 1)).
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "sim/finite_spec.hpp"
#include "sim/require.hpp"

namespace pops {

using Configuration = std::vector<std::uint64_t>;

/// All configurations produced by applying one transition to `config`.
inline std::vector<Configuration> successor_configurations(const FiniteSpec& spec,
                                                           const Configuration& config) {
  POPS_REQUIRE(config.size() == spec.num_states(), "configuration/spec size mismatch");
  std::set<Configuration> out;
  for (const auto& t : spec.transitions()) {
    const bool same = t.in_receiver == t.in_sender;
    const std::uint64_t need = same ? 2 : 1;
    if (config[t.in_receiver] < need || config[t.in_sender] < 1) continue;
    Configuration next = config;
    --next[t.in_receiver];
    --next[t.in_sender];
    ++next[t.out_receiver];
    ++next[t.out_sender];
    if (next != config) out.insert(std::move(next));
  }
  return {out.begin(), out.end()};
}

/// BFS closure of the reachability relation.  `max_configs` guards against
/// accidental explosion (throws if exceeded).
inline std::set<Configuration> reachable_configurations(const FiniteSpec& spec,
                                                        const Configuration& from,
                                                        std::size_t max_configs = 2000000) {
  std::set<Configuration> seen{from};
  std::queue<Configuration> frontier;
  frontier.push(from);
  while (!frontier.empty()) {
    const Configuration current = frontier.front();
    frontier.pop();
    for (auto& next : successor_configurations(spec, current)) {
      if (seen.insert(next).second) {
        POPS_REQUIRE(seen.size() <= max_configs,
                     "configuration graph larger than max_configs");
        frontier.push(next);
      }
    }
  }
  return seen;
}

/// Paper §2.1: `config` is stably-P if P holds in every reachable
/// configuration (with P = "correct" this is "stably correct").
template <typename Predicate>
bool is_stably(const FiniteSpec& spec, const Configuration& config, Predicate&& p,
               std::size_t max_configs = 2000000) {
  for (const auto& c : reachable_configurations(spec, config, max_configs)) {
    if (!p(c)) return false;
  }
  return true;
}

/// Is some configuration satisfying P reachable from `config`?
template <typename Predicate>
bool can_reach(const FiniteSpec& spec, const Configuration& config, Predicate&& p,
               std::size_t max_configs = 2000000) {
  for (const auto& c : reachable_configurations(spec, config, max_configs)) {
    if (p(c)) return true;
  }
  return false;
}

/// A configuration is silent if no transition changes it (paper §4 cites the
/// distinction between terminated and silent configurations [13]).
inline bool is_silent(const FiniteSpec& spec, const Configuration& config) {
  return successor_configurations(spec, config).empty();
}

/// Helper: build a configuration from (state name, count) pairs.
inline Configuration make_configuration(const FiniteSpec& spec,
                                        const std::map<std::string, std::uint64_t>& counts) {
  Configuration c(spec.num_states(), 0);
  for (const auto& [name, count] : counts) c[spec.id(name)] = count;
  return c;
}

}  // namespace pops
