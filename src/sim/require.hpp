// Precondition checking for the pops library.
//
// POPS_REQUIRE(cond, msg) throws std::invalid_argument when a documented
// precondition of a public API is violated.  It is always on (benchmarked
// call sites keep it out of inner loops), so misuse fails loudly in Release
// builds too.
#pragma once

#include <stdexcept>
#include <string>

namespace pops {

[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string("pops precondition violated: ") + expr + " at " +
                              file + ":" + std::to_string(line) + (msg.empty() ? "" : ": ") +
                              msg);
}

}  // namespace pops

#define POPS_REQUIRE(cond, msg)                                  \
  do {                                                           \
    if (!(cond)) {                                               \
      ::pops::require_failed(#cond, __FILE__, __LINE__, (msg));  \
    }                                                            \
  } while (false)
