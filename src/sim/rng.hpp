// Random number generation for population-protocol simulation.
//
// The paper's model (Section 2) assumes each agent has access to independent
// uniformly random bits, "pre-written on a special read-only tape".  `Rng` is
// the concrete realization of that tape: a fast, high-quality, deterministic
// generator (xoshiro256**) seeded via SplitMix64 so that any 64-bit seed gives
// a well-mixed state.
//
// Everything a protocol needs is provided as small inline methods:
//   * next()            — 64 uniform bits
//   * coin()            — one fair coin flip
//   * below(n)          — unbiased uniform draw in [0, n) (Lemire's method)
//   * geometric_fair()  — a 1/2-geometric random variable: the number of fair
//                         coin flips up to and including the first heads
//                         (support {1, 2, ...}), sampled via trailing-zero
//                         counting so it costs ~1 RNG call
//   * geometric(p)      — general p-geometric RV (support {1, 2, ...})
//   * uniform_double()  — uniform in [0, 1)
#pragma once

#include <bit>
#include <concepts>
#include <cstdint>
#include <utility>

#include "sim/int128.hpp"
#include "sim/require.hpp"

namespace pops {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state.  Also a decent standalone generator for seeding trial streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// SplitMix64's finalizer as a standalone mixing function: a bijective
/// avalanche permutation of 64 bits (every input bit flips ~half the output
/// bits).  The substream derivation below composes it to fold multiple key
/// words into one well-mixed seed.
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based RNG substream derivation: a pure function of
/// (master seed, epoch, stream) — no shared generator state — so any
/// decomposition of an epoch's random work into independently-seeded streams
/// is reproducible regardless of which thread executes which stream, or in
/// what order.  This is the keyed-substream contract the batched simulator's
/// parallel epochs rely on (one stream per (seed, epoch, shard), plus a root
/// stream per epoch) and the same idea `trial_seed` applies at trial
/// granularity: determinism comes from keying streams by *logical* position,
/// never by execution order.
///
/// Each key word passes through a full mix64 avalanche round before the next
/// is folded in (Weyl increments keep distinct (epoch, stream) pairs distinct
/// even across word boundaries), so related keys — consecutive epochs,
/// adjacent shards — yield statistically unrelated xoshiro seed expansions.
inline std::uint64_t substream_seed(std::uint64_t master, std::uint64_t epoch,
                                    std::uint64_t stream) {
  std::uint64_t z = mix64(master + 0x9e3779b97f4a7c15ULL);
  z = mix64(z ^ (epoch + 0xbf58476d1ce4e5b9ULL));
  return mix64(z ^ (stream + 0x94d049bb133111ebULL));
}

/// xoshiro256**: the simulation workhorse.  Period 2^256 - 1, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize from a 64-bit seed (expanded through SplitMix64).
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
    // An all-zero state is the one invalid state; SplitMix64 cannot emit four
    // consecutive zeros from any seed, so no further check is needed.
  }

  std::uint64_t next() {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }
  std::uint64_t operator()() { return next(); }

  /// Unbiased uniform draw in [0, n).  Lemire's multiply-shift with rejection.
  std::uint64_t below(std::uint64_t n) {
    POPS_REQUIRE(n > 0, "below(n) needs n >= 1");
    std::uint64_t x = next();
    u128 m = static_cast<u128>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<u128>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// One fair coin flip; true with probability exactly 1/2.
  bool coin() { return (next() >> 63) != 0; }

  /// A 1/2-geometric random variable: number of fair flips until and including
  /// the first heads.  Support {1, 2, ...}, mean 2 (paper, Section D.2).
  ///
  /// Implementation: the position of the first set bit in a uniform bit stream
  /// is geometric; count trailing zeros of 64-bit words.
  std::uint32_t geometric_fair() {
    std::uint32_t flips = 1;
    for (;;) {
      const std::uint64_t word = next();
      if (word != 0) {
        return flips + static_cast<std::uint32_t>(std::countr_zero(word));
      }
      flips += 64;  // astronomically rare
    }
  }

  /// Uniform double in [0, 1), 53 random bits of mantissa.
  double uniform_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// General p-geometric random variable, support {1, 2, ...}, mean 1/p.
  std::uint64_t geometric(double p) {
    POPS_REQUIRE(p > 0.0 && p <= 1.0, "geometric(p) needs p in (0, 1]");
    if (p == 1.0) return 1;
    if (p == 0.5) return geometric_fair();
    std::uint64_t count = 1;
    while (uniform_double() >= p) ++count;
    return count;
  }

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform_double() < p; }

  /// An ordered pair of distinct indices in [0, n): (receiver, sender), each
  /// ordered pair equally likely — the paper's uniform random scheduler.
  std::pair<std::uint64_t, std::uint64_t> ordered_pair(std::uint64_t n) {
    POPS_REQUIRE(n >= 2, "ordered_pair(n) needs n >= 2");
    const std::uint64_t first = below(n);
    std::uint64_t second = below(n - 1);
    if (second >= first) ++second;
    return {first, second};
  }

 private:
  std::uint64_t state_[4]{};
};

/// The random-draw interface a protocol's transition algorithm may consume.
/// Satisfied by `Rng` itself, by `CapGeometric` (compile/bounded.hpp), which
/// truncates geometric draws for the bounded-field regime, and by `ChoiceRng`
/// (compile/choice.hpp), which enumerates every branch instead of sampling.
/// Protocols written against this concept (rather than against `Rng`
/// concretely) can therefore be simulated *and* compiled to a `FiniteSpec`
/// from the same transition code.
template <typename R>
concept RandomSource = requires(R& r, double p, std::uint64_t n) {
  { r.coin() } -> std::convertible_to<bool>;
  { r.geometric_fair() } -> std::convertible_to<std::uint32_t>;
  { r.below(n) } -> std::convertible_to<std::uint64_t>;
  { r.bernoulli(p) } -> std::convertible_to<bool>;
};
static_assert(RandomSource<Rng>);

}  // namespace pops
