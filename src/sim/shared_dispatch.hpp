// Concurrency-safe dispatch table for the lazy/JIT compilation path.
//
// The eager `DispatchTable` (sim/dispatch.hpp) is built once and then only
// read — safe to share across simulator threads as-is.  The JIT path is the
// opposite: the table *grows while simulators step it*, so N trials fanned
// out over threads (harness/trials.hpp) all race lookups against whichever
// thread is compiling the next missed pair.  `ConcurrentDispatchTable` makes
// that safe with three ingredients:
//
//   * atomically published row views — each receiver's row is a per-row
//     open-addressing map from sender id to cell code, held behind an
//     atomic pointer.  Slot writes and row republications (capacity
//     doublings) are release stores; `find` is entirely lock-free (one
//     acquire load of the row pointer + acquire probes).  Old row versions
//     are retired, not freed, so a reader mid-probe never sees memory
//     disappear (total retired memory is geometric in the final row size);
//   * per-shard storage, sharded by receiver id — cell metadata and entry
//     arenas are per-shard, and all writes for a receiver's shard must be
//     serialized by the caller (`LazyCompiledSpec` holds the shard mutex
//     across explore + publish), so writers in different shards never touch
//     the same allocation;
//   * compact null pairs — a registered-but-null cell (the dominant kind
//     for saturating protocols, where finished-finished interactions are
//     no-ops) is a single reserved code in the row slot: no cell metadata,
//     no entries, 8 bytes total instead of a full Cell record.
//
// Entry/cell/row storage is chunked (StableArena / block lists), so every
// pointer a reader obtains stays valid for the table's lifetime — the
// eager table's "valid until next set_cell" caveat disappears.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/dispatch.hpp"
#include "sim/require.hpp"
#include "sim/stable_arena.hpp"

namespace pops {

class ConcurrentDispatchTable {
 public:
  using Entry = DispatchTable::Entry;
  using Cell = DispatchTable::Cell;
  using CellKind = DispatchTable::CellKind;

  static constexpr std::uint32_t kNumShards = 16;
  static std::uint32_t shard_of(std::uint32_t receiver) { return receiver % kNumShards; }

  ConcurrentDispatchTable(std::size_t max_states, std::size_t max_pairs)
      : max_states_(max_states),
        row_blocks_((max_states + kRowBlock - 1) / kRowBlock + 1) {
    shards_.reserve(kNumShards);
    for (std::uint32_t i = 0; i < kNumShards; ++i) {
      shards_.push_back(std::make_unique<Shard>(max_pairs));
    }
  }

  ConcurrentDispatchTable(const ConcurrentDispatchTable&) = delete;
  ConcurrentDispatchTable& operator=(const ConcurrentDispatchTable&) = delete;

  std::uint32_t num_states() const { return num_states_.load(std::memory_order_acquire); }

  /// Registered pairs (explicit nulls included), and the compact-null share.
  std::size_t num_cells() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->registered.load(std::memory_order_relaxed);
    return total;
  }
  std::size_t num_null_cells() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->null_cells.load(std::memory_order_relaxed);
    return total;
  }
  std::size_t num_entries() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->num_entries.load(std::memory_order_relaxed);
    return total;
  }

  /// Extend the state space (new states have empty rows until `set_cell`).
  /// Internally synchronized; monotonic.
  void grow_states(std::uint32_t num_states) {
    if (num_states <= this->num_states()) return;
    const std::lock_guard<std::mutex> lock(growth_mutex_);
    const std::uint32_t cur = num_states_.load(std::memory_order_relaxed);
    if (num_states <= cur) return;
    POPS_REQUIRE(num_states <= max_states_,
                 "dispatch table exceeds max_states; raise CompileOptions.max_states");
    for (std::size_t b = 0; b * kRowBlock < num_states; ++b) {
      if (row_blocks_[b] == nullptr) {
        auto block = std::make_unique<std::atomic<Row*>[]>(kRowBlock);
        for (std::size_t i = 0; i < kRowBlock; ++i) {
          block[i].store(nullptr, std::memory_order_relaxed);
        }
        row_blocks_[b] = std::move(block);
      }
    }
    num_states_.store(num_states, std::memory_order_release);
  }

  /// Register the cell for pair (r, s): `len` entries starting at `cell`
  /// (len 0 records a compact explicitly-null cell).  Each pair registers
  /// once.  The caller must hold the shard lock for `shard_of(r)` — the
  /// table itself does not lock; `LazyCompiledSpec` serializes explore +
  /// set_cell under one shard mutex.
  void set_cell(std::uint32_t r, std::uint32_t s, const Entry* cell, std::uint32_t len) {
    POPS_REQUIRE(r < num_states() && s < num_states(), "set_cell state out of range");
    POPS_REQUIRE(!find(r, s).present, "pair registered twice");
    Shard& sh = *shards_[shard_of(r)];
    std::uint32_t code = kNullCode;
    if (len == 0) {
      sh.null_cells.fetch_add(1, std::memory_order_relaxed);
    } else {
      Entry* dst = sh.alloc_entries(len);
      double total = 0.0;
      for (std::uint32_t i = 0; i < len; ++i) {
        dst[i] = cell[i];
        total += cell[i].rate;
      }
      const CellKind kind = (len == 1 && dst[0].rate >= 1.0) ? CellKind::kDeterministic
                                                             : CellKind::kRandomized;
      code = static_cast<std::uint32_t>(
          sh.cells.push(CellMeta{dst, len, kind, total >= 1.0}));
      sh.num_entries.fetch_add(len, std::memory_order_relaxed);
    }
    sh.registered.fetch_add(1, std::memory_order_relaxed);
    insert_slot(sh, r, s, code);
  }

  /// Lock-free lookup; safe concurrent with set_cell/grow_states from any
  /// thread.  Null cells report `present` with kind kNull and no entries.
  Cell find(std::uint32_t receiver, std::uint32_t sender) const {
    if (receiver >= num_states()) return Cell{};
    const Row* row = row_slot(receiver).load(std::memory_order_acquire);
    if (row == nullptr) return Cell{};
    const std::uint64_t want = static_cast<std::uint64_t>(sender) + 1;
    for (std::uint64_t idx = mix32(sender) & row->mask;;
         idx = (idx + 1) & row->mask) {
      const std::uint64_t slot = row->slots[idx].load(std::memory_order_acquire);
      if (slot == 0) return Cell{};
      if ((slot >> 32) == want) {
        const std::uint32_t code = static_cast<std::uint32_t>(slot);
        if (code == kNullCode) {
          return Cell{nullptr, nullptr, CellKind::kNull, false, true};
        }
        const CellMeta& m = shards_[shard_of(receiver)]->cells[code];
        return Cell{m.begin, m.begin + m.len, m.kind, m.clamp, true};
      }
    }
  }

 private:
  static constexpr std::uint32_t kNullCode = 0xFFFFFFFFu;
  static constexpr std::size_t kRowBlock = 2048;
  static constexpr std::size_t kEntryBlock = 4096;

  static std::uint64_t mix32(std::uint32_t x) {
    std::uint64_t h = (static_cast<std::uint64_t>(x) + 1) * 0x9E3779B97F4A7C15ULL;
    return h ^ (h >> 29);
  }

  struct CellMeta {
    const Entry* begin = nullptr;
    std::uint32_t len = 0;
    CellKind kind = CellKind::kNull;
    bool clamp = false;
  };

  /// One row version: an open-addressing map sender -> code.  Slots pack
  /// (sender + 1) << 32 | code; 0 = empty.
  struct Row {
    explicit Row(std::size_t capacity)
        : mask(capacity - 1), slots(new std::atomic<std::uint64_t>[capacity]) {
      for (std::size_t i = 0; i < capacity; ++i) {
        slots[i].store(0, std::memory_order_relaxed);
      }
    }
    const std::uint64_t mask;
    std::uint32_t size = 0;  ///< occupied slots; writer-only
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  struct Shard {
    explicit Shard(std::size_t max_pairs) : cells(max_pairs) {}

    /// Contiguous run of `len` entries from the shard's block list (a cell
    /// never straddles blocks); addresses are stable forever.
    Entry* alloc_entries(std::uint32_t len) {
      POPS_REQUIRE(len <= kEntryBlock, "cell exceeds entry block size");
      if (entry_fill + len > kEntryBlock) {
        entry_blocks.push_back(std::make_unique<Entry[]>(kEntryBlock));
        entry_fill = 0;
      }
      Entry* out = entry_blocks.back().get() + entry_fill;
      entry_fill += len;
      return out;
    }

    StableArena<CellMeta> cells;
    std::vector<std::unique_ptr<Entry[]>> entry_blocks;
    std::size_t entry_fill = kEntryBlock;  ///< forces first-block allocation
    std::vector<std::unique_ptr<Row>> rows;  ///< every row version (old ones retired)
    std::atomic<std::size_t> registered{0};
    std::atomic<std::size_t> null_cells{0};
    std::atomic<std::size_t> num_entries{0};
  };

  std::atomic<Row*>& row_slot(std::uint32_t receiver) const {
    return row_blocks_[receiver / kRowBlock][receiver % kRowBlock];
  }

  /// Insert (s -> code) into r's row, doubling + republishing the row when
  /// its load factor crosses 3/4.  Caller holds r's shard lock.
  void insert_slot(Shard& sh, std::uint32_t r, std::uint32_t s, std::uint32_t code) {
    std::atomic<Row*>& published = row_slot(r);
    Row* row = published.load(std::memory_order_relaxed);
    if (row == nullptr || (row->size + 1) * 4 >= (row->mask + 1) * 3) {
      const std::size_t cap =
          row == nullptr ? 8 : static_cast<std::size_t>(row->mask + 1) * 2;
      sh.rows.push_back(std::make_unique<Row>(cap));
      Row* next = sh.rows.back().get();
      if (row != nullptr) {
        next->size = row->size;
        for (std::uint64_t i = 0; i <= row->mask; ++i) {
          const std::uint64_t slot = row->slots[i].load(std::memory_order_relaxed);
          if (slot != 0) place(*next, slot);
        }
      }
      published.store(next, std::memory_order_release);  // old version retired
      row = next;
    }
    place(*row, (static_cast<std::uint64_t>(s) + 1) << 32 | code);
    ++row->size;
  }

  static void place(Row& row, std::uint64_t slot) {
    std::uint64_t idx = mix32(static_cast<std::uint32_t>((slot >> 32) - 1)) & row.mask;
    while (row.slots[idx].load(std::memory_order_relaxed) != 0) {
      idx = (idx + 1) & row.mask;
    }
    row.slots[idx].store(slot, std::memory_order_release);
  }

  std::size_t max_states_;
  std::vector<std::unique_ptr<std::atomic<Row*>[]>> row_blocks_;  ///< fixed directory
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint32_t> num_states_{0};
  std::mutex growth_mutex_;
};

/// JIT source consumed by the count simulators: compiles (receiver, sender)
/// pairs on first contact, extending `table()` and possibly interning new
/// states (growing `table().num_states()` and `spec()`'s name registry).
/// Implemented by `LazyCompiledSpec` (compile/lazy.hpp); simulators call
/// `compile_pair` exactly when `find` reports an unregistered pair.
/// `compile_pair` is internally synchronized (sharded by receiver id) and
/// may be called from any number of simulator threads; losing a compile
/// race is fine — the winner's cell is found on re-lookup.
class JitCompiler {
 public:
  virtual ~JitCompiler() = default;
  virtual void compile_pair(std::uint32_t receiver, std::uint32_t sender) = 0;
  virtual const ConcurrentDispatchTable& table() const = 0;
  virtual const FiniteSpec& spec() const = 0;
};

}  // namespace pops
