// Append-only chunked storage with stable element addresses.
//
// The concurrent compile pipeline (compile/intern.hpp, sim/shared_dispatch.hpp)
// needs containers that grow while other threads read them.  std::vector
// cannot do this — push_back reallocates, invalidating every concurrent
// reader — so `StableArena<T>` stores elements in fixed-size blocks whose
// addresses never change, behind a block-pointer directory whose capacity is
// fixed at construction (the directory vector itself never reallocates).
//
// Concurrency contract:
//   * appends (`push`) must be serialized by the caller (one writer at a
//     time — the interner and the JIT table both append under a mutex);
//   * indexed reads are lock-free and safe concurrent with appends, for any
//     index the reader learned through a release/acquire edge: either
//     `size()` (released by `push`) or a pointer/index published by the
//     caller *after* `push` returned (e.g. a dispatch-row slot).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/require.hpp"

namespace pops {

template <typename T>
class StableArena {
 public:
  /// `max_elems` bounds the arena (the directory is sized for it up front);
  /// blocks of `block_elems` elements are allocated on demand.
  explicit StableArena(std::size_t max_elems, std::size_t block_elems = 4096)
      : block_(block_elems), blocks_((max_elems + block_elems - 1) / block_elems + 1) {
    POPS_REQUIRE(block_elems > 0, "StableArena needs a positive block size");
  }

  StableArena(const StableArena&) = delete;
  StableArena& operator=(const StableArena&) = delete;

  ~StableArena() {
    const std::size_t n = size_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) slot(i)->~T();
    for (T*& b : blocks_) {
      if (b != nullptr) ::operator delete(b, std::align_val_t{alignof(T)});
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Element access; `i` must have been published to this thread (see the
  /// concurrency contract above).
  const T& operator[](std::size_t i) const { return *slot(i); }
  T& mutable_ref(std::size_t i) { return *slot(i); }

  /// Append one element and publish the new size; returns the element's
  /// index.  Callers must serialize push() invocations.
  std::size_t push(T value) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    const std::size_t b = i / block_;
    POPS_REQUIRE(b < blocks_.size(), "StableArena capacity exceeded");
    if (blocks_[b] == nullptr) {
      blocks_[b] = static_cast<T*>(
          ::operator new(block_ * sizeof(T), std::align_val_t{alignof(T)}));
    }
    new (blocks_[b] + (i % block_)) T(std::move(value));
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

 private:
  T* slot(std::size_t i) const { return blocks_[i / block_] + (i % block_); }

  std::size_t block_;
  std::vector<T*> blocks_;  ///< fixed-capacity directory; never reallocates
  std::atomic<std::size_t> size_{0};
};

}  // namespace pops
