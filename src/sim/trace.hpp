// Time-series tracing and CSV export for simulations.
//
// Experiments often need the trajectory, not just the endpoint (e.g. the
// count of infected agents over time, or the spread of epochs across the
// population).  `Trace` samples named observables on a parallel-time grid
// and renders CSV that plots directly in any tool.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/require.hpp"

namespace pops {

template <typename Sim>
class Trace {
 public:
  using Observable = std::function<double(const Sim&)>;

  /// Register a named observable; returns *this for chaining.
  Trace& observe(std::string name, Observable fn) {
    POPS_REQUIRE(rows_.empty(), "cannot add observables after sampling started");
    names_.push_back(std::move(name));
    observables_.push_back(std::move(fn));
    return *this;
  }

  /// Sample all observables at the simulation's current time.
  void sample(const Sim& sim) {
    std::vector<double> row;
    row.reserve(observables_.size() + 1);
    row.push_back(sim.time());
    for (const auto& fn : observables_) row.push_back(fn(sim));
    rows_.push_back(std::move(row));
  }

  /// Drive the simulation to `until` parallel time, sampling every `dt`.
  void run(Sim& sim, double until, double dt) {
    POPS_REQUIRE(dt > 0.0, "sampling interval must be positive");
    sample(sim);
    while (sim.time() < until) {
      sim.advance_time(dt);
      sample(sim);
    }
  }

  std::size_t samples() const { return rows_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// Value of observable `name` at sample index `i`.
  double value(std::size_t i, const std::string& name) const {
    for (std::size_t c = 0; c < names_.size(); ++c) {
      if (names_[c] == name) return rows_.at(i).at(c + 1);
    }
    POPS_REQUIRE(false, "unknown observable: " + name);
    return 0.0;  // unreachable
  }

  double time_at(std::size_t i) const { return rows_.at(i).at(0); }

  /// CSV with a header row: time,<name1>,<name2>,...
  void write_csv(std::ostream& os) const {
    os << "time";
    for (const auto& n : names_) os << ',' << n;
    os << '\n';
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) os << ',';
        os << row[c];
      }
      os << '\n';
    }
  }

 private:
  std::vector<std::string> names_;
  std::vector<Observable> observables_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace pops
