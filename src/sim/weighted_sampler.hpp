// Fenwick-tree weighted sampler over integer counts.
//
// `CountSimulation` must repeatedly (a) draw a state index with probability
// proportional to its count and (b) adjust counts by ±1.  A Fenwick (binary
// indexed) tree supports both in O(log S) for S states, which keeps the count
// simulator fast even when protocols have dozens of states.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/require.hpp"
#include "sim/rng.hpp"

namespace pops {

class WeightedSampler {
 public:
  explicit WeightedSampler(std::size_t size = 0) { resize(size); }

  void resize(std::size_t size) {
    size_ = size;
    capacity_ = size;
    tree_.assign(capacity_ + 1, 0);
    counts_.assign(size, 0);
    total_ = 0;
    // log2_ = largest power of two <= capacity (for the descend loop).
    log2_ = 1;
    while ((log2_ << 1) <= capacity_) log2_ <<= 1;
  }

  /// Extend to at least `size` items, preserving counts — the JIT compilation
  /// path (compile/lazy.hpp) interns new states mid-run.  Capacity doubles so
  /// the O(capacity) tree rebuild amortizes to O(S log S) over any growth
  /// sequence; slots beyond size() carry zero weight and are never sampled.
  void grow(std::size_t size) {
    if (size <= size_) return;
    counts_.resize(size, 0);
    size_ = size;
    if (size <= capacity_) return;
    while (capacity_ < size) capacity_ = capacity_ == 0 ? 1 : capacity_ * 2;
    tree_.assign(capacity_ + 1, 0);
    log2_ = 1;
    while ((log2_ << 1) <= capacity_) log2_ <<= 1;
    const std::vector<std::uint64_t> saved = std::move(counts_);
    rebuild(saved);  // reassigns counts_ and recomputes total_ from scratch
  }

  std::size_t size() const { return size_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::size_t i) const { return counts_.at(i); }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Add `delta` (may be negative) to the count of index `i`.
  void add(std::size_t i, std::int64_t delta) {
    POPS_REQUIRE(i < size_, "index out of range");
    POPS_REQUIRE(delta >= 0 || counts_[i] >= static_cast<std::uint64_t>(-delta),
                 "count would go negative");
    counts_[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(counts_[i]) + delta);
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) + delta);
    for (std::size_t j = i + 1; j <= capacity_; j += j & (~j + 1)) {
      tree_[j] = static_cast<std::uint64_t>(static_cast<std::int64_t>(tree_[j]) + delta);
    }
  }

  void set_count(std::size_t i, std::uint64_t value) {
    add(i, static_cast<std::int64_t>(value) - static_cast<std::int64_t>(count(i)));
  }

  /// Replace all counts at once in O(S) (vs O(S log S) via set_count) — the
  /// batched simulator rebuilds a sender sampler from scratch every epoch.
  void rebuild(const std::vector<std::uint64_t>& counts) {
    POPS_REQUIRE(counts.size() == size_, "rebuild size mismatch");
    counts_ = counts;
    total_ = 0;
    for (const auto c : counts_) total_ += c;
    // Classic linear Fenwick construction: push each node's sum to its parent.
    for (std::size_t i = 1; i <= capacity_; ++i) tree_[i] = i <= size_ ? counts_[i - 1] : 0;
    for (std::size_t i = 1; i <= capacity_; ++i) {
      const std::size_t parent = i + (i & (~i + 1));
      if (parent <= capacity_) tree_[parent] += tree_[i];
    }
  }

  /// Index of the item owning position `target` in the cumulative-count order;
  /// requires target < total().  O(log S).
  std::size_t find(std::uint64_t target) const {
    POPS_REQUIRE(target < total_, "target beyond total weight");
    std::size_t pos = 0;
    for (std::size_t step = log2_; step > 0; step >>= 1) {
      const std::size_t next = pos + step;
      if (next <= capacity_ && tree_[next] <= target) {
        pos = next;
        target -= tree_[next];
      }
    }
    return pos;  // 0-based index
  }

  /// Draw an index with probability count(i)/total().
  std::size_t sample(Rng& rng) const {
    POPS_REQUIRE(total_ > 0, "cannot sample from an empty population");
    return find(rng.below(total_));
  }

 private:
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::size_t log2_ = 1;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> tree_;    // 1-based Fenwick array
  std::vector<std::uint64_t> counts_;  // mirror for O(1) reads
};

}  // namespace pops
