// Blocked (shardable) exact samplers for executor-parallel batched epochs.
//
// The batched simulator's epoch is a chain of multivariate draws — the joint
// hypergeometric batch draw, the receiver/sender split, and the sender-slot
// shuffle that realizes the uniform bipartite matching.  Each chain is
// sequential as written (every draw conditions on the ones before it), which
// is why a lone giant-n run used to execute its Θ(√n)-interaction epochs on
// one thread.  This header factors those chains into *block* decompositions
// that are distribution-identical to the unblocked draws but expose
// independent per-block work:
//
//   * blocked multivariate hypergeometric — group the classes into
//     contiguous blocks, draw the per-block totals by a (short) sequential
//     hypergeometric chain over block masses, then resolve each block's
//     per-class counts independently.  Exact by the conditional method: a
//     multivariate hypergeometric is closed under grouping, and conditioned
//     on its block total each block is again multivariate hypergeometric.
//
//   * blocked multiset split (`split_multiset`) — deal a class multiset into
//     parts of prescribed sizes, distribution-identical to uniformly
//     shuffling the multiset and cutting it into consecutive ranges of those
//     sizes.  Implemented as a binary recursion of multivariate
//     hypergeometric splits (each node splits its multiset between the left
//     and right half of its parts); sibling subtrees consume *different
//     counter-based substreams* (sim/rng.hpp `substream_seed`), so subtrees
//     can run on different threads in any order and still produce the exact
//     sequence a serial traversal produces.
//
//   * block shuffle (`block_shuffle_fill`) — the MergeShuffle-style parallel
//     replacement for the serial Fisher–Yates sender shuffle, run in the
//     *split* direction: the slot range is cut into blocks, `split_multiset`
//     decides each block's composition (exactly the composition a uniform
//     global shuffle would put there), and each block is Fisher–Yates
//     shuffled locally with its own substream.  Uniform within each block ×
//     exact block compositions = a uniform permutation of the whole multiset,
//     with every per-block fill+shuffle independent of the others.
//
// Determinism contract (shared with the batched simulator and the compiler):
// every random decision is keyed by *logical* position — (seed, epoch,
// stream index), block index, tree node index — never by thread identity or
// execution order, so results are per-seed bit-invariant at every executor
// width.  The chi-square GOF suite (tests/test_blocked_stats.cpp) certifies
// that the blocked draws' marginals match the unblocked joint draws.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/require.hpp"
#include "sim/rng.hpp"
#include "stats/discrete.hpp"

namespace pops {

/// Hands out the independent substreams of one epoch: stream(i) is the
/// counter-based stream keyed (master, epoch, i).  Copyable and stateless —
/// any thread may materialize any stream at any time.
class SubstreamSeeder {
 public:
  SubstreamSeeder(std::uint64_t master, std::uint64_t epoch)
      : master_(master), epoch_(epoch) {}

  Rng stream(std::uint64_t index) const {
    return Rng(substream_seed(master_, epoch_, index));
  }

 private:
  std::uint64_t master_;
  std::uint64_t epoch_;
};

/// A sparse class multiset: parallel id/count arrays (ids need not be dense
/// or sorted; counts are per-id).  The blocked primitives read and write
/// this shape because the batched simulator's per-epoch structures are
/// sparse in the occupied classes.
struct ClassMultiset {
  std::vector<std::uint32_t> ids;
  std::vector<std::uint64_t> counts;  ///< counts[k] pairs with ids[k]

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto c : counts) t += c;
    return t;
  }
  void clear() {
    ids.clear();
    counts.clear();
  }
};

/// Runs the two halves of a split_multiset recursion node one after the
/// other — the serial reference invoker.  The executor-backed invoker in the
/// batched simulator runs them concurrently; because every node draws from
/// its own substream, both invokers produce bit-identical output.
struct SequentialInvoke {
  template <typename A, typename B>
  void operator()(A&& a, B&& b) const {
    a();
    b();
  }
};

namespace detail {

/// Split one recursion node's multiset among `part_sizes[plo, phi)`, writing
/// per-part class counts into `out[p]` (ids mirror the parent's ids).  One
/// tree node = one substream: node ids follow heap order from `node`, so
/// sibling subtrees never share a stream and may run concurrently (the
/// invoker decides; correctness does not depend on it).
template <typename Invoke>
void split_multiset_node(const SubstreamSeeder& seeder, std::uint64_t stream_base,
                         std::uint64_t node, const std::vector<std::uint32_t>& ids,
                         std::vector<std::uint64_t> node_counts,
                         std::uint64_t node_total,
                         const std::vector<std::uint64_t>& part_sizes,
                         std::size_t plo, std::size_t phi,
                         std::vector<ClassMultiset>& out, const Invoke& invoke) {
  if (phi - plo == 1) {
    out[plo].ids = ids;
    out[plo].counts = std::move(node_counts);
    return;
  }
  const std::size_t pmid = plo + (phi - plo) / 2;
  std::uint64_t left_total = 0;
  for (std::size_t p = plo; p < pmid; ++p) left_total += part_sizes[p];
  // One multivariate hypergeometric chain: which of this node's items land
  // in the left half of its parts.
  Rng rng = seeder.stream(stream_base + node);
  std::vector<std::uint64_t> left(node_counts.size(), 0);
  std::uint64_t remaining_total = node_total;
  std::uint64_t need = left_total;
  for (std::size_t k = 0; k < node_counts.size(); ++k) {
    const std::uint64_t c = node_counts[k];
    if (c == 0) continue;
    const std::uint64_t d = need == 0 ? 0 : hypergeometric(rng, remaining_total, c, need);
    left[k] = d;
    node_counts[k] = c - d;
    need -= d;
    remaining_total -= c;
  }
  POPS_REQUIRE(need == 0, "split_multiset: part sizes exceed multiset total");
  invoke(
      [&] {
        split_multiset_node(seeder, stream_base, 2 * node, ids, std::move(left),
                            left_total, part_sizes, plo, pmid, out, invoke);
      },
      [&] {
        split_multiset_node(seeder, stream_base, 2 * node + 1, ids,
                            std::move(node_counts), node_total - left_total,
                            part_sizes, pmid, phi, out, invoke);
      });
}

}  // namespace detail

/// Deal `multiset` into `part_sizes.size()` parts where part p receives
/// exactly part_sizes[p] items — distribution-identical to uniformly
/// shuffling the multiset's items and cutting the sequence into consecutive
/// ranges of the given sizes (only the per-part *compositions* are produced;
/// compose with a per-part shuffle for the full permutation).  Σ part_sizes
/// must equal the multiset total.  Streams [stream_base, stream_base +
/// 2·parts) are consumed, keyed by recursion-tree node — bit-reproducible
/// regardless of traversal order or thread placement.
template <typename Invoke = SequentialInvoke>
inline void split_multiset(const SubstreamSeeder& seeder, std::uint64_t stream_base,
                           const ClassMultiset& multiset,
                           const std::vector<std::uint64_t>& part_sizes,
                           std::vector<ClassMultiset>& out,
                           const Invoke& invoke = Invoke{}) {
  POPS_REQUIRE(!part_sizes.empty(), "split_multiset: need at least one part");
  out.assign(part_sizes.size(), {});
  detail::split_multiset_node(seeder, stream_base, /*node=*/1, multiset.ids,
                              multiset.counts, multiset.total(), part_sizes,
                              0, part_sizes.size(), out, invoke);
}

/// Contiguous ~equal-mass partition of `weights` into at most `max_blocks`
/// blocks of at least `min_mass` each (the last block absorbs the
/// remainder).  Returns block boundaries b_0 = 0 < b_1 < ... < b_k = size.
/// Deterministic in the weights alone — never in the executor width — which
/// is what keeps blocked draws width-invariant.
inline std::vector<std::uint32_t> plan_blocks(const std::vector<std::uint64_t>& weights,
                                              std::uint64_t total,
                                              std::uint32_t max_blocks,
                                              std::uint64_t min_mass) {
  std::vector<std::uint32_t> bounds{0};
  const auto size = static_cast<std::uint32_t>(weights.size());
  if (size == 0) {
    bounds.push_back(0);
    return bounds;
  }
  const std::uint64_t blocks_by_mass = min_mass == 0 ? max_blocks : total / min_mass;
  const std::uint32_t blocks = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, std::min<std::uint64_t>({max_blocks, blocks_by_mass, size})));
  const std::uint64_t target = (total + blocks - 1) / std::max<std::uint64_t>(blocks, 1);
  std::uint64_t acc = 0;
  for (std::uint32_t i = 0; i < size; ++i) {
    acc += weights[i];
    if (acc >= target && bounds.size() < blocks && i + 1 < size) {
      bounds.push_back(i + 1);
      acc = 0;
    }
  }
  bounds.push_back(size);
  return bounds;
}

/// Blocked multivariate hypergeometric: partition `draws` items sampled
/// without replacement across the classes of `counts` — the same
/// distribution as `multivariate_hypergeometric` (stats/discrete.hpp), but
/// decomposed into a block-level chain (root stream `stream_base`) plus one
/// independent per-block chain (stream `stream_base + 1 + b`), so the
/// per-block resolutions can run on different threads.  `run_blocks`
/// receives (num_blocks, fn) and must invoke fn(b) exactly once for every
/// block in any order (e.g. via Executor::parallel_chunks, or a plain loop).
template <typename RunBlocks>
inline void blocked_multivariate_hypergeometric(
    const SubstreamSeeder& seeder, std::uint64_t stream_base,
    const std::vector<std::uint64_t>& counts, std::uint64_t draws,
    std::vector<std::uint64_t>& out, std::uint32_t max_blocks,
    std::uint64_t min_mass, RunBlocks&& run_blocks) {
  out.assign(counts.size(), 0);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  POPS_REQUIRE(draws <= total, "blocked multivariate hypergeometric: draws > total");
  const auto bounds = plan_blocks(counts, total, max_blocks, min_mass);
  const std::size_t blocks = bounds.size() - 1;
  // Block-level chain: how many of the `draws` land in each class block.
  std::vector<std::uint64_t> block_mass(blocks, 0), block_draws(blocks, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::uint32_t i = bounds[b]; i < bounds[b + 1]; ++i) block_mass[b] += counts[i];
  }
  Rng root = seeder.stream(stream_base);
  std::uint64_t remaining_total = total, remaining = draws;
  for (std::size_t b = 0; b < blocks && remaining > 0; ++b) {
    if (block_mass[b] == 0) continue;
    const std::uint64_t k = hypergeometric(root, remaining_total, block_mass[b], remaining);
    block_draws[b] = k;
    remaining -= k;
    remaining_total -= block_mass[b];
  }
  // Per-block chains: independent streams, any order, any thread.
  run_blocks(blocks, [&](std::size_t b) {
    std::uint64_t block_remaining = block_draws[b];
    if (block_remaining == 0) return;
    Rng rng = seeder.stream(stream_base + 1 + b);
    std::uint64_t block_total = block_mass[b];
    for (std::uint32_t i = bounds[b]; i < bounds[b + 1] && block_remaining > 0; ++i) {
      if (counts[i] == 0) continue;
      const std::uint64_t k = hypergeometric(rng, block_total, counts[i], block_remaining);
      out[i] = k;
      block_remaining -= k;
      block_total -= counts[i];
    }
  });
}

/// Fill `slots[0, len)` with a uniform shuffle of `part` (a class multiset
/// with total == len) from one substream: sequential expansion then an
/// in-range Fisher–Yates.  The caller decides the block decomposition (via
/// `split_multiset`) and runs one call per block — exact block compositions
/// × uniform within-block permutations = a uniform permutation of the whole
/// multiset, i.e. the MergeShuffle-style parallel block shuffle.
inline void block_shuffle_fill(Rng& rng, const ClassMultiset& part,
                               std::uint32_t* slots, std::uint64_t len) {
  std::uint64_t w = 0;
  for (std::size_t k = 0; k < part.ids.size(); ++k) {
    for (std::uint64_t c = part.counts[k]; c > 0; --c) slots[w++] = part.ids[k];
  }
  POPS_REQUIRE(w == len, "block_shuffle_fill: part total != slot range");
  if (len < 2) return;
  for (std::uint64_t k = len - 1; k > 0; --k) {
    std::swap(slots[k], slots[rng.below(k + 1)]);
  }
}

}  // namespace pops
