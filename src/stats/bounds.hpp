// Closed forms of the analytic bounds proved in the paper, so tests and
// benches can compare Monte Carlo estimates against the exact expressions.
//
// Every function cites the paper statement it implements.  These are *upper
// bounds on failure probabilities* (or intervals): empirical frequencies must
// come out at or below them — that comparison is exactly what the TIMER / GEO
// / EPI benches print.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/require.hpp"

namespace pops {
namespace bounds {

/// n-th harmonic number H_n = sum_{k=1..n} 1/k.
inline double harmonic(std::uint64_t n) {
  if (n == 0) return 0.0;
  if (n < 1024) {
    double h = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) h += 1.0 / static_cast<double>(k);
    return h;
  }
  // Asymptotic expansion: H_n = ln n + γ + 1/(2n) − 1/(12 n^2) + O(n^-4).
  constexpr double kEulerGamma = 0.5772156649015328606;
  const double x = static_cast<double>(n);
  return std::log(x) + kEulerGamma + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
}

/// Lemma A.1 ([9]): expected epidemic completion time E[T] = ((n-1)/n) H_{n-1}.
inline double epidemic_expected_time(std::uint64_t n) {
  POPS_REQUIRE(n >= 2, "epidemic needs n >= 2");
  const double nd = static_cast<double>(n);
  return (nd - 1.0) / nd * harmonic(n - 1);
}

/// Lemma A.1: Pr[T > αu ln n] < 4 n^{−αu/4 + 1}.
inline double epidemic_upper_tail(std::uint64_t n, double alpha_u) {
  return 4.0 * std::pow(static_cast<double>(n), -alpha_u / 4.0 + 1.0);
}

/// Corollary 3.4: epidemic among a = n/c agents; Pr[T > αu ln a] <
/// a^{−(αu−4c)^2 / (12 c)}.
inline double subpopulation_epidemic_tail(std::uint64_t a, double c, double alpha_u) {
  POPS_REQUIRE(c >= 1.0, "Corollary 3.4 requires c >= 1");
  const double exponent = -(alpha_u - 4.0 * c) * (alpha_u - 4.0 * c) / (12.0 * c);
  return std::pow(static_cast<double>(a), exponent);
}

/// Lemma 3.2: Pr[| |A| − n/2 | >= a] <= 2 e^{−2a²/n} (both tails).
inline double partition_deviation_tail(std::uint64_t n, double a) {
  return 2.0 * std::exp(-2.0 * a * a / static_cast<double>(n));
}

/// Lemma 3.6: in time C ln n (C >= 3), with D = 2C + sqrt(12C),
/// Pr[some agent has >= D ln n interactions] <= 1/n.  Returns D.
inline double interaction_count_multiplier(double c) {
  POPS_REQUIRE(c >= 3.0, "Lemma 3.6 requires C >= 3");
  return 2.0 * c + std::sqrt(12.0 * c);
}

/// Lemma D.4 band for E[max of N 1/2-geometrics]:
/// log N + 1 < E[M] < log N + 3/2 (N >= 50).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double x) const { return lo < x && x < hi; }
};
inline Interval lemma_d4_mean_band(std::uint64_t n) {
  POPS_REQUIRE(n >= 50, "Lemma D.4 requires N >= 50");
  const double logn = std::log2(static_cast<double>(n));
  return {logn + 1.0, logn + 1.5};
}

/// Corollary D.6: Pr[|M − E[M]| >= λ] < 3.31 e^{−λ/2}.
inline double max_geometric_concentration_tail(double lambda) {
  return 3.31 * std::exp(-lambda / 2.0);
}

/// Lemma D.7: Pr[M >= 2 log N] < 1/N and Pr[M <= log N − log ln N] < 1/N.
inline double lemma_d7_tail(std::uint64_t n) { return 1.0 / static_cast<double>(n); }

/// Lemma D.8: S = sum of K i.i.d. maxima; Pr[|S − E[S]| >= t] <= 2 e^{K − t/4}.
inline double sum_of_maxima_tail(std::uint64_t k, double t) {
  return 2.0 * std::exp(static_cast<double>(k) - t / 4.0);
}

/// Corollary D.10: K >= 4 log N ⇒ Pr[|S/K − log N| >= 4.7] <= 2/N.
inline double cor_d10_tail(std::uint64_t n) { return 2.0 / static_cast<double>(n); }

/// Lemma E.1 (balls in bins): k initially-empty bins of n, m balls thrown;
/// Pr[<= δk bins remain empty] < (2 δ e m / n)^{δk}, for 0 < δ <= 1/2.
inline double balls_in_bins_tail(std::uint64_t n, std::uint64_t k, std::uint64_t m,
                                 double delta) {
  POPS_REQUIRE(delta > 0.0 && delta <= 0.5, "Lemma E.1 requires 0 < δ <= 1/2");
  const double base = 2.0 * delta * std::exp(1.0) * static_cast<double>(m) /
                      static_cast<double>(n);
  return std::pow(base, delta * static_cast<double>(k));
}

/// Lemma E.2: state s with initial count k, worst-case consumption;
/// Pr[∃t ∈ [0,T] count <= δk] <= (2 δ e^{3T})^{δk}.
inline double consumption_tail(std::uint64_t k, double delta, double t) {
  POPS_REQUIRE(delta > 0.0 && delta <= 0.5, "Lemma E.2 requires 0 < δ <= 1/2");
  return std::pow(2.0 * delta * std::exp(3.0 * t), delta * static_cast<double>(k));
}

/// Corollary E.3: Pr[∃t ∈ [0,1] count of s <= k/81] <= 2^{−k/81}.
inline double cor_e3_tail(std::uint64_t k) {
  return std::exp2(-static_cast<double>(k) / 81.0);
}

/// Lemma 3.8 band: logSize2 ∈ [log n − log ln n, 2 log n + 1] w.h.p.
inline Interval logsize2_band(std::uint64_t n) {
  POPS_REQUIRE(n >= 3, "band needs n >= 3");
  const double logn = std::log2(static_cast<double>(n));
  const double loglnn = std::log2(std::log(static_cast<double>(n)));
  return {logn - loglnn, 2.0 * logn + 1.0};
}

/// Theorem 3.1 error probability: estimate within 5.7 of log n w.p. >= 1 − 9/n.
inline double thm31_error_tail(std::uint64_t n) { return 9.0 / static_cast<double>(n); }

}  // namespace bounds
}  // namespace pops
