// Chi-square goodness-of-fit machinery for validating samplers and
// simulators against reference distributions.
//
// Two uses in this repo:
//   * one-sample tests: empirical counts vs an exact pmf (test_discrete);
//   * two-sample tests: do two simulators draw from the same configuration
//     distribution (test_batched_count_simulation)?
// Critical values come from the Wilson–Hilferty cube approximation, accurate
// to ~1% for df >= 3 — plenty for pass/fail thresholds at alpha = 1e-3.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/require.hpp"

namespace pops {

/// Upper critical value of the chi-square distribution with `df` degrees of
/// freedom at standard-normal quantile `z` (z = 3.09 ~ alpha = 0.001), via
/// the Wilson–Hilferty approximation.
inline double chi_square_critical(std::uint64_t df, double z = 3.09) {
  POPS_REQUIRE(df >= 1, "chi-square needs at least one degree of freedom");
  const double d = static_cast<double>(df);
  const double h = 2.0 / (9.0 * d);
  const double c = 1.0 - h + z * std::sqrt(h);
  return d * c * c * c;
}

/// One-sample chi-square statistic: observed bin counts vs expected counts.
inline double chi_square_statistic(const std::vector<double>& expected,
                                   const std::vector<std::uint64_t>& observed) {
  POPS_REQUIRE(expected.size() == observed.size(),
               "chi-square needs matching bin vectors");
  double stat = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    POPS_REQUIRE(expected[i] > 0.0, "chi-square bins need positive expectation");
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

struct TwoSampleChiSquare {
  double statistic = 0.0;
  std::uint64_t df = 0;
  bool accept(double z = 3.09) const {
    return df == 0 || statistic <= chi_square_critical(df, z);
  }
};

/// Two-sample chi-square over integer-valued outcomes: merges adjacent
/// outcomes into bins with pooled count >= `min_pooled`, then tests whether
/// both samples are plausibly drawn from the same distribution.
inline TwoSampleChiSquare two_sample_chi_square(
    const std::map<std::uint64_t, std::uint64_t>& a,
    const std::map<std::uint64_t, std::uint64_t>& b,
    std::uint64_t min_pooled = 25) {
  // Merge the outcome sets, sorted, and greedily bin until pooled mass is
  // large enough for the asymptotic test to apply.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& [k, c] : a) merged[k].first += c;
  for (const auto& [k, c] : b) merged[k].second += c;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> bins;  // (count_a, count_b)
  std::uint64_t acc_a = 0, acc_b = 0;
  for (const auto& [k, counts] : merged) {
    acc_a += counts.first;
    acc_b += counts.second;
    if (acc_a + acc_b >= min_pooled) {
      bins.emplace_back(acc_a, acc_b);
      acc_a = acc_b = 0;
    }
  }
  if (acc_a + acc_b > 0) {
    if (bins.empty()) {
      bins.emplace_back(acc_a, acc_b);
    } else {  // fold the undersized tail into the last bin
      bins.back().first += acc_a;
      bins.back().second += acc_b;
    }
  }
  std::uint64_t total_a = 0, total_b = 0;
  for (const auto& [ca, cb] : bins) {
    total_a += ca;
    total_b += cb;
  }
  TwoSampleChiSquare result;
  if (bins.size() < 2 || total_a == 0 || total_b == 0) return result;  // df = 0
  const double n_a = static_cast<double>(total_a);
  const double n_b = static_cast<double>(total_b);
  for (const auto& [ca, cb] : bins) {
    const double pooled = static_cast<double>(ca + cb);
    const double ea = pooled * n_a / (n_a + n_b);
    const double eb = pooled * n_b / (n_a + n_b);
    const double da = static_cast<double>(ca) - ea;
    const double db = static_cast<double>(cb) - eb;
    result.statistic += da * da / ea + db * db / eb;
  }
  result.df = bins.size() - 1;
  return result;
}

}  // namespace pops
