// Confidence intervals for the Monte Carlo experiments.
//
// The benches compare empirical failure frequencies against the paper's
// bounds; a Wilson score interval makes "0 failures in N trials" a
// quantitative statement instead of a shrug.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/require.hpp"

namespace pops {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 1.0;
};

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials`, at z standard normal quantiles (z = 1.96 for 95%).
inline ConfidenceInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                          double z = 1.96) {
  POPS_REQUIRE(trials > 0, "need at least one trial");
  POPS_REQUIRE(successes <= trials, "successes cannot exceed trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

/// Rule-of-three upper bound: 0 failures in N trials bounds the failure
/// probability by ~3/N at 95% confidence.
inline double rule_of_three(std::uint64_t trials) {
  POPS_REQUIRE(trials > 0, "need at least one trial");
  return 3.0 / static_cast<double>(trials);
}

/// Standard-error half-width for a sample mean (mean ± z·s/sqrt(n)).
inline double mean_half_width(double stddev, std::uint64_t count, double z = 1.96) {
  POPS_REQUIRE(count > 0, "need at least one sample");
  return z * stddev / std::sqrt(static_cast<double>(count));
}

}  // namespace pops
