// Exact samplers for the classical discrete distributions that power batched
// population-protocol simulation (ppsim-style, cf. Berenbrink et al. and
// Doty–Severson): Binomial(n, p) and Hypergeometric(N, K, n), plus the
// multivariate hypergeometric used to draw a batch's state multiset from the
// configuration vector.
//
// Both samplers switch regimes on the expected count:
//   * small mean  — sequential inversion of the pmf (O(mean) float ops,
//     no special functions);
//   * large mean  — transformed rejection: BTRS (Hörmann 1993) for the
//     binomial, HRUA* (Stadlober) for the hypergeometric, both O(1) expected
//     draws per variate.
// The rejection samplers are exact in structure; like every floating-point
// implementation (NumPy's included) their acceptance tests carry ~1ulp·|lgamma|
// absolute error, negligible below N ≈ 10^12.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/require.hpp"
#include "sim/rng.hpp"

namespace pops {

namespace detail {

/// Error of the Stirling approximation: log(k!) - [k log k - k + log(2πk)/2],
/// tabulated for small k, 3-term asymptotic series otherwise (as in BTRS).
inline double stirling_tail(double k) {
  static constexpr double kTable[] = {
      0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
      0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
      0.01189670994589177, 0.01041126526197209, 0.00925546218271273,
      0.00833056343336287};
  if (k < 10.0) return kTable[static_cast<int>(k)];
  const double kp1sq = (k + 1.0) * (k + 1.0);
  return (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp1sq) / kp1sq) / (k + 1.0);
}

/// log(k!) for integer-valued k >= 0: table lookup below 128, Stirling with
/// the tabulated tail correction above.  HRUA* spends ~9 log-factorials per
/// variate and the batched simulator draws one hypergeometric per occupied
/// class per epoch — libm's lgamma at every call was the single largest
/// slice of many-state epoch cost (NumPy's generator makes the same
/// table-plus-asymptotic tradeoff; accuracy is the usual ~1ulp·|result|).
inline double log_factorial(double k) {
  static const std::array<double, 128> table = [] {
    std::array<double, 128> t{};
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = std::lgamma(static_cast<double>(i) + 1.0);
    return t;
  }();
  if (k < 128.0) return table[static_cast<int>(k)];
  // Stirling at x = k + 1 (the base point stirling_tail's series uses):
  // log k! = lgamma(k+1) = (k + 1/2) log(k+1) − (k+1) + log(2π)/2 + tail.
  return (k + 0.5) * std::log(k + 1.0) - (k + 1.0) + 0.9189385332046727 +
         stirling_tail(k);
}

/// Binomial(n, p) via pmf inversion from k = 0.  Requires small mean
/// (np <~ 14) so the loop terminates quickly; p must be in (0, 1).
inline std::uint64_t binomial_inversion(Rng& rng, std::uint64_t n, double p) {
  const double q = 1.0 - p;
  const double dn = static_cast<double>(n);
  double f = std::exp(dn * std::log1p(-p));  // (1-p)^n without underflow
  double u = rng.uniform_double();
  std::uint64_t k = 0;
  while (u > f) {
    u -= f;
    if (k >= n) break;  // floating-point tail residue
    ++k;
    f *= (dn - static_cast<double>(k) + 1.0) * p /
         (static_cast<double>(k) * q);
    if (f <= 0.0) break;
  }
  return std::min(k, n);
}

/// Binomial(n, p) via BTRS transformed rejection (Hörmann 1993).  Requires
/// p in (0, 0.5] and np >= 10.
inline std::uint64_t binomial_btrs(Rng& rng, std::uint64_t n64, double p) {
  const double n = static_cast<double>(n64);
  const double spq = std::sqrt(n * p * (1.0 - p));
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = n * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / (1.0 - p);
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double m = std::floor((n + 1.0) * p);
  for (;;) {
    const double u = rng.uniform_double() - 0.5;
    double v = rng.uniform_double();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + c);
    if (k < 0.0 || k > n) continue;
    // Inside the tight bounding box the squeeze accepts immediately (~95%).
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (n - m + 1.0))) +
        (n + 1.0) * std::log((n - m + 1.0) / (n - k + 1.0)) +
        (k + 0.5) * std::log(r * (n - k + 1.0) / (k + 1.0)) +
        stirling_tail(m) + stirling_tail(n - m) - stirling_tail(k) -
        stirling_tail(n - k);
    if (v <= upper) return static_cast<std::uint64_t>(k);
  }
}

/// Hypergeometric via the HYP sequential algorithm (Kachitvichyanukul &
/// Schmeiser); O(sample) time, used for small samples.
inline std::uint64_t hypergeometric_hyp(Rng& rng, std::uint64_t good,
                                        std::uint64_t bad, std::uint64_t sample) {
  const double d1 = static_cast<double>(bad + good - sample);
  const double d2 = static_cast<double>(std::min(bad, good));
  double y = d2;
  std::uint64_t k = sample;
  while (y > 0.0) {
    const double u = rng.uniform_double();
    y -= std::floor(u + y / (d1 + static_cast<double>(k)));
    --k;
    if (k == 0) break;
  }
  auto z = static_cast<std::uint64_t>(d2 - y);
  if (good > bad) z = sample - z;
  return z;
}

/// Hypergeometric(N = good + bad, K = good, n = draws) via pmf inversion over
/// the good-item count, O(good) — requires draws <= bad so the support starts
/// at 0.  Batched population simulation draws one hypergeometric per occupied
/// state class per epoch, and for compiled specs most classes hold a handful
/// of agents out of n = 10⁸⁺: there `good` is tiny while both HYP (O(sample))
/// and HRUA* (~a dozen lgammas) pay costs unrelated to it.  Walking the pmf
/// from P(X = 0) = Π_{i<good} (N − draws − i)/(N − i) costs ~good multiplies.
inline std::uint64_t hypergeometric_small_good(Rng& rng, std::uint64_t good,
                                               std::uint64_t bad, std::uint64_t sample) {
  const double n = static_cast<double>(good + bad);
  const double draws = static_cast<double>(sample);
  double f = 1.0;
  for (std::uint64_t i = 0; i < good; ++i) {
    f *= (n - draws - static_cast<double>(i)) / (n - static_cast<double>(i));
  }
  double u = rng.uniform_double();
  const std::uint64_t kmax = std::min(good, sample);
  std::uint64_t k = 0;
  while (u > f && k < kmax) {
    u -= f;
    // pmf ratio: P(k+1)/P(k) = (good-k)(draws-k) / ((k+1)(bad-draws+k+1)).
    const double dk = static_cast<double>(k);
    f *= (static_cast<double>(good) - dk) * (draws - dk) /
         ((dk + 1.0) * (static_cast<double>(bad) - draws + dk + 1.0));
    ++k;
    if (f <= 0.0) break;  // floating-point tail residue
  }
  return k;
}

/// Hypergeometric via HRUA* ratio-of-uniforms rejection (Stadlober, as in
/// NumPy); O(1) expected time, used for larger samples.
inline std::uint64_t hypergeometric_hrua(Rng& rng, std::uint64_t good,
                                         std::uint64_t bad, std::uint64_t sample) {
  constexpr double kD1 = 1.7155277699214135;  // 2*sqrt(2/e)
  constexpr double kD2 = 0.8989161620588988;  // 3 - 2*sqrt(3/e)
  const std::uint64_t mingoodbad = std::min(good, bad);
  const std::uint64_t maxgoodbad = std::max(good, bad);
  const std::uint64_t popsize = good + bad;
  const std::uint64_t m = std::min(sample, popsize - sample);
  const double d4 =
      static_cast<double>(mingoodbad) / static_cast<double>(popsize);
  const double d5 = 1.0 - d4;
  const double d6 = static_cast<double>(m) * d4 + 0.5;
  const double d7 =
      std::sqrt(static_cast<double>(popsize - m) * static_cast<double>(sample) *
                    d4 * d5 / static_cast<double>(popsize - 1) +
                0.5);
  const double d8 = kD1 * d7 + kD2;
  const auto d9 = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(m + 1) * static_cast<double>(mingoodbad + 1) /
                 static_cast<double>(popsize + 2)));
  const double d10 = log_factorial(static_cast<double>(d9)) +
                     log_factorial(static_cast<double>(mingoodbad - d9)) +
                     log_factorial(static_cast<double>(m - d9)) +
                     log_factorial(static_cast<double>(maxgoodbad - m + d9));
  const double d11 = std::min(static_cast<double>(std::min(m, mingoodbad)) + 1.0,
                              std::floor(d6 + 16.0 * d7));
  double z;
  for (;;) {
    const double x = rng.uniform_double();
    const double y = rng.uniform_double();
    const double w = d6 + d8 * (y - 0.5) / x;
    if (w < 0.0 || w >= d11) continue;
    z = std::floor(w);
    const double t = d10 - (log_factorial(z) +
                            log_factorial(static_cast<double>(mingoodbad) - z) +
                            log_factorial(static_cast<double>(m) - z) +
                            log_factorial(static_cast<double>(maxgoodbad - m) + z));
    if (x * (4.0 - x) - 3.0 <= t) break;  // squeeze acceptance
    if (x * (x - t) >= 1.0) continue;     // squeeze rejection
    if (2.0 * std::log(x) <= t) break;    // full acceptance test
  }
  auto result = static_cast<std::uint64_t>(z);
  if (good > bad) result = m - result;
  if (m < sample) result = good - result;
  return result;
}

}  // namespace detail

/// Exact Binomial(n, p) sample: number of successes in n independent trials
/// of probability p.
inline std::uint64_t binomial(Rng& rng, std::uint64_t n, double p) {
  POPS_REQUIRE(p >= 0.0 && p <= 1.0, "binomial needs p in [0, 1]");
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - binomial(rng, n, 1.0 - p);
  if (static_cast<double>(n) * p < 10.0) return detail::binomial_inversion(rng, n, p);
  return detail::binomial_btrs(rng, n, p);
}

/// Exact Hypergeometric(N=total, K=good, n=draws) sample: number of good
/// items in a uniform sample of `draws` items drawn without replacement from
/// a population of `total` items of which `good` are good.
inline std::uint64_t hypergeometric(Rng& rng, std::uint64_t total,
                                    std::uint64_t good, std::uint64_t draws) {
  POPS_REQUIRE(good <= total, "hypergeometric needs good <= total");
  POPS_REQUIRE(draws <= total, "hypergeometric needs draws <= total");
  if (draws == 0 || good == 0) return 0;
  if (good == total) return draws;
  if (draws == total) return good;
  // Complement symmetry: the undrawn items are also a uniform sample, so
  // sampling the smaller side keeps HYP's loop short and keeps HRUA inside
  // its validated regime min(draws, total - draws) > 10 (as in NumPy).
  if (draws > total - draws) {
    return good - hypergeometric(rng, total, good, total - draws);
  }
  const std::uint64_t bad = total - good;
  // Few-good (or, by class symmetry X_good = draws − X_bad, few-bad) classes
  // take the O(min(good, bad)) pmf walk; its draws <= other-class guard keeps
  // the support anchored at 0.
  constexpr std::uint64_t kSmallClass = 32;
  if (good <= kSmallClass && draws <= bad) {
    return detail::hypergeometric_small_good(rng, good, bad, draws);
  }
  if (bad <= kSmallClass && draws <= good) {
    return draws - detail::hypergeometric_small_good(rng, bad, good, draws);
  }
  if (draws > 10) return detail::hypergeometric_hrua(rng, good, bad, draws);
  return detail::hypergeometric_hyp(rng, good, bad, draws);
}

/// Multivariate hypergeometric: partition `draws` items sampled without
/// replacement from classes with the given `counts` (conditional method —
/// one univariate hypergeometric per class).  `out` is resized and filled
/// with the per-class sample counts; it sums to `draws` exactly.
inline void multivariate_hypergeometric(Rng& rng,
                                        const std::vector<std::uint64_t>& counts,
                                        std::uint64_t draws,
                                        std::vector<std::uint64_t>& out) {
  out.assign(counts.size(), 0);
  std::uint64_t remaining_total = 0;
  for (const auto c : counts) remaining_total += c;
  POPS_REQUIRE(draws <= remaining_total,
               "multivariate hypergeometric needs draws <= total count");
  std::uint64_t remaining_draws = draws;
  for (std::size_t i = 0; i < counts.size() && remaining_draws > 0; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t k =
        hypergeometric(rng, remaining_total, counts[i], remaining_draws);
    out[i] = k;
    remaining_draws -= k;
    remaining_total -= counts[i];
  }
}

}  // namespace pops
