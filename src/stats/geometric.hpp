// Geometric random variables and maxima of geometric random variables.
//
// The paper's protocol rests entirely on the statistics of
// M = max(G_1, ..., G_N) for i.i.d. 1/2-geometric G_i (Section D.2):
//   * E[M] ∈ (log N + 1, log N + 3/2)                  (Lemma D.4)
//   * Pr[M >= 2 log N] < 1/N, Pr[M <= log N − log ln N] < 1/N   (Lemma D.7)
//   * Pr[|M − E[M]| >= λ] < 3.31 e^{−λ/2}               (Corollary D.6)
// This header provides both a brute-force sampler (max over N draws) and an
// exact O(1) inverse-CDF sampler used by the Monte Carlo benches (they are
// cross-validated against each other in tests).
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/require.hpp"
#include "sim/rng.hpp"

namespace pops {

/// Max of N i.i.d. 1/2-geometric RVs by brute force: O(N) RNG calls.
inline std::uint32_t max_geometric_brute(std::uint64_t n, Rng& rng) {
  POPS_REQUIRE(n >= 1, "need at least one variable");
  std::uint32_t best = 0;
  for (std::uint64_t i = 0; i < n; ++i) best = std::max(best, rng.geometric_fair());
  return best;
}

/// Max of N i.i.d. 1/2-geometric RVs via the exact CDF
/// Pr[M <= t] = (1 − 2^{−t})^N: draw U ~ Uniform(0,1) and return the smallest
/// integer t with (1 − 2^{−t})^N >= U, i.e. t = ceil(−log2(1 − U^{1/N})).
/// O(1) regardless of N — essential for Monte Carlo at N = 10^6+.
inline std::uint32_t max_geometric_exact(std::uint64_t n, Rng& rng) {
  POPS_REQUIRE(n >= 1, "need at least one variable");
  for (;;) {
    const double u = rng.uniform_double();
    // log(u)/n then expm1 for numerical stability at large n:
    // 1 - u^{1/n} = -expm1(log(u)/n).
    const double one_minus_root = -std::expm1(std::log(u) / static_cast<double>(n));
    if (one_minus_root <= 0.0) continue;  // u rounded to 1; redraw
    const double t = std::ceil(-std::log2(one_minus_root));
    return static_cast<std::uint32_t>(std::max(1.0, t));
  }
}

/// Exact E[max of N 1/2-geometrics] by summing the survival function:
/// E[M] = sum_{t>=0} Pr[M > t] = sum_{t>=0} (1 − (1 − 2^{−t})^N).
/// Used by tests as ground truth for Lemma D.4's band.
inline double max_geometric_mean_exact(std::uint64_t n) {
  POPS_REQUIRE(n >= 1, "need at least one variable");
  double mean = 0.0;
  for (std::uint32_t t = 0;; ++t) {
    const double p_gt = -std::expm1(static_cast<double>(n) * std::log1p(-std::exp2(-static_cast<double>(t))));
    mean += p_gt;
    if (p_gt < 1e-15 && t > 1) break;
  }
  return mean;
}

}  // namespace pops
