#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>

namespace pops {

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%8.3f, %8.3f) %8llu ", bin_lo(i), bin_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0) out += "overflow: " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace pops
