// Fixed-bin histogram for reporting result distributions in benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/require.hpp"

namespace pops {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
    POPS_REQUIRE(hi > lo, "histogram needs hi > lo");
    POPS_REQUIRE(bins >= 1, "histogram needs at least one bin");
  }

  void add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const auto bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                                static_cast<double>(counts_.size()));
      ++counts_[bin];
    }
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  /// ASCII rendering, one line per bin, bar length proportional to count.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace pops
