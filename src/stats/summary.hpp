// Streaming and batch summary statistics for experiment results.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/require.hpp"

namespace pops {

/// Welford-style streaming accumulator: count, mean, variance, min, max.
class Summary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// q-quantile (0 <= q <= 1) of a sample, by sorting a copy; linear
/// interpolation between order statistics.
inline double quantile(std::vector<double> xs, double q) {
  POPS_REQUIRE(!xs.empty(), "quantile of empty sample");
  POPS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile index out of [0, 1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

inline double mean_of(const std::vector<double>& xs) {
  Summary s;
  for (double x : xs) s.add(x);
  return s.mean();
}

}  // namespace pops
