// α-dense configurations and the empirical density lemma (paper Section 4,
// Lemma 4.2).
//
// A configuration ~c is α-dense when every state present occupies at least αn
// agents.  Lemma 4.2: from any sufficiently large α-dense configuration,
// every state in Λ^m_ρ reaches count >= δn within parallel time 1, w.p.
// >= 1 − 2^{−εn}.  `measure_density_lemma` runs that experiment on a
// CountSimulation and reports the minimum count each closure state attained
// by the deadline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/count_simulation.hpp"
#include "sim/finite_spec.hpp"
#include "termination/producibility.hpp"

namespace pops {

/// Is the configuration (state id → count) α-dense for population n?
inline bool is_alpha_dense(const std::vector<std::uint64_t>& counts, double alpha) {
  std::uint64_t n = 0;
  for (auto c : counts) n += c;
  if (n == 0) return false;
  const double threshold = alpha * static_cast<double>(n);
  for (auto c : counts) {
    if (c != 0 && static_cast<double>(c) < threshold) return false;
  }
  return true;
}

struct DensityLemmaResult {
  /// For each state in the closure: its count at the measurement deadline.
  std::map<std::uint32_t, std::uint64_t> final_counts;
  /// min over closure states of final count / n (the empirical δ).
  double min_fraction = 0.0;
  /// Parallel time at which every closure state first held count >= 1.
  double first_all_present_time = -1.0;
};

/// Run from the configuration currently loaded in `sim` for `deadline`
/// parallel time and measure counts of all states in `closure`.
inline DensityLemmaResult measure_density_lemma(CountSimulation& sim,
                                                const std::set<std::uint32_t>& closure,
                                                double deadline = 1.0,
                                                double check_dt = 0.01) {
  DensityLemmaResult result;
  const auto n = static_cast<double>(sim.population_size());
  while (sim.time() < deadline) {
    sim.advance_time(check_dt);
    if (result.first_all_present_time < 0.0) {
      bool all_present = true;
      for (auto s : closure) {
        if (sim.count(s) == 0) {
          all_present = false;
          break;
        }
      }
      if (all_present) result.first_all_present_time = sim.time();
    }
  }
  double min_fraction = 1.0;
  for (auto s : closure) {
    const std::uint64_t c = sim.count(s);
    result.final_counts[s] = c;
    min_fraction = std::min(min_fraction, static_cast<double>(c) / n);
  }
  result.min_fraction = min_fraction;
  return result;
}

}  // namespace pops
