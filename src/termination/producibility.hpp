// m-ρ-producibility closure Λ^m_ρ (paper Section 4).
//
// For a transition relation with rate constants, PROD_ρ(Γ) is the set of
// states producible by a single transition with rate >= ρ whose inputs lie in
// Γ.  The chain Λ^0 ⊆ Λ^1 ⊆ ... with Λ^i = Λ^{i−1} ∪ PROD_ρ(Λ^{i−1}) is the
// combinatorial core of Theorem 4.1: Lemma 4.2 shows every state in Λ^m_ρ
// reaches count δn within constant time from a sufficiently large α-dense
// configuration — including, fatally for termination, any `terminated` state
// reachable along a finite terminating execution.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "sim/finite_spec.hpp"

namespace pops {

class ProducibilityClosure {
 public:
  /// Compute levels Λ^0 ⊆ Λ^1 ⊆ ... ⊆ Λ^m from `initial` states, admitting
  /// only transitions with rate >= rho.
  ProducibilityClosure(const FiniteSpec& spec, std::set<std::uint32_t> initial,
                       std::uint32_t m, double rho) {
    levels_.push_back(std::move(initial));
    for (std::uint32_t i = 1; i <= m; ++i) {
      std::set<std::uint32_t> next = levels_.back();
      for (const auto& t : spec.transitions()) {
        if (t.rate < rho) continue;
        if (levels_.back().count(t.in_receiver) && levels_.back().count(t.in_sender)) {
          next.insert(t.out_receiver);
          next.insert(t.out_sender);
        }
      }
      const bool fixed_point = next == levels_.back();
      levels_.push_back(std::move(next));
      if (fixed_point) break;  // further levels are identical
    }
  }

  /// Λ^i_ρ (levels past the fixed point return the final level).
  const std::set<std::uint32_t>& level(std::uint32_t i) const {
    return i < levels_.size() ? levels_[i] : levels_.back();
  }

  /// The full closure reached (final level computed).
  const std::set<std::uint32_t>& closure() const { return levels_.back(); }

  /// Smallest m with s ∈ Λ^m_ρ, or −1 if s is not producible.
  std::int64_t producible_at(std::uint32_t s) const {
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (levels_[i].count(s)) return static_cast<std::int64_t>(i);
    }
    return -1;
  }

  std::uint32_t levels_computed() const {
    return static_cast<std::uint32_t>(levels_.size() - 1);
  }

 private:
  std::vector<std::set<std::uint32_t>> levels_;
};

}  // namespace pops
