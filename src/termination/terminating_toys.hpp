// Uniform dense protocols that *try* to delay a termination signal
// (illustrations of Theorem 4.1).
//
// Theorem 4.1: a uniform κ-t-terminating protocol whose valid initial
// configurations are i.o.-dense has t(n) = O(1) — the signal cannot be
// delayed past constant time, no matter the state space.  These toy
// protocols are the natural attempts a designer might make, and the TERM
// bench shows each one's first-signal time is flat (or decreasing!) in n,
// while the leader-driven protocol of Theorem 3.13 delays the signal for
// Θ(log² n):
//
//   * `FixedCountTrigger`  — terminate after T own-interactions.  Uniform ⇒ T
//     cannot depend on n; the first agent reaches T at time ≈ T/2 = O(1).
//   * `HeadsRunTrigger`    — terminate after r consecutive heads.  Some agent
//     succeeds in time O(2^r / n): *decreasing* in n.
//   * `GeometricTrigger`   — terminate if the initial geometric draw exceeds
//     g.  Pr[some agent triggers at birth] = 1 − (1 − 2^{−g})^n → 1.
//
// Each also exists as a `FiniteSpec` factory (counter chain + signal state)
// so the producibility closure of Lemma 4.2 can be computed for it.
#pragma once

#include <cstdint>
#include <string>

#include "sim/agent_simulation.hpp"
#include "sim/finite_spec.hpp"

namespace pops {

/// Terminate after a fixed number of own-interactions; signal spreads by
/// epidemic.
struct FixedCountTrigger {
  std::uint32_t threshold = 50;

  struct State {
    std::uint32_t count = 0;
    bool terminated = false;
  };

  template <RandomSource R>
  State initial(R&) const {
    return State{};
  }

  template <RandomSource R>
  void interact(State& receiver, State& sender, R&) const {
    tick(receiver);
    tick(sender);
    if (receiver.terminated || sender.terminated) {
      receiver.terminated = true;
      sender.terminated = true;
    }
  }

  void tick(State& s) const {
    ++s.count;
    if (s.count >= threshold) s.terminated = true;
  }

  /// Canonical label matching `fixed_count_trigger_spec` state names, so the
  /// compiled form round-trips onto the hand-written spec.
  std::string state_label(const State& s) const {
    return s.terminated ? "t" : "c" + std::to_string(s.count);
  }

  /// The counter of a terminated agent is dead (the signal is absorbing);
  /// pinning it at the threshold keeps the state space at threshold + 1.
  void saturate(State& s, std::uint32_t) const {
    if (s.terminated) s.count = threshold;
  }
};
static_assert(AgentProtocol<FixedCountTrigger>);

/// Terminate after a run of `run_length` consecutive heads.
struct HeadsRunTrigger {
  std::uint32_t run_length = 12;

  struct State {
    std::uint32_t run = 0;
    bool terminated = false;
  };

  template <RandomSource R>
  State initial(R&) const {
    return State{};
  }

  template <RandomSource R>
  void interact(State& receiver, State& sender, R& rng) const {
    flip(receiver, rng);
    flip(sender, rng);
    if (receiver.terminated || sender.terminated) {
      receiver.terminated = true;
      sender.terminated = true;
    }
  }

  template <RandomSource R>
  void flip(State& s, R& rng) const {
    if (rng.coin()) {
      if (++s.run >= run_length) s.terminated = true;
    } else {
      s.run = 0;
    }
  }

  std::string state_label(const State& s) const {
    return s.terminated ? "t" : "r" + std::to_string(s.run);
  }

  void saturate(State& s, std::uint32_t) const {
    if (s.terminated) s.run = run_length;
  }
};
static_assert(AgentProtocol<HeadsRunTrigger>);

/// Terminate if the agent's initial 1/2-geometric draw exceeds a threshold.
struct GeometricTrigger {
  std::uint32_t threshold = 20;

  struct State {
    bool terminated = false;
  };

  template <RandomSource R>
  State initial(R& rng) const {
    return State{rng.geometric_fair() > threshold};
  }

  template <RandomSource R>
  void interact(State& receiver, State& sender, R&) const {
    if (receiver.terminated || sender.terminated) {
      receiver.terminated = true;
      sender.terminated = true;
    }
  }

  std::string state_label(const State& s) const { return s.terminated ? "t" : "q"; }

  void saturate(State&, std::uint32_t) const {}
};
static_assert(AgentProtocol<GeometricTrigger>);

template <typename P>
bool any_terminated(const AgentSimulation<P>& sim) {
  for (const auto& a : sim.agents()) {
    if (a.terminated) return true;
  }
  return false;
}

/// FiniteSpec version of FixedCountTrigger: states c0..c_{T} (c_T = the
/// terminated signal "t"), every interaction increments both counters, and
/// t infects.  All agents start in c0, so the initial configuration is
/// 1-dense and the signal t ∈ Λ^T_1 — Lemma 4.2 applies with m = T.
///
/// Semantics match the agent-level `FixedCountTrigger` exactly (the compiler
/// round-trip in tests/test_compile.cpp checks this): `interact` ticks both
/// counters *and then* runs the infection check, so a counter crossing the
/// threshold infects its partner within the same interaction.
inline FiniteSpec fixed_count_trigger_spec(std::uint32_t threshold) {
  FiniteSpec spec;
  auto name = [&](std::uint32_t i) {
    return i >= threshold ? std::string("t") : "c" + std::to_string(i);
  };
  for (std::uint32_t i = 0; i < threshold; ++i) {
    for (std::uint32_t j = 0; j < threshold; ++j) {
      const bool fires = i + 1 >= threshold || j + 1 >= threshold;
      spec.add(name(i), name(j), fires ? "t" : name(i + 1), fires ? "t" : name(j + 1));
    }
  }
  // An existing signal infects: t, c_j → t, t  (and symmetric).
  for (std::uint32_t j = 0; j < threshold; ++j) {
    spec.add("t", name(j), "t", "t");
    spec.add(name(j), "t", "t", "t");
  }
  return spec;
}

}  // namespace pops
