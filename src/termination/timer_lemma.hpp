// Timer/density machinery of Appendix E (Lemmas E.1, E.2; Corollary E.3).
//
// Lemma E.2 bounds how fast a state can be *consumed*: with initial count k
// and the worst-case assumption that every interaction touching an s-agent
// consumes it, Pr[∃t ∈ [0,T]: count <= δk] <= (2 δ e^{3T})^{δk}.  Corollary
// E.3 (δ = 1/81, T = 1) is the engine of Lemma 4.2's induction.  These
// helpers run the worst-case consumption process and the balls-in-bins
// process of Lemma E.1 so benches can compare empirical tail frequencies to
// the closed-form bounds in stats/bounds.hpp.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/require.hpp"
#include "sim/rng.hpp"

namespace pops {

/// Worst-case consumption (proof of Lemma E.2): n agents, k of them in state
/// s; every interaction converts any touched s-agent away from s.  Runs for
/// `horizon` parallel time and returns the minimum count of s observed.
inline std::uint64_t min_count_under_consumption(std::uint64_t n, std::uint64_t k,
                                                 double horizon, Rng& rng) {
  POPS_REQUIRE(n >= 2 && k <= n, "need 2 <= n and k <= n");
  std::uint64_t remaining = k;
  std::uint64_t min_seen = k;
  const auto total = static_cast<std::uint64_t>(horizon * static_cast<double>(n));
  for (std::uint64_t i = 0; i < total && remaining > 0; ++i) {
    const auto [a, b] = rng.ordered_pair(n);
    // Agents 0..remaining-1 hold s; consumed agents are relabeled by swapping
    // with the boundary — only the count matters, so track the boundary.
    std::uint64_t consumed = 0;
    if (a < remaining) ++consumed;
    if (b < remaining) ++consumed;
    remaining -= consumed;
    min_seen = std::min(min_seen, remaining);
  }
  return min_seen;
}

/// Lemma E.1 balls-in-bins: n bins, k initially empty, throw m balls; returns
/// the number of bins still empty.  (Used to validate the Chernoff-style tail
/// (2δem/n)^{δk} that drives Lemma E.2's stochastic domination.)
inline std::uint64_t empty_bins_after_throws(std::uint64_t n, std::uint64_t k,
                                             std::uint64_t m, Rng& rng) {
  POPS_REQUIRE(n >= 1 && k <= n, "need k <= n");
  std::uint64_t empty = k;
  for (std::uint64_t i = 0; i < m && empty > 0; ++i) {
    // A ball lands in one of the k tracked bins w.p. (#still-empty)/n to
    // *fill* it; bins are exchangeable so only the count matters.
    if (rng.below(n) < empty) --empty;
  }
  return empty;
}

}  // namespace pops
