// Unit tests for the agent-level simulator: time accounting, determinism,
// run_until semantics, state planting.
#include <gtest/gtest.h>

#include "proto/epidemic.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {
namespace {

// A protocol that merely counts interactions per agent.
struct CountingProtocol {
  struct State {
    std::uint64_t count = 0;
  };
  State initial(Rng&) const { return State{}; }
  void interact(State& receiver, State& sender, Rng&) const {
    ++receiver.count;
    ++sender.count;
  }
};
static_assert(AgentProtocol<CountingProtocol>);

TEST(AgentSimulation, RejectsTooSmallPopulation) {
  EXPECT_THROW(AgentSimulation<CountingProtocol>(CountingProtocol{}, 1, 0),
               std::invalid_argument);
}

TEST(AgentSimulation, ParallelTimeIsInteractionsOverN) {
  AgentSimulation<CountingProtocol> sim(CountingProtocol{}, 10, 1);
  sim.steps(25);
  EXPECT_EQ(sim.interactions(), 25u);
  EXPECT_DOUBLE_EQ(sim.time(), 2.5);
}

TEST(AgentSimulation, EachInteractionTouchesExactlyTwoAgents) {
  AgentSimulation<CountingProtocol> sim(CountingProtocol{}, 8, 2);
  sim.steps(1000);
  std::uint64_t total = 0;
  for (const auto& a : sim.agents()) total += a.count;
  EXPECT_EQ(total, 2000u);
}

TEST(AgentSimulation, DeterministicForSameSeed) {
  AgentSimulation<CountingProtocol> a(CountingProtocol{}, 16, 99);
  AgentSimulation<CountingProtocol> b(CountingProtocol{}, 16, 99);
  a.steps(500);
  b.steps(500);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.agent(i).count, b.agent(i).count);
  }
}

TEST(AgentSimulation, AdvanceTimeRunsNTimesDtInteractions) {
  AgentSimulation<CountingProtocol> sim(CountingProtocol{}, 50, 3);
  sim.advance_time(2.0);
  EXPECT_EQ(sim.interactions(), 100u);
}

TEST(AgentSimulation, RunUntilReturnsTimeOfFirstSuccessfulCheck) {
  AgentSimulation<CountingProtocol> sim(CountingProtocol{}, 10, 4);
  const double t = sim.run_until(
      [](const AgentSimulation<CountingProtocol>& s) { return s.time() >= 3.0; }, 1.0, 100.0);
  EXPECT_GE(t, 3.0);
  EXPECT_LE(t, 4.0);
}

TEST(AgentSimulation, RunUntilHonorsCap) {
  AgentSimulation<CountingProtocol> sim(CountingProtocol{}, 10, 4);
  const double t =
      sim.run_until([](const AgentSimulation<CountingProtocol>&) { return false; }, 1.0, 5.0);
  EXPECT_LT(t, 0.0);
  EXPECT_GE(sim.time(), 5.0);
}

TEST(AgentSimulation, SetStatePlantsLeader) {
  AgentSimulation<ValueEpidemic> sim(ValueEpidemic{}, 32, 5);
  sim.set_state(0, ValueEpidemic::State{77});
  const double t = sim.run_until(
      [](const AgentSimulation<ValueEpidemic>& s) {
        for (const auto& a : s.agents()) {
          if (a.value != 77) return false;
        }
        return true;
      },
      1.0, 500.0);
  EXPECT_GE(t, 0.0) << "max-value epidemic must reach everyone";
}

TEST(AgentSimulation, RngAccessorAdvancesSharedStream) {
  AgentSimulation<CountingProtocol> sim(CountingProtocol{}, 4, 6);
  const auto before = sim.rng().next();
  const auto after = sim.rng().next();
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace pops
