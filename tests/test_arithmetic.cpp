// Tests for the paper's introductory arithmetic protocols (Section 1):
// x,q → y,y computes 2x in O(log n); x,x → y,q computes floor(x/2) in O(n).
#include <gtest/gtest.h>

#include <cmath>

#include "harness/trials.hpp"
#include "proto/arithmetic.hpp"
#include "sim/count_simulation.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

double run_doubling(std::uint64_t x, std::uint64_t q, std::uint64_t seed,
                    std::uint64_t* result) {
  CountSimulation sim(doubling_spec(), seed);
  sim.set_count("x", x);
  sim.set_count("q", q);
  const double t = sim.run_until(
      [](const CountSimulation& s) { return s.count("x") == 0; }, 0.25, 1e7);
  *result = sim.count("y");
  return t;
}

double run_halving(std::uint64_t x, std::uint64_t seed, std::uint64_t* result) {
  CountSimulation sim(halving_spec(), seed);
  sim.set_count("x", x);
  const double t = sim.run_until(
      [](const CountSimulation& s) { return s.count("x") <= 1; }, 0.25, 1e7);
  *result = sim.count("y");
  return t;
}

TEST(Arithmetic, DoublingComputesTwoX) {
  for (std::uint64_t x : {10ULL, 100ULL, 333ULL}) {
    std::uint64_t y = 0;
    const double t = run_doubling(x, 2 * x, 3 + x, &y);
    ASSERT_GE(t, 0.0);
    EXPECT_EQ(y, 2 * x) << "x=" << x;
  }
}

TEST(Arithmetic, HalvingComputesFloorXOverTwo) {
  for (std::uint64_t x : {10ULL, 101ULL, 256ULL}) {
    std::uint64_t y = 0;
    const double t = run_halving(x, 5 + x, &y);
    ASSERT_GE(t, 0.0);
    EXPECT_EQ(y, x / 2) << "x=" << x;
  }
}

TEST(Arithmetic, HalvingLeavesOddRemainder) {
  CountSimulation sim(halving_spec(), 7);
  sim.set_count("x", 7);
  ASSERT_GE(sim.run_until([](const CountSimulation& s) { return s.count("x") <= 1; }, 0.25,
                          1e7),
            0.0);
  EXPECT_EQ(sim.count("x"), 1u);  // odd leftover never reacts
  EXPECT_EQ(sim.count("y"), 3u);
}

TEST(Arithmetic, DoublingIsLogarithmicHalvingIsLinear) {
  // The paper's exponential gap: time(halving)/time(doubling) grows ~ n/log n.
  auto mean_time = [](auto runner, std::uint64_t n) {
    Summary s;
    for (int t = 0; t < 5; ++t) s.add(runner(n, trial_seed(0xA17, n + t)));
    return s.mean();
  };
  auto doubling_time = [](std::uint64_t n, std::uint64_t seed) {
    std::uint64_t y = 0;
    return run_doubling(n / 3, n - n / 3, seed, &y);
  };
  auto halving_time = [](std::uint64_t n, std::uint64_t seed) {
    std::uint64_t y = 0;
    return run_halving(n, seed, &y);
  };
  const double d_small = mean_time(doubling_time, 256);
  const double d_large = mean_time(doubling_time, 4096);
  const double h_small = mean_time(halving_time, 256);
  const double h_large = mean_time(halving_time, 4096);
  // Doubling grows ~ log: far less than 4x over a 16x size increase.
  EXPECT_LT(d_large, 4.0 * d_small);
  // Halving grows ~ linearly: at least 5x over a 16x size increase.
  EXPECT_GT(h_large, 5.0 * h_small);
  // And the gap at n = 4096 is at least an order of magnitude.
  EXPECT_GT(h_large, 10.0 * d_large);
}

TEST(Arithmetic, CopyConvertsEveryX) {
  CountSimulation sim(copy_spec(), 9);
  sim.set_count("x", 50);
  sim.set_count("q", 50);
  ASSERT_GE(sim.run_until([](const CountSimulation& s) { return s.count("x") == 0; }, 0.25,
                          1e6),
            0.0);
  EXPECT_EQ(sim.count("y"), 50u);
  EXPECT_EQ(sim.count("q"), 50u);  // catalyst preserved
}

}  // namespace
}  // namespace pops
