// Tests for the batched count simulator: API behavior, exact interaction
// accounting, and — the load-bearing property — distributional equivalence
// with the sequential CountSimulation at fixed parallel time, via two-sample
// chi-square tests on the final configuration across many trials.
//
// (The equivalence protocols are the epidemic and the 3-state majority
// protocol — the count-level core of the uniform-majority construction; the
// full Composed<MajorityStage> protocol is agent-level and cannot run on a
// configuration vector.)
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "harness/trials.hpp"
#include "proto/epidemic.hpp"
#include "proto/semilinear.hpp"
#include "sim/batched_count_simulation.hpp"
#include "sim/count_simulation.hpp"
#include "stats/chi_square.hpp"

namespace pops {
namespace {

TEST(BatchedCountSimulation, ConservesPopulation) {
  BatchedCountSimulation sim(epidemic_spec(), 1);
  sim.set_count("S", 99);
  sim.set_count("I", 1);
  sim.steps(5000);
  EXPECT_EQ(sim.population_size(), 100u);
  EXPECT_EQ(sim.count("S") + sim.count("I"), 100u);
}

TEST(BatchedCountSimulation, StepsAdvancesExactInteractionCount) {
  BatchedCountSimulation sim(epidemic_spec(), 2);
  sim.set_count("S", 9999);
  sim.set_count("I", 1);
  for (const std::uint64_t k : {1ull, 2ull, 17ull, 1000ull, 123457ull}) {
    const auto before = sim.interactions();
    sim.steps(k);
    EXPECT_EQ(sim.interactions(), before + k);
  }
  sim.advance_time(2.5);
  EXPECT_EQ(sim.interactions(), 1ull + 2 + 17 + 1000 + 123457 + 25000);
}

TEST(BatchedCountSimulation, EpidemicCompletes) {
  BatchedCountSimulation sim(epidemic_spec(), 7);
  sim.set_count("S", 999);
  sim.set_count("I", 1);
  const double t = sim.run_until(
      [](const BatchedCountSimulation& s) { return s.count("S") == 0; }, 1.0, 1000.0);
  EXPECT_GE(t, 0.0);
  EXPECT_EQ(sim.count("I"), 1000u);
}

TEST(BatchedCountSimulation, LargePopulationEpidemicCompletesFast) {
  // 10^6 agents, ~logarithmic parallel time; exercises the HRUA samplers and
  // the long-batch path end to end.
  BatchedCountSimulation sim(epidemic_spec(), 11);
  sim.set_count("S", 999999);
  sim.set_count("I", 1);
  const double t = sim.run_until(
      [](const BatchedCountSimulation& s) { return s.count("S") == 0; }, 2.0, 200.0);
  EXPECT_GE(t, 0.0);
  EXPECT_LE(t, 60.0);  // epidemic finishes in ~2 lg n ~ 40 parallel time whp
  EXPECT_EQ(sim.count("I"), 1000000u);
}

TEST(BatchedCountSimulation, MonotoneInfectionAndDeterminism) {
  BatchedCountSimulation a(epidemic_spec(), 42), b(epidemic_spec(), 42);
  for (auto* sim : {&a, &b}) {
    sim->set_count("S", 5000);
    sim->set_count("I", 5);
  }
  std::uint64_t last = 5;
  for (int i = 0; i < 100; ++i) {
    a.steps(250);
    b.steps(250);
    EXPECT_GE(a.count("I"), last);
    last = a.count("I");
    ASSERT_EQ(a.count("I"), b.count("I")) << "same seed must agree";
  }
}

TEST(BatchedCountSimulation, StepRequiresTwoAgents) {
  FiniteSpec spec;
  spec.add("a", "a", "a", "a");
  BatchedCountSimulation sim(spec, 1);
  sim.set_count("a", 1);
  EXPECT_THROW(sim.step(), std::invalid_argument);
}

TEST(BatchedCountSimulation, RandomizedRatesRespected) {
  // Lazy epidemic (rate 0.25): infection spreads at a quarter of the pace,
  // so after fixed parallel time the infected count must sit between the
  // all-null and rate-1.0 extremes; mean conversion count checked against
  // the sequential simulator in the equivalence tests below.  (Ten initial
  // carriers: a single carrier goes untouched for 4 parallel time units in
  // ~10% of runs — seed-sensitive either way — while ten all idling is a
  // 10^-10 event.)
  FiniteSpec spec;
  spec.add_symmetric("S", "I", "I", "I", 0.25);
  BatchedCountSimulation sim(spec, 5);
  sim.set_count("S", 100000 - 10);
  sim.set_count("I", 10);
  sim.advance_time(4.0);
  EXPECT_GT(sim.count("I"), 10u);
  EXPECT_LT(sim.count("I"), 100000u);
}

// ------------------------------------------------------------------------
// Distributional equivalence: batched and sequential simulators must induce
// statistically indistinguishable configuration distributions.
// ------------------------------------------------------------------------

template <typename Sim>
std::map<std::uint64_t, std::uint64_t> final_count_histogram(
    const FiniteSpec& spec, const std::vector<std::pair<std::string, std::uint64_t>>& init,
    const std::string& observable, double parallel_time, std::uint64_t trials,
    std::uint64_t master_seed) {
  std::map<std::uint64_t, std::uint64_t> histogram;
  for (std::uint64_t i = 0; i < trials; ++i) {
    Sim sim(spec, trial_seed(master_seed, i));
    for (const auto& [state, c] : init) sim.set_count(state, c);
    sim.advance_time(parallel_time);
    ++histogram[sim.count(observable)];
  }
  return histogram;
}

TEST(BatchedEquivalence, EpidemicConfigurationDistribution) {
  const auto spec = epidemic_spec();
  const std::vector<std::pair<std::string, std::uint64_t>> init{{"S", 295}, {"I", 5}};
  const auto sequential = final_count_histogram<CountSimulation>(
      spec, init, "I", 2.0, 4000, 0xAAA1);
  const auto batched = final_count_histogram<BatchedCountSimulation>(
      spec, init, "I", 2.0, 4000, 0xBBB2);
  const auto verdict = two_sample_chi_square(sequential, batched);
  EXPECT_TRUE(verdict.accept())
      << "chi-square " << verdict.statistic << " at df " << verdict.df
      << " (critical " << chi_square_critical(verdict.df) << ")";
}

TEST(BatchedEquivalence, MajorityConfigurationDistribution) {
  // 3-state majority on a 160/140 split, observed at 3 parallel time units
  // (mid-convergence, where distributional differences would show).
  const auto spec = approximate_majority_spec();
  const std::vector<std::pair<std::string, std::uint64_t>> init{{"x", 160}, {"y", 140}};
  const auto sequential = final_count_histogram<CountSimulation>(
      spec, init, "x", 3.0, 4000, 0xCCC3);
  const auto batched = final_count_histogram<BatchedCountSimulation>(
      spec, init, "x", 3.0, 4000, 0xDDD4);
  const auto verdict = two_sample_chi_square(sequential, batched);
  EXPECT_TRUE(verdict.accept())
      << "chi-square " << verdict.statistic << " at df " << verdict.df
      << " (critical " << chi_square_critical(verdict.df) << ")";
}

TEST(BatchedEquivalence, RandomizedRateConfigurationDistribution) {
  // Lazy epidemic exercises the binomial splitting of randomized cells.
  FiniteSpec spec;
  spec.add_symmetric("S", "I", "I", "I", 0.3);
  const std::vector<std::pair<std::string, std::uint64_t>> init{{"S", 290}, {"I", 10}};
  const auto sequential = final_count_histogram<CountSimulation>(
      spec, init, "I", 3.0, 4000, 0xEEE5);
  const auto batched = final_count_histogram<BatchedCountSimulation>(
      spec, init, "I", 3.0, 4000, 0xFFF6);
  const auto verdict = two_sample_chi_square(sequential, batched);
  EXPECT_TRUE(verdict.accept())
      << "chi-square " << verdict.statistic << " at df " << verdict.df
      << " (critical " << chi_square_critical(verdict.df) << ")";
}

TEST(BatchedEquivalence, TinyPopulationDistribution) {
  // n = 4 stresses every edge of the collision machinery (forced collisions,
  // empty untouched pools) where an off-by-one would skew the distribution.
  const auto spec = epidemic_spec();
  const std::vector<std::pair<std::string, std::uint64_t>> init{{"S", 3}, {"I", 1}};
  const auto sequential = final_count_histogram<CountSimulation>(
      spec, init, "I", 1.5, 6000, 0x1111);
  const auto batched = final_count_histogram<BatchedCountSimulation>(
      spec, init, "I", 1.5, 6000, 0x2222);
  const auto verdict = two_sample_chi_square(sequential, batched);
  EXPECT_TRUE(verdict.accept())
      << "chi-square " << verdict.statistic << " at df " << verdict.df
      << " (critical " << chi_square_critical(verdict.df) << ")";
}

}  // namespace
}  // namespace pops
