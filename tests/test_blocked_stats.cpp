// Chi-square GOF suite for the blocked exact samplers (stats/blocked.hpp):
// the sharded decompositions must be distribution-identical to the unsharded
// draws they replace in the batched simulator's parallel epochs.
//
//   * blocked multivariate hypergeometric — per-class marginals vs the
//     sequential `multivariate_hypergeometric` chain (two-sample tests,
//     blocking forced by a tiny min_mass);
//   * split_multiset — per-(part, class) counts vs the
//     shuffle-the-expansion-and-cut reference it claims to equal;
//   * block shuffle (split + per-part fill/shuffle) — the class landing in a
//     fixed global slot vs a global Fisher–Yates of the same multiset;
//   * order independence — reversing the recursion invoker must not change a
//     single output bit (the property that lets shards run on any thread).
//
// All seeds fixed; alpha = 0.001 per test via chi_square_critical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/rng.hpp"
#include "stats/blocked.hpp"
#include "stats/chi_square.hpp"
#include "stats/discrete.hpp"

namespace pops {
namespace {

using Histogram = std::map<std::uint64_t, std::uint64_t>;

/// Runs the split_multiset recursion with the sibling subtrees in reversed
/// order — the serial witness of the thread-placement-independence claim.
struct ReversedInvoke {
  template <typename A, typename B>
  void operator()(A&& a, B&& b) const {
    b();
    a();
  }
};

/// Serial reference for the claims below: expand the multiset, Fisher–Yates
/// shuffle the expansion, and (optionally) cut it into consecutive parts.
std::vector<std::uint32_t> shuffled_expansion(Rng& rng, const ClassMultiset& ms) {
  std::vector<std::uint32_t> slots;
  for (std::size_t k = 0; k < ms.ids.size(); ++k) {
    for (std::uint64_t c = ms.counts[k]; c > 0; --c) slots.push_back(ms.ids[k]);
  }
  for (std::size_t k = slots.size(); k > 1; --k) {
    std::swap(slots[k - 1], slots[rng.below(k)]);
  }
  return slots;
}

TEST(PlanBlocks, BoundsPartitionAndRespectCaps) {
  const std::vector<std::uint64_t> weights{5, 0, 12, 3, 40, 1, 1, 8};
  const auto bounds = plan_blocks(weights, 70, /*max_blocks=*/4, /*min_mass=*/10);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), weights.size());
  EXPECT_LE(bounds.size() - 1, 4u);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
  // min_mass dominates: 70 / 100 -> everything in one block.
  EXPECT_EQ(plan_blocks(weights, 70, 4, 100).size(), 2u);
  // Empty weights still produce a valid (degenerate) partition.
  EXPECT_EQ(plan_blocks({}, 0, 4, 10), (std::vector<std::uint32_t>{0, 0}));
}

TEST(BlockedHypergeometric, MarginalsMatchSequentialChain) {
  const std::vector<std::uint64_t> counts{50, 200, 10, 1000, 5, 300, 77, 123};
  const std::uint64_t draws = 500;
  const int kTrials = 3000;
  std::vector<Histogram> blocked_hist(counts.size()), serial_hist(counts.size());
  Rng serial_rng(0xB10C);
  std::vector<std::uint64_t> out;
  for (int trial = 0; trial < kTrials; ++trial) {
    // min_mass = 64 forces several blocks; a serial run_blocks loop is fine —
    // the draw's distribution cannot depend on who executes the blocks.
    SubstreamSeeder seeder(0xABCD, static_cast<std::uint64_t>(trial));
    blocked_multivariate_hypergeometric(
        seeder, /*stream_base=*/0, counts, draws, out, /*max_blocks=*/8,
        /*min_mass=*/64, [](std::size_t blocks, auto&& fn) {
          for (std::size_t b = 0; b < blocks; ++b) fn(b);
        });
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      ++blocked_hist[i][out[i]];
      sum += out[i];
      ASSERT_LE(out[i], counts[i]);
    }
    ASSERT_EQ(sum, draws);
    multivariate_hypergeometric(serial_rng, counts, draws, out);
    for (std::size_t i = 0; i < counts.size(); ++i) ++serial_hist[i][out[i]];
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto verdict = two_sample_chi_square(blocked_hist[i], serial_hist[i]);
    EXPECT_TRUE(verdict.accept())
        << "class " << i << " statistic " << verdict.statistic << " df "
        << verdict.df;
  }
}

TEST(SplitMultiset, PartTotalsAndClassSumsAreExact) {
  const ClassMultiset ms{{7, 3, 9, 42}, {13, 1, 25, 8}};  // total 47
  const std::vector<std::uint64_t> part_sizes{10, 0, 30, 7};
  std::vector<ClassMultiset> parts;
  for (int trial = 0; trial < 200; ++trial) {
    SubstreamSeeder seeder(0x5EED, static_cast<std::uint64_t>(trial));
    split_multiset(seeder, /*stream_base=*/0, ms, part_sizes, parts);
    ASSERT_EQ(parts.size(), part_sizes.size());
    std::vector<std::uint64_t> class_sum(ms.counts.size(), 0);
    for (std::size_t p = 0; p < parts.size(); ++p) {
      ASSERT_EQ(parts[p].ids, ms.ids);
      EXPECT_EQ(parts[p].total(), part_sizes[p]);
      for (std::size_t k = 0; k < parts[p].counts.size(); ++k) {
        class_sum[k] += parts[p].counts[k];
      }
    }
    EXPECT_EQ(class_sum, ms.counts);  // the split is a dealing, not a draw
  }
}

TEST(SplitMultiset, PartCompositionsMatchShuffleAndCut) {
  const ClassMultiset ms{{0, 1, 2}, {20, 35, 15}};  // total 70
  const std::vector<std::uint64_t> part_sizes{25, 11, 34};
  const int kTrials = 4000;
  // Histogram per (part, class): count of class in that part.
  std::vector<Histogram> split_hist(part_sizes.size() * ms.ids.size());
  std::vector<Histogram> cut_hist(part_sizes.size() * ms.ids.size());
  std::vector<ClassMultiset> parts;
  Rng cut_rng(0xC07);
  for (int trial = 0; trial < kTrials; ++trial) {
    SubstreamSeeder seeder(0xFACE, static_cast<std::uint64_t>(trial));
    split_multiset(seeder, /*stream_base=*/0, ms, part_sizes, parts);
    for (std::size_t p = 0; p < parts.size(); ++p) {
      for (std::size_t k = 0; k < ms.ids.size(); ++k) {
        ++split_hist[p * ms.ids.size() + k][parts[p].counts[k]];
      }
    }
    const auto slots = shuffled_expansion(cut_rng, ms);
    std::size_t offset = 0;
    for (std::size_t p = 0; p < part_sizes.size(); ++p) {
      std::vector<std::uint64_t> in_part(ms.ids.size(), 0);
      for (std::uint64_t s = 0; s < part_sizes[p]; ++s) {
        const std::uint32_t id = slots[offset + s];
        for (std::size_t k = 0; k < ms.ids.size(); ++k) {
          if (ms.ids[k] == id) ++in_part[k];
        }
      }
      offset += part_sizes[p];
      for (std::size_t k = 0; k < ms.ids.size(); ++k) {
        ++cut_hist[p * ms.ids.size() + k][in_part[k]];
      }
    }
  }
  for (std::size_t h = 0; h < split_hist.size(); ++h) {
    const auto verdict = two_sample_chi_square(split_hist[h], cut_hist[h]);
    EXPECT_TRUE(verdict.accept())
        << "part " << h / ms.ids.size() << " class " << h % ms.ids.size()
        << " statistic " << verdict.statistic << " df " << verdict.df;
  }
}

TEST(SplitMultiset, InvokerOrderCannotChangeOutput) {
  // Because every tree node owns a substream, reversing the traversal must
  // not change a single output bit.
  const ClassMultiset ms{{4, 8, 15, 16, 23, 42}, {100, 3, 57, 9, 71, 60}};
  const std::vector<std::uint64_t> part_sizes{60, 60, 60, 60, 60};
  std::vector<ClassMultiset> forward, reversed;
  for (int trial = 0; trial < 50; ++trial) {
    SubstreamSeeder seeder(0x0DD, static_cast<std::uint64_t>(trial));
    split_multiset(seeder, /*stream_base=*/0, ms, part_sizes, forward,
                   SequentialInvoke{});
    split_multiset(seeder, /*stream_base=*/0, ms, part_sizes, reversed,
                   ReversedInvoke{});
    ASSERT_EQ(forward.size(), reversed.size());
    for (std::size_t p = 0; p < forward.size(); ++p) {
      ASSERT_EQ(forward[p].ids, reversed[p].ids) << "part " << p;
      ASSERT_EQ(forward[p].counts, reversed[p].counts) << "part " << p;
    }
  }
}

TEST(BlockShuffle, FixedSlotMarginalsMatchGlobalShuffle) {
  // The full parallel pipeline — split_multiset into per-part quotas, then
  // block_shuffle_fill per part — versus one global Fisher–Yates shuffle:
  // the class occupying any fixed global slot must be identically
  // distributed.  Probe slots in different parts, including part edges.
  const ClassMultiset ms{{10, 20, 30}, {18, 30, 12}};  // total 60
  const std::vector<std::uint64_t> part_sizes{21, 25, 14};
  const std::vector<std::size_t> probes{0, 20, 21, 40, 46, 59};
  const int kTrials = 4000;
  std::vector<Histogram> block_hist(probes.size()), global_hist(probes.size());
  std::vector<ClassMultiset> parts;
  std::vector<std::uint32_t> slots(60);
  Rng global_rng(0x6F0BA1);
  for (int trial = 0; trial < kTrials; ++trial) {
    SubstreamSeeder seeder(0xB0CA, static_cast<std::uint64_t>(trial));
    split_multiset(seeder, /*stream_base=*/0, ms, part_sizes, parts);
    std::size_t offset = 0;
    for (std::size_t p = 0; p < parts.size(); ++p) {
      Rng rng = seeder.stream(100 + p);
      block_shuffle_fill(rng, parts[p], slots.data() + offset, part_sizes[p]);
      offset += part_sizes[p];
    }
    for (std::size_t q = 0; q < probes.size(); ++q) ++block_hist[q][slots[probes[q]]];
    const auto reference = shuffled_expansion(global_rng, ms);
    for (std::size_t q = 0; q < probes.size(); ++q) {
      ++global_hist[q][reference[probes[q]]];
    }
  }
  for (std::size_t q = 0; q < probes.size(); ++q) {
    const auto verdict = two_sample_chi_square(block_hist[q], global_hist[q]);
    EXPECT_TRUE(verdict.accept())
        << "slot " << probes[q] << " statistic " << verdict.statistic << " df "
        << verdict.df;
  }
}

TEST(BlockShuffle, FillPreservesCompositionExactly) {
  const ClassMultiset part{{5, 6, 7}, {4, 0, 9}};
  std::vector<std::uint32_t> slots(13);
  Rng rng(0xF111);
  block_shuffle_fill(rng, part, slots.data(), slots.size());
  EXPECT_EQ(std::count(slots.begin(), slots.end(), 5u), 4);
  EXPECT_EQ(std::count(slots.begin(), slots.end(), 6u), 0);
  EXPECT_EQ(std::count(slots.begin(), slots.end(), 7u), 9);
}

}  // namespace
}  // namespace pops
