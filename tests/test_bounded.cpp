// Saturation-semantics tests for the bounded-field regime adapter
// (compile/bounded.hpp): the capped-draw law, the per-protocol saturate
// contracts (threshold saturation, dead-field canonicalization, invariant
// clamps), and exactness of the bounded protocol w.r.t. the unbounded one
// while no draw exceeds the cap.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "compile/bounded.hpp"
#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "core/log_size_estimation.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/rng.hpp"

namespace pops {
namespace {

TEST(CapGeometric, DrawsFollowTheMinLaw) {
  // min(geometric, cap): P(k) = 2^-k for k < cap, P(cap) = 2^-(cap-1).
  const std::uint32_t cap = 3;
  Rng rng(42);
  CapGeometric<Rng> capped(rng, cap);
  std::vector<std::uint64_t> hits(cap + 1, 0);
  const std::uint64_t draws = 200000;
  for (std::uint64_t i = 0; i < draws; ++i) {
    const std::uint32_t g = capped.geometric_fair();
    ASSERT_GE(g, 1u);
    ASSERT_LE(g, cap);
    ++hits[g];
  }
  EXPECT_NEAR(static_cast<double>(hits[1]) / draws, 0.50, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[2]) / draws, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[3]) / draws, 0.25, 0.01);
}

TEST(CapGeometric, PassesOtherDrawsThrough) {
  Rng a(7), b(7);
  CapGeometric<Rng> capped(a, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(capped.coin(), b.coin());
    EXPECT_EQ(capped.below(17), b.below(17));
  }
}

// ------------------------------------------- LogSizeEstimation saturate ----

using LseState = LogSizeEstimation::State;

LogSizeEstimation tiny_base() {
  return LogSizeEstimation(LogSizeEstimation::Params{
      .time_multiplier = 4, .epoch_multiplier = 1, .logsize_offset = 1});
}

TEST(BoundedLogSize, TimeSaturatesAtTheThreshold) {
  const auto proto = tiny_base();
  LseState s;
  s.role = Role::A;
  s.log_size2 = 3;
  s.time = 999;  // a worker waiting to deposit keeps ticking in the paper
  proto.saturate(s, 2);
  EXPECT_EQ(s.time, proto.time_threshold(s));  // 4 * 3
}

TEST(BoundedLogSize, FinishedWorkerDeadFieldsAreCanonicalized) {
  const auto proto = tiny_base();
  LseState s;
  s.role = Role::A;
  s.log_size2 = 2;
  s.protocol_done = true;
  s.time = 1;
  s.gr = 2;
  s.updated_sum = false;
  proto.saturate(s, 2);
  EXPECT_EQ(s.time, proto.time_threshold(s));
  EXPECT_EQ(s.gr, 1u);
  EXPECT_TRUE(s.updated_sum);
}

TEST(BoundedLogSize, StorageDeadFieldsAreCanonicalized) {
  const auto proto = tiny_base();
  LseState s;
  s.role = Role::S;
  s.time = 5;
  s.gr = 2;       // a restart redraws gr even for storage agents
  s.updated_sum = true;
  proto.saturate(s, 2);
  EXPECT_EQ(s.time, 0u);
  EXPECT_EQ(s.gr, 1u);
  EXPECT_FALSE(s.updated_sum);
}

TEST(BoundedLogSize, InvariantClampsBindOnlyAboveTheCeilings) {
  const auto proto = tiny_base();
  const std::uint32_t cap = 2;
  LseState s;
  s.role = Role::S;
  s.log_size2 = 77;
  s.epoch = 99;
  s.sum = 1000;
  proto.saturate(s, cap);
  EXPECT_EQ(s.log_size2, cap + 1);      // cap + offset
  EXPECT_EQ(s.epoch, 1u * (cap + 1));   // Em * ls_cap
  EXPECT_EQ(s.sum, 1u * (cap + 1) * cap);
}

TEST(BoundedLogSize, SimulationStatesAreSaturateFixedPoints) {
  // Every state an AgentSimulation<Bounded<P>> produces is already
  // saturated: saturate must be idempotent on the reachable space, or the
  // compiled labels would disagree with the simulated ones.
  const auto proto = log_size_tiny();
  AgentSimulation<Bounded<LogSizeEstimation>> sim(proto, 256, 19);
  for (const double t : {5.0, 30.0, 120.0}) {
    sim.advance_time(t);
    for (const auto& agent : sim.agents()) {
      LseState copy = agent;
      proto.saturate(copy, proto.geometric_cap());
      EXPECT_EQ(proto.state_label(copy), proto.state_label(agent));
    }
  }
}

TEST(BoundedLogSize, AgreesExactlyWithUnboundedWhileCapIsGenerous) {
  // Rules 1 and 2 of the saturation contract are exact, and CapGeometric
  // consumes the RNG stream identically — so with a cap no draw ever
  // reaches, the bounded and unbounded protocols produce the *same
  // execution* from the same seed (dead canonicalized fields aside).
  const LogSizeEstimation unbounded{};  // paper constants: 95, 5, +2
  const Bounded<LogSizeEstimation> bounded(unbounded, /*geometric_cap=*/40);
  const std::uint64_t n = 64, seed = 1234;
  AgentSimulation<LogSizeEstimation> a(unbounded, n, seed);
  AgentSimulation<Bounded<LogSizeEstimation>> b(bounded, n, seed);
  a.steps(20000);
  b.steps(20000);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto& sa = a.agent(i);
    const auto& sb = b.agent(i);
    EXPECT_EQ(sa.role, sb.role);
    EXPECT_EQ(sa.log_size2, sb.log_size2);
    EXPECT_EQ(sa.epoch, sb.epoch);
    EXPECT_EQ(sa.sum, sb.sum);
    EXPECT_EQ(sa.protocol_done, sb.protocol_done);
    EXPECT_EQ(sa.has_output, sb.has_output);
    EXPECT_EQ(sa.output, sb.output);
    if (sa.role == Role::A && !sa.protocol_done) {
      // Live worker fields are not canonicalized; they match too (time up
      // to threshold saturation, which only binds past the threshold).
      EXPECT_EQ(std::min(sa.time, unbounded.time_threshold(sa)), sb.time);
      EXPECT_EQ(sa.gr, sb.gr);
      EXPECT_EQ(sa.updated_sum, sb.updated_sum);
    }
  }
}

// ------------------------------------------------- composed saturation -----

TEST(BoundedMajority, BlankLevelsAreCanonicalizedAcrossTheCompiledSpace) {
  const auto result =
      ProtocolCompiler<Bounded<Composed<VotedMajorityStage>>>(bounded_majority(0.5), 1)
          .compile();
  for (const auto& st : result.states) {
    if (st.down.sign == 0) {
      EXPECT_EQ(st.down.level, 0u);
    }
    EXPECT_LE(st.down.level, st.clock.stage);
  }
}

TEST(BoundedLeaderElection, DroppedContendersForgetTheirBitstring) {
  const auto result =
      ProtocolCompiler<Bounded<UniformLeaderElection>>(bounded_leader_election(3), 1)
          .compile();
  std::uint64_t followers = 0;
  for (const auto& st : result.states) {
    if (!st.down.contender) {
      ++followers;
      EXPECT_TRUE(st.down.own == 0);
    }
    EXPECT_LE(st.down.own, st.down.best);
  }
  EXPECT_GT(followers, 0u);
}

}  // namespace
}  // namespace pops
