// Tests for the closed-form bounds of stats/bounds.hpp: internal consistency,
// known values, and monotonicity properties the paper's proofs rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/bounds.hpp"

namespace pops {
namespace {

TEST(Bounds, HarmonicKnownValues) {
  EXPECT_DOUBLE_EQ(bounds::harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(bounds::harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(bounds::harmonic(2), 1.5);
  EXPECT_NEAR(bounds::harmonic(100), 5.18737751763962, 1e-10);
}

TEST(Bounds, HarmonicAsymptoticMatchesDirectSum) {
  // The asymptotic branch (n >= 1024) must agree with the direct sum.
  double direct = 0.0;
  for (int k = 1; k <= 5000; ++k) direct += 1.0 / k;
  EXPECT_NEAR(bounds::harmonic(5000), direct, 1e-9);
}

TEST(Bounds, HarmonicSandwich) {
  // ln n <= ((n-1)/n) H_{n-1} <= 1 + ln n (paper Section 3.2).
  for (std::uint64_t n : {10ULL, 100ULL, 10000ULL}) {
    const double v = (static_cast<double>(n - 1) / n) * bounds::harmonic(n - 1);
    EXPECT_GE(v + 1e-12, std::log(static_cast<double>(n)));
    EXPECT_LE(v, 1.0 + std::log(static_cast<double>(n)));
  }
}

TEST(Bounds, EpidemicExpectedTimeNearLogN) {
  // E[T] = ((n-1)/n) H_{n-1} ~ ln n.
  const double t = bounds::epidemic_expected_time(100000);
  EXPECT_NEAR(t, std::log(100000.0), 1.0);
  EXPECT_THROW(bounds::epidemic_expected_time(1), std::invalid_argument);
}

TEST(Bounds, EpidemicTailDecreasesInAlpha) {
  EXPECT_GT(bounds::epidemic_upper_tail(1000, 8.0), bounds::epidemic_upper_tail(1000, 16.0));
  EXPECT_LT(bounds::epidemic_upper_tail(1000, 24.0), 1e-10);
}

TEST(Bounds, SubpopulationTailCorollary35) {
  // Corollary 3.5: c = 3, alpha_u = 24 gives < 27 n^{-3} — in the a = n/3
  // parametrization, a^{-(24-12)^2/36} = a^{-4}.
  const double tail = bounds::subpopulation_epidemic_tail(1000, 3.0, 24.0);
  EXPECT_NEAR(tail, std::pow(1000.0, -4.0), 1e-15);
  EXPECT_THROW(bounds::subpopulation_epidemic_tail(10, 0.5, 8.0), std::invalid_argument);
}

TEST(Bounds, PartitionTailLemma32) {
  // a = sqrt(n ln n) gives 2 e^{-2 ln n} = 2/n^2.
  const double n = 10000;
  const double a = std::sqrt(n * std::log(n));
  EXPECT_NEAR(bounds::partition_deviation_tail(10000, a), 2.0 / (n * n), 1e-12);
}

TEST(Bounds, InteractionCountLemma36) {
  // C = 24 gives D = 48 + sqrt(288) ~ 64.97 <= 65 (Corollary 3.7).
  const double d = bounds::interaction_count_multiplier(24.0);
  EXPECT_GT(d, 64.9);
  EXPECT_LT(d, 65.0);
  EXPECT_THROW(bounds::interaction_count_multiplier(2.0), std::invalid_argument);
}

TEST(Bounds, LemmaD4Band) {
  const auto band = bounds::lemma_d4_mean_band(1024);
  EXPECT_DOUBLE_EQ(band.lo, 11.0);
  EXPECT_DOUBLE_EQ(band.hi, 11.5);
  EXPECT_THROW(bounds::lemma_d4_mean_band(10), std::invalid_argument);
}

TEST(Bounds, SumOfMaximaTailLemmaD8) {
  // t = aK with a = 4.7 > 4: bound = 2 e^{K(1 - a/4)} shrinks with K.
  const double b1 = bounds::sum_of_maxima_tail(10, 47.0);
  const double b2 = bounds::sum_of_maxima_tail(40, 188.0);
  EXPECT_GT(b1, b2);
  EXPECT_LT(b2, 1e-2);
}

TEST(Bounds, BallsInBinsLemmaE1) {
  // delta = 1/81, m = 3n: base = 2*(1/81)*e*3 ~ 0.2013 < 1.
  const double tail = bounds::balls_in_bins_tail(1000, 500, 3000, 1.0 / 81.0);
  EXPECT_LT(tail, std::pow(0.21, 500.0 / 81.0));
  EXPECT_THROW(bounds::balls_in_bins_tail(10, 5, 10, 0.7), std::invalid_argument);
}

TEST(Bounds, ConsumptionCorollaryE3Consistency) {
  // Corollary E.3 is Lemma E.2 at delta = 1/81, T = 1; the lemma's value
  // must be below the corollary's simplified 2^{-k/81}.
  for (std::uint64_t k : {81ULL, 810ULL, 8100ULL}) {
    EXPECT_LE(bounds::consumption_tail(k, 1.0 / 81.0, 1.0), bounds::cor_e3_tail(k) + 1e-15)
        << "k=" << k;
  }
}

TEST(Bounds, LogSize2BandLemma38) {
  const auto band = bounds::logsize2_band(1024);
  EXPECT_NEAR(band.lo, 10.0 - std::log2(std::log(1024.0)), 1e-12);
  EXPECT_NEAR(band.hi, 21.0, 1e-12);
}

TEST(Bounds, Thm31ErrorTail) {
  EXPECT_DOUBLE_EQ(bounds::thm31_error_tail(900), 0.01);
}

}  // namespace
}  // namespace pops
