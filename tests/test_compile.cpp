// Tests for the finite-state protocol compiler (src/compile/): choice-tree
// enumeration, golden round-trips onto hand-written FiniteSpecs, dyadic rate
// exactness, and the producibility-closure cross-check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "compile/choice.hpp"
#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "proto/partition.hpp"
#include "proto/semilinear.hpp"
#include "sim/batched_count_simulation.hpp"
#include "termination/terminating_toys.hpp"

namespace pops {
namespace {

// ------------------------------------------------------------ ChoiceRng ----

TEST(ChoiceRng, CoinEnumeratesBothBranchesWithHalfMass) {
  std::vector<std::pair<bool, double>> paths;
  enumerate_choices(4, [&](ChoiceRng& rng) {
    const bool value = rng.coin();
    paths.emplace_back(value, rng.path_probability());
  });
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_TRUE(paths[0].first);
  EXPECT_FALSE(paths[1].first);
  EXPECT_DOUBLE_EQ(paths[0].second, 0.5);
  EXPECT_DOUBLE_EQ(paths[1].second, 0.5);
}

TEST(ChoiceRng, GeometricEnumeratesTruncatedLaw) {
  // cap 3: P(1) = 1/2, P(2) = 1/4, P(3) = 1/4 (the law of min(geom, 3)).
  std::vector<std::pair<std::uint32_t, double>> paths;
  enumerate_choices(3, [&](ChoiceRng& rng) {
    const std::uint32_t value = rng.geometric_fair();
    paths.emplace_back(value, rng.path_probability());
  });
  ASSERT_EQ(paths.size(), 3u);
  double total = 0.0;
  for (const auto& [value, prob] : paths) total += prob;
  EXPECT_EQ(total, 1.0);  // dyadic-exact
  EXPECT_EQ(paths[0], (std::pair<std::uint32_t, double>{1, 0.5}));
  EXPECT_EQ(paths[1], (std::pair<std::uint32_t, double>{2, 0.25}));
  EXPECT_EQ(paths[2], (std::pair<std::uint32_t, double>{3, 0.25}));
}

TEST(ChoiceRng, GeometricCapOneIsDeterministic) {
  std::size_t paths = 0;
  enumerate_choices(1, [&](ChoiceRng& rng) {
    EXPECT_EQ(rng.geometric_fair(), 1u);
    EXPECT_DOUBLE_EQ(rng.path_probability(), 1.0);
    ++paths;
  });
  EXPECT_EQ(paths, 1u);
}

TEST(ChoiceRng, BranchDependentDrawCountsAreHandled) {
  // coin() == heads additionally draws a geometric: 1 + cap leaves.
  std::vector<double> probs;
  enumerate_choices(2, [&](ChoiceRng& rng) {
    if (rng.coin()) rng.geometric_fair();
    probs.push_back(rng.path_probability());
  });
  ASSERT_EQ(probs.size(), 3u);  // (H,1), (H,2), (T)
  EXPECT_DOUBLE_EQ(probs[0], 0.25);
  EXPECT_DOUBLE_EQ(probs[1], 0.25);
  EXPECT_DOUBLE_EQ(probs[2], 0.5);
}

TEST(ChoiceRng, UniformDoubleIsRejected) {
  ChoiceRng rng(2);
  EXPECT_THROW(rng.uniform_double(), std::invalid_argument);
}

// ------------------------------------------------------- golden helpers ----

using NamedTransition = std::tuple<std::string, std::string, std::string, std::string, double>;

/// Transitions as name tuples, identity (null) transitions dropped — the
/// compiler leaves identity outputs as residual null mass, so hand-written
/// specs must be normalized the same way before comparison.
std::set<NamedTransition> normalized(const FiniteSpec& spec) {
  std::set<NamedTransition> out;
  for (const auto& t : spec.transitions()) {
    if (t.in_receiver == t.out_receiver && t.in_sender == t.out_sender) continue;
    out.emplace(spec.name(t.in_receiver), spec.name(t.in_sender),
                spec.name(t.out_receiver), spec.name(t.out_sender), t.rate);
  }
  return out;
}

std::set<std::string> state_names(const FiniteSpec& spec) {
  std::set<std::string> names;
  for (std::uint32_t i = 0; i < spec.num_states(); ++i) names.insert(spec.name(i));
  return names;
}

// ------------------------------------------------------- golden: toys ------

TEST(ProtocolCompiler, PartitionRoundTripsOntoHandWrittenSpec) {
  const auto result = compile_bounded(PartitionProtocol{}, 1);
  const FiniteSpec hand = partition_spec();
  EXPECT_EQ(state_names(result.spec), state_names(hand));
  EXPECT_EQ(normalized(result.spec), normalized(hand));
  EXPECT_EQ(result.initial_states(), std::vector<std::uint32_t>{result.spec.id("X")});
  EXPECT_TRUE(closure_matches(result));
}

TEST(ProtocolCompiler, FixedCountTriggerRoundTripsOntoHandWrittenSpec) {
  const std::uint32_t threshold = 5;
  const auto result = compile_bounded(FixedCountTrigger{threshold}, 1);
  const FiniteSpec hand = fixed_count_trigger_spec(threshold);
  EXPECT_EQ(result.num_states(), threshold + 1);  // c0..c4, t
  EXPECT_EQ(state_names(result.spec), state_names(hand));
  EXPECT_EQ(normalized(result.spec), normalized(hand));
  EXPECT_TRUE(closure_matches(result));
}

TEST(ProtocolCompiler, HeadsRunTriggerHasExactDyadicRates) {
  const std::uint32_t run = 3;
  const auto result = compile_bounded(HeadsRunTrigger{run}, 1);
  EXPECT_EQ(result.num_states(), run + 1);  // r0..r2, t
  const auto& spec = result.spec;
  // (r2, r2): heads on either side terminates and infects both — mass 3/4;
  // tails-tails resets both to r0 — mass 1/4.  Dyadic sums must be exact so
  // the dispatch table can classify cells without tolerance.
  const std::uint32_t r2 = spec.id("r2"), r0 = spec.id("r0"), t = spec.id("t");
  EXPECT_EQ(spec.total_rate(r2, r2), 1.0);
  double to_tt = 0.0, to_r0 = 0.0;
  for (const auto& tr : spec.transitions()) {
    if (tr.in_receiver != r2 || tr.in_sender != r2) continue;
    if (tr.out_receiver == t && tr.out_sender == t) to_tt += tr.rate;
    if (tr.out_receiver == r0 && tr.out_sender == r0) to_r0 += tr.rate;
  }
  EXPECT_EQ(to_tt, 0.75);
  EXPECT_EQ(to_r0, 0.25);
  EXPECT_TRUE(closure_matches(result));
}

TEST(ProtocolCompiler, GeometricTriggerInitialDistributionIsExact) {
  // threshold 2, cap 4: P(terminated at birth) = P(min(g, 4) > 2) = 1/4.
  const auto result = compile_bounded(GeometricTrigger{2}, 4);
  ASSERT_EQ(result.num_states(), 2u);
  EXPECT_EQ(result.initial_distribution[result.spec.id("q")], 0.75);
  EXPECT_EQ(result.initial_distribution[result.spec.id("t")], 0.25);
}

TEST(ProtocolCompiler, GeometricTriggerBelowCapNeverFires) {
  // cap 2 <= threshold 2: min(g, 2) > 2 is impossible — the trigger state is
  // not even reachable, so the compiled protocol has a single silent state.
  const auto result = compile_bounded(GeometricTrigger{2}, 2);
  EXPECT_EQ(result.num_states(), 1u);
  EXPECT_EQ(result.num_transitions(), 0u);
}

// -------------------------------------------------- golden: semilinear -----

/// Agent-level threshold predicate [x >= c], mirroring `threshold_spec`.
struct ThresholdAgent {
  std::uint32_t c = 2;

  struct State {
    bool follower = false;
    std::uint32_t tokens = 0;
    bool output = false;
  };

  template <RandomSource R>
  State initial(R& rng) const {
    State s;
    s.tokens = rng.coin() ? 1 : 0;
    s.output = s.tokens >= c;
    return s;
  }

  template <RandomSource R>
  void interact(State& receiver, State& sender, R&) const {
    if (!receiver.follower && !sender.follower) {
      receiver.tokens = std::min(receiver.tokens + sender.tokens, c);
      receiver.output = receiver.tokens >= c;
      sender.follower = true;
      sender.tokens = 0;
      sender.output = receiver.output;
    } else if (receiver.follower && !sender.follower) {
      receiver.output = sender.tokens >= c;
    } else if (!receiver.follower && sender.follower) {
      sender.output = receiver.tokens >= c;
    }
  }

  std::string state_label(const State& s) const {
    return s.follower ? (s.output ? "F1" : "F0") : "L" + std::to_string(s.tokens);
  }

  void saturate(State& s, std::uint32_t) const {
    s.tokens = std::min(s.tokens, c);
    if (s.follower) {
      s.tokens = 0;
    } else {
      s.output = s.tokens >= c;  // leaders' output is derived from tokens
    }
  }
};

TEST(ProtocolCompiler, ThresholdAgentRoundTripsOntoSemilinearSpec) {
  const std::uint32_t c = 3;
  const auto result = compile_bounded(ThresholdAgent{c}, 1);
  const FiniteSpec hand = threshold_spec(c);
  EXPECT_EQ(state_names(result.spec), state_names(hand));
  EXPECT_EQ(normalized(result.spec), normalized(hand));
  EXPECT_TRUE(closure_matches(result));
}

/// Agent-level parity predicate, mirroring `parity_spec`.
struct ParityAgent {
  struct State {
    bool follower = false;
    bool bit = false;
  };

  template <RandomSource R>
  State initial(R& rng) const {
    return State{false, rng.coin()};
  }

  template <RandomSource R>
  void interact(State& receiver, State& sender, R&) const {
    if (!receiver.follower && !sender.follower) {
      receiver.bit = receiver.bit != sender.bit;
      sender.follower = true;
      sender.bit = receiver.bit;
    } else if (receiver.follower && !sender.follower) {
      receiver.bit = sender.bit;
    } else if (!receiver.follower && sender.follower) {
      sender.bit = receiver.bit;
    }
  }

  std::string state_label(const State& s) const {
    return (s.follower ? "F" : "L") + std::string(s.bit ? "1" : "0");
  }

  void saturate(State&, std::uint32_t) const {}
};

TEST(ProtocolCompiler, ParityAgentRoundTripsOntoSemilinearSpec) {
  const auto result = compile_bounded(ParityAgent{}, 1);
  const FiniteSpec hand = parity_spec();
  EXPECT_EQ(state_names(result.spec), state_names(hand));
  EXPECT_EQ(normalized(result.spec), normalized(hand));
  EXPECT_TRUE(closure_matches(result));
}

// ------------------------------------------------- headline constructions --

TEST(ProtocolCompiler, TinyLogSizeCompilesToExpectedStateCount) {
  const auto proto = log_size_tiny();
  const auto result =
      ProtocolCompiler<Bounded<LogSizeEstimation>>(proto, proto.geometric_cap()).compile();
  // Golden count for the tiny preset (cap 2, Tm 4, Em 1, offset 1); a change
  // here means the reachable space of the compiled regime changed.
  EXPECT_EQ(result.num_states(), 256u);
  EXPECT_TRUE(closure_matches(result));
  // Exactly one initial state: every agent starts as the default (X) state.
  const auto init = result.initial_states();
  ASSERT_EQ(init.size(), 1u);
  EXPECT_EQ(result.initial_distribution[init[0]], 1.0);
  EXPECT_EQ(result.states[init[0]].role, Role::X);
  result.spec.validate();  // rate discipline holds for every pair
}

TEST(ProtocolCompiler, CompiledSpecFeedsCountSimulators) {
  const auto proto = log_size_tiny();
  const auto result =
      ProtocolCompiler<Bounded<LogSizeEstimation>>(proto, proto.geometric_cap()).compile();
  BatchedCountSimulation sim(result.spec, 11);
  Rng seeder(13);
  result.seed_initial(sim, 100000, seeder);
  EXPECT_EQ(sim.population_size(), 100000u);
  sim.advance_time(60.0);
  // Partition must have consumed every X and split the population ~ in half
  // (Lemma 3.2); by parallel time 60 the tiny regime has finished (all done).
  const auto counts = sim.counts();
  EXPECT_EQ(result.count_matching(counts, [](const auto& s) { return s.role == Role::X; }), 0u);
  const auto workers =
      result.count_matching(counts, [](const auto& s) { return s.role == Role::A; });
  EXPECT_GT(workers, 45000u);
  EXPECT_LT(workers, 55000u);
  EXPECT_EQ(result.count_matching(counts, [](const auto& s) { return !s.protocol_done; }), 0u);
}

TEST(ProtocolCompiler, StateExplosionGuardThrows) {
  const auto proto = log_size_tiny();
  CompileOptions opts;
  opts.max_states = 16;
  EXPECT_THROW(
      ProtocolCompiler<Bounded<LogSizeEstimation>>(proto, proto.geometric_cap(), opts)
          .compile(),
      std::invalid_argument);
}

}  // namespace
}  // namespace pops
