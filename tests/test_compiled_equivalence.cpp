// Compiled-vs-agent equivalence certification: the distribution of a
// compiled protocol running on `BatchedCountSimulation` must be
// indistinguishable from the same `Bounded` protocol running on
// `AgentSimulation` (two-sample chi-square over integer observables, at a
// population size both simulators can handle).
//
// This is the end-to-end check of the whole compile pipeline: branch
// enumeration (rates), label interning (state identity), saturation hooks
// (both worlds saturate identically), seed_initial (multinomial initial
// configurations), and the batched sampler itself.  Observables and horizons
// are chosen where the statistic has real degrees of freedom (mid-run, not
// after convergence collapses everything to one outcome).
#include <gtest/gtest.h>

#include <cstdint>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "harness/equivalence.hpp"

namespace pops {
namespace {

// The acceptance criterion's test: Log-Size-Estimation in the bounded-field
// regime, compiled, on the batched engine, against the agent-level original.
class LogSizeEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    proto_ = new Bounded<LogSizeEstimation>(log_size_tiny());
    compiled_ = new CompileResult<Bounded<LogSizeEstimation>>(
        ProtocolCompiler<Bounded<LogSizeEstimation>>(*proto_, proto_->geometric_cap())
            .compile());
  }
  static void TearDownTestSuite() {
    delete compiled_;
    compiled_ = nullptr;
    delete proto_;
    proto_ = nullptr;
  }

  static Bounded<LogSizeEstimation>* proto_;
  static CompileResult<Bounded<LogSizeEstimation>>* compiled_;
};
Bounded<LogSizeEstimation>* LogSizeEquivalence::proto_ = nullptr;
CompileResult<Bounded<LogSizeEstimation>>* LogSizeEquivalence::compiled_ = nullptr;

TEST_F(LogSizeEquivalence, WorkerCountDistributionMatches) {
  const auto result = compiled_agent_equivalence(
      *proto_, *compiled_, 128, 6000, 400, 0xA11CE,
      [](const LogSizeEstimation::State& s) { return s.role == Role::A; });
  EXPECT_GE(result.df, 3u);
  EXPECT_TRUE(result.accept()) << "chi2=" << result.statistic << " df=" << result.df;
}

TEST_F(LogSizeEquivalence, EpochProgressDistributionMatches) {
  const auto result = compiled_agent_equivalence(
      *proto_, *compiled_, 128, 800, 400, 0xB0B,
      [](const LogSizeEstimation::State& s) { return s.epoch >= 1; });
  EXPECT_GE(result.df, 5u);
  EXPECT_TRUE(result.accept()) << "chi2=" << result.statistic << " df=" << result.df;
}

TEST_F(LogSizeEquivalence, CompletionDistributionMatches) {
  const auto result = compiled_agent_equivalence(
      *proto_, *compiled_, 128, 2500, 400, 0xC0FFEE,
      [](const LogSizeEstimation::State& s) { return s.protocol_done; });
  EXPECT_GE(result.df, 2u);
  EXPECT_TRUE(result.accept()) << "chi2=" << result.statistic << " df=" << result.df;
}

TEST(MajorityEquivalence, BlankAndOutputDistributionsMatch) {
  const auto proto = bounded_majority(0.55);
  const auto compiled =
      ProtocolCompiler<Bounded<Composed<VotedMajorityStage>>>(proto, 1).compile();
  const auto blanks = compiled_agent_equivalence(
      proto, compiled, 100, 1000, 300, 0xD1CE,
      [](const auto& s) { return s.down.sign == 0; });
  EXPECT_GE(blanks.df, 5u);
  EXPECT_TRUE(blanks.accept()) << "chi2=" << blanks.statistic << " df=" << blanks.df;
  const auto outputs = compiled_agent_equivalence(
      proto, compiled, 100, 1000, 300, 0xFACADE,
      [](const auto& s) { return s.down.output > 0; });
  EXPECT_GE(outputs.df, 5u);
  EXPECT_TRUE(outputs.accept()) << "chi2=" << outputs.statistic << " df=" << outputs.df;
}

TEST(LeaderElectionEquivalence, ContenderCountDistributionMatches) {
  const auto proto = bounded_leader_election(4);
  const auto compiled =
      ProtocolCompiler<Bounded<UniformLeaderElection>>(proto, 1).compile();
  const auto result = compiled_agent_equivalence(
      proto, compiled, 100, 1200, 300, 0x1EAD,
      [](const auto& s) { return s.down.contender; });
  EXPECT_GE(result.df, 2u);
  EXPECT_TRUE(result.accept()) << "chi2=" << result.statistic << " df=" << result.df;
}

}  // namespace
}  // namespace pops
