// Tests for the composition framework (§1.1) and its two downstream demos:
// uniform leader election and uniform majority.
#include <gtest/gtest.h>

#include <cmath>

#include "core/composition.hpp"
#include "core/uniform_leader_election.hpp"
#include "core/uniform_majority.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {
namespace {

// -- plumbing: a trivial stage protocol recording its callbacks -------------
struct RecordingStage {
  struct State {
    std::uint32_t restarts = 0;
    std::uint32_t stages_entered = 0;
    std::uint32_t last_estimate = 0;
  };
  State initial(Rng&) const { return State{}; }
  void restart(State& s, std::uint32_t estimate, Rng&) const {
    ++s.restarts;
    s.stages_entered = 0;
    s.last_estimate = estimate;
  }
  void advance_stage(State& s, std::uint32_t, Rng&) const { ++s.stages_entered; }
  void interact(State&, std::uint32_t, State&, std::uint32_t, Rng&) const {}
};
static_assert(StageProtocol<RecordingStage>);

using RecSim = AgentSimulation<Composed<RecordingStage>>;

TEST(Composition, EstimateAgreesAcrossPopulationAndRestartsFire) {
  Composed<RecordingStage> proto{RecordingStage{}};
  RecSim sim(proto, 512, 1);
  sim.advance_time(200.0);
  const auto s0 = sim.agent(0).s;
  std::uint64_t restarted = 0;
  for (const auto& a : sim.agents()) {
    EXPECT_EQ(a.s, s0) << "weak estimate must reach consensus";
    restarted += a.down.restarts > 0 ? 1 : 0;
  }
  // Nearly everyone adopted a larger estimate at least once.
  EXPECT_GE(restarted, sim.population_size() / 2);
}

TEST(Composition, StagesAdvanceToTarget) {
  Composed<RecordingStage> proto{RecordingStage{}};
  RecSim sim(proto, 256, 3);
  const double t = sim.run_until(
      [](const RecSim& s) { return clock_finished(s); }, 25.0, 1e6);
  ASSERT_GE(t, 0.0);
  for (const auto& a : sim.agents()) {
    EXPECT_EQ(a.clock.stage, sim.protocol().num_stages(a));
  }
}

TEST(Composition, EveryStageEnteredExactlyOncePostRestart) {
  Composed<RecordingStage> proto{RecordingStage{}};
  RecSim sim(proto, 256, 5);
  ASSERT_GE(sim.run_until([](const RecSim& s) { return clock_finished(s); }, 25.0, 1e6),
            0.0);
  for (const auto& a : sim.agents()) {
    EXPECT_EQ(a.down.stages_entered, sim.protocol().num_stages(a))
        << "each stage should trigger advance_stage exactly once";
  }
}

TEST(Composition, StageDurationScalesWithEstimate) {
  Composed<RecordingStage> proto{RecordingStage{}};
  // Threshold = clock_multiplier * s own-interactions; stages take
  // ~threshold/2 parallel time.  Just sanity-check the accessors.
  Composed<RecordingStage>::State st;
  st.s = 10;
  EXPECT_EQ(proto.stage_threshold(st), 240u);
  EXPECT_EQ(proto.num_stages(st), 60u);
}

// -- uniform leader election ------------------------------------------------

TEST(UniformLeaderElection, ElectsExactlyOneLeaderWhp) {
  constexpr int kTrials = 10;
  int exactly_one = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto proto = make_uniform_leader_election();
    AgentSimulation<UniformLeaderElection> sim(proto, 512, trial_seed(11, trial));
    const double t = sim.run_until(
        [](const AgentSimulation<UniformLeaderElection>& s) {
          return clock_finished(s) && count_contenders(s) == 1;
        },
        25.0, 2e5);
    if (t >= 0.0) ++exactly_one;
  }
  EXPECT_GE(exactly_one, kTrials - 1);
}

TEST(UniformLeaderElection, AtLeastOneContenderAlways) {
  auto proto = make_uniform_leader_election();
  AgentSimulation<UniformLeaderElection> sim(proto, 256, 13);
  for (int i = 0; i < 100; ++i) {
    sim.advance_time(50.0);
    EXPECT_GE(count_contenders(sim), 1u);
  }
}

TEST(UniformLeaderElection, WinnerHoldsMaximumBitstring) {
  auto proto = make_uniform_leader_election();
  AgentSimulation<UniformLeaderElection> sim(proto, 256, 17);
  ASSERT_GE(sim.run_until(
                [](const AgentSimulation<UniformLeaderElection>& s) {
                  return clock_finished(s) && count_contenders(s) == 1;
                },
                25.0, 2e5),
            0.0);
  u128 global_best = 0;
  for (const auto& a : sim.agents()) global_best = std::max(global_best, a.down.best);
  for (const auto& a : sim.agents()) {
    if (a.down.contender) {
      EXPECT_TRUE(a.down.own == global_best);
    }
  }
}

// -- uniform majority ---------------------------------------------------------

TEST(UniformMajority, ClearMajorityWins) {
  constexpr std::uint64_t kN = 500;
  constexpr int kTrials = 8;
  int correct = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto proto = make_uniform_majority();
    AgentSimulation<UniformMajority> sim(proto, kN, trial_seed(19, trial));
    assign_votes(sim, kN * 60 / 100);  // 60% vote +1
    sim.run_until([](const AgentSimulation<UniformMajority>& s) { return clock_finished(s); },
                  25.0, 2e5);
    sim.advance_time(200.0);  // let outputs spread
    if (output_agreement(sim, +1) == 1.0) ++correct;
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(UniformMajority, MinoritySignDoesNotSurviveTokens) {
  constexpr std::uint64_t kN = 400;
  auto proto = make_uniform_majority();
  AgentSimulation<UniformMajority> sim(proto, kN, 23);
  assign_votes(sim, kN * 65 / 100);
  sim.run_until([](const AgentSimulation<UniformMajority>& s) { return clock_finished(s); },
                25.0, 2e5);
  sim.advance_time(200.0);
  for (const auto& a : sim.agents()) {
    EXPECT_NE(a.down.sign, -1) << "a minority token survived";
  }
}

TEST(UniformMajority, SymmetricWorksBothWays) {
  constexpr std::uint64_t kN = 400;
  auto proto = make_uniform_majority();
  AgentSimulation<UniformMajority> sim(proto, kN, 29);
  assign_votes(sim, kN * 35 / 100);  // -1 is the majority now
  sim.run_until([](const AgentSimulation<UniformMajority>& s) { return clock_finished(s); },
                25.0, 2e5);
  sim.advance_time(200.0);
  EXPECT_GT(output_agreement(sim, -1), 0.95);
}

TEST(UniformMajority, VoteAssignmentHelper) {
  auto proto = make_uniform_majority();
  AgentSimulation<UniformMajority> sim(proto, 10, 31);
  assign_votes(sim, 4);
  std::uint64_t plus = 0;
  for (const auto& a : sim.agents()) plus += a.down.input == +1 ? 1 : 0;
  EXPECT_EQ(plus, 4u);
}

}  // namespace
}  // namespace pops
