// Unit tests for the count-based simulator and FiniteSpec.
#include <gtest/gtest.h>

#include "sim/count_simulation.hpp"
#include "sim/finite_spec.hpp"

namespace pops {
namespace {

TEST(FiniteSpec, StateRegistrationIsIdempotent) {
  FiniteSpec spec;
  const auto a = spec.state("a");
  const auto a2 = spec.state("a");
  EXPECT_EQ(a, a2);
  EXPECT_EQ(spec.num_states(), 1u);
  EXPECT_EQ(spec.name(a), "a");
}

TEST(FiniteSpec, UnknownStateLookupThrows) {
  FiniteSpec spec;
  spec.state("a");
  EXPECT_THROW(spec.id("b"), std::invalid_argument);
  EXPECT_FALSE(spec.has_state("b"));
}

TEST(FiniteSpec, RateValidation) {
  FiniteSpec spec;
  EXPECT_THROW(spec.add("a", "b", "c", "d", 0.0), std::invalid_argument);
  EXPECT_THROW(spec.add("a", "b", "c", "d", 1.5), std::invalid_argument);
  spec.add("a", "b", "c", "d", 0.7);
  spec.add("a", "b", "d", "c", 0.6);
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // total 1.3 > 1
}

TEST(FiniteSpec, TotalRateSums) {
  FiniteSpec spec;
  spec.add("a", "b", "c", "d", 0.25);
  spec.add("a", "b", "d", "c", 0.5);
  EXPECT_DOUBLE_EQ(spec.total_rate(spec.id("a"), spec.id("b")), 0.75);
}

TEST(CountSimulation, ConservesPopulation) {
  FiniteSpec spec;
  spec.add_symmetric("S", "I", "I", "I");
  CountSimulation sim(spec, 1);
  sim.set_count("S", 99);
  sim.set_count("I", 1);
  sim.steps(5000);
  EXPECT_EQ(sim.population_size(), 100u);
  EXPECT_EQ(sim.count("S") + sim.count("I"), 100u);
}

TEST(CountSimulation, EpidemicCompletes) {
  FiniteSpec spec;
  spec.add_symmetric("S", "I", "I", "I");
  CountSimulation sim(spec, 7);
  sim.set_count("S", 999);
  sim.set_count("I", 1);
  const double t = sim.run_until(
      [](const CountSimulation& s) { return s.count("S") == 0; }, 1.0, 1000.0);
  EXPECT_GE(t, 0.0);
  EXPECT_EQ(sim.count("I"), 1000u);
}

TEST(CountSimulation, InfectedCountIsMonotone) {
  FiniteSpec spec;
  spec.add_symmetric("S", "I", "I", "I");
  CountSimulation sim(spec, 3);
  sim.set_count("S", 499);
  sim.set_count("I", 1);
  std::uint64_t last = 1;
  for (int i = 0; i < 200; ++i) {
    sim.steps(50);
    EXPECT_GE(sim.count("I"), last);
    last = sim.count("I");
  }
}

TEST(CountSimulation, RandomizedTransitionRatesRespected) {
  // a,b -> c,b with rate 0.25: starting from 1 a and n-1 b, the number of
  // (a,b) meetings before conversion is geometric with mean 4.
  FiniteSpec spec;
  spec.add_symmetric("a", "b", "c", "b", 0.25);
  double total_conversion_meetings = 0.0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    CountSimulation sim(spec, 100 + trial);
    sim.set_count("a", 1);
    sim.set_count("b", 9);
    std::uint64_t meetings = 0;
    while (sim.count("c") == 0) {
      // Count only steps where the (a,b) pair could have met: simulate one
      // step and count meetings via interaction counting is awkward; instead
      // just count all steps and rescale by the meeting probability.
      sim.step();
      ++meetings;
    }
    total_conversion_meetings += static_cast<double>(meetings);
  }
  // P(meet) per step = 2 * 1 * 9 / (10 * 9) = 0.2; conversion per step = 0.05
  // => expected steps to convert = 20.
  EXPECT_NEAR(total_conversion_meetings / kTrials, 20.0, 3.0);
}

TEST(CountSimulation, DeterministicForSameSeed) {
  FiniteSpec spec;
  spec.add_symmetric("S", "I", "I", "I");
  CountSimulation a(spec, 42), b(spec, 42);
  for (auto* sim : {&a, &b}) {
    sim->set_count("S", 200);
    sim->set_count("I", 5);
    sim->steps(1000);
  }
  EXPECT_EQ(a.count("I"), b.count("I"));
}

TEST(CountSimulation, StepRequiresTwoAgents) {
  FiniteSpec spec;
  spec.add("a", "a", "a", "a");
  CountSimulation sim(spec, 1);
  sim.set_count("a", 1);
  EXPECT_THROW(sim.step(), std::invalid_argument);
}

}  // namespace
}  // namespace pops
