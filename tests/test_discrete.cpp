// Chi-square goodness-of-fit tests for the exact discrete samplers
// (stats/discrete.hpp) across their small (inversion) and large (rejection)
// parameter regimes.  All seeds are fixed, so the tests are deterministic;
// thresholds use alpha = 0.001.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/chi_square.hpp"
#include "stats/discrete.hpp"

namespace pops {
namespace {

double log_binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  return std::lgamma(dn + 1.0) - std::lgamma(dk + 1.0) -
         std::lgamma(dn - dk + 1.0) + dk * std::log(p) +
         (dn - dk) * std::log1p(-p);
}

double log_hypergeometric_pmf(std::uint64_t total, std::uint64_t good,
                              std::uint64_t draws, std::uint64_t k) {
  auto log_choose = [](std::uint64_t n, std::uint64_t r) {
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(r) + 1.0) -
           std::lgamma(static_cast<double>(n - r) + 1.0);
  };
  return log_choose(good, k) + log_choose(total - good, draws - k) -
         log_choose(total, draws);
}

/// Bin a sampler's output over support [lo, hi] against an exact log-pmf:
/// per-value bins in the bulk, with everything < lo pooled into the first bin
/// and everything > hi pooled into the last, then adjacent bins merged until
/// each expects >= 10 samples.  Returns the chi-square verdict.
template <typename Sampler, typename LogPmf>
void expect_matches_pmf(Sampler&& draw, LogPmf&& log_pmf, std::uint64_t lo,
                        std::uint64_t hi, std::uint64_t support_lo,
                        std::uint64_t support_hi, std::uint64_t samples) {
  // Exact probabilities per value plus pooled tails.
  std::vector<double> prob(hi - lo + 1, 0.0);
  for (std::uint64_t k = support_lo; k <= support_hi; ++k) {
    const double p = std::exp(log_pmf(k));
    const std::uint64_t bin = k < lo ? 0 : (k > hi ? hi - lo : k - lo);
    prob[bin] += p;
  }
  std::vector<std::uint64_t> observed(prob.size(), 0);
  for (std::uint64_t s = 0; s < samples; ++s) {
    const std::uint64_t k = draw();
    ASSERT_GE(k, support_lo);
    ASSERT_LE(k, support_hi);
    const std::uint64_t bin = k < lo ? 0 : (k > hi ? hi - lo : k - lo);
    ++observed[bin];
  }
  // Merge adjacent bins until every expected count is >= 10.
  std::vector<double> expected_merged;
  std::vector<std::uint64_t> observed_merged;
  double acc_e = 0.0;
  std::uint64_t acc_o = 0;
  for (std::size_t i = 0; i < prob.size(); ++i) {
    acc_e += prob[i] * static_cast<double>(samples);
    acc_o += observed[i];
    if (acc_e >= 10.0) {
      expected_merged.push_back(acc_e);
      observed_merged.push_back(acc_o);
      acc_e = 0.0;
      acc_o = 0;
    }
  }
  if (acc_o > 0 || acc_e > 0.0) {
    if (expected_merged.empty()) {
      expected_merged.push_back(std::max(acc_e, 1e-9));
      observed_merged.push_back(acc_o);
    } else {
      expected_merged.back() += acc_e;
      observed_merged.back() += acc_o;
    }
  }
  ASSERT_GE(expected_merged.size(), 3u) << "degenerate binning";
  const double stat = chi_square_statistic(expected_merged, observed_merged);
  const double crit = chi_square_critical(expected_merged.size() - 1);
  EXPECT_LE(stat, crit) << "chi-square " << stat << " over " << crit << " with "
                        << expected_merged.size() << " bins";
}

struct Range {
  std::uint64_t lo, hi;
};

Range bulk_range(double mean, double sd, std::uint64_t support_lo,
                 std::uint64_t support_hi) {
  const double lo = std::floor(mean - 6.0 * sd);
  const double hi = std::ceil(mean + 6.0 * sd);
  Range r;
  r.lo = lo <= static_cast<double>(support_lo) ? support_lo
                                               : static_cast<std::uint64_t>(lo);
  r.hi = hi >= static_cast<double>(support_hi) ? support_hi
                                               : static_cast<std::uint64_t>(hi);
  return r;
}

TEST(Binomial, SmallMeanInversionMatchesPmf) {
  Rng rng(1001);
  const std::uint64_t n = 25;
  const double p = 0.3;  // np = 7.5 -> inversion path
  const auto r = bulk_range(n * p, std::sqrt(n * p * (1 - p)), 0, n);
  expect_matches_pmf([&] { return binomial(rng, n, p); },
                     [&](std::uint64_t k) { return log_binomial_pmf(n, p, k); },
                     r.lo, r.hi, 0, n, 40000);
}

TEST(Binomial, TinyMeanLargeNMatchesPmf) {
  Rng rng(1002);
  const std::uint64_t n = 2'000'000;
  const double p = 2e-6;  // np = 4: inversion with huge n, (1-p)^n via log1p
  expect_matches_pmf([&] { return binomial(rng, n, p); },
                     [&](std::uint64_t k) { return log_binomial_pmf(n, p, k); },
                     0, 16, 0, n, 40000);
}

TEST(Binomial, LargeMeanBtrsMatchesPmf) {
  Rng rng(1003);
  const std::uint64_t n = 100000;
  const double p = 0.37;  // np huge -> BTRS
  const auto r = bulk_range(n * p, std::sqrt(n * p * (1 - p)), 0, n);
  expect_matches_pmf([&] { return binomial(rng, n, p); },
                     [&](std::uint64_t k) { return log_binomial_pmf(n, p, k); },
                     r.lo, r.hi, 0, n, 40000);
}

TEST(Binomial, HighPSymmetryMatchesPmf) {
  Rng rng(1004);
  const std::uint64_t n = 5000;
  const double p = 0.83;  // exercises the p > 1/2 reflection + BTRS
  const auto r = bulk_range(n * p, std::sqrt(n * p * (1 - p)), 0, n);
  expect_matches_pmf([&] { return binomial(rng, n, p); },
                     [&](std::uint64_t k) { return log_binomial_pmf(n, p, k); },
                     r.lo, r.hi, 0, n, 40000);
}

TEST(Binomial, Edges) {
  Rng rng(1005);
  EXPECT_EQ(binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(binomial(rng, 100, 1.0), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto k = binomial(rng, 3, 0.5);
    EXPECT_LE(k, 3u);
  }
  EXPECT_THROW(binomial(rng, 10, 1.5), std::invalid_argument);
}

TEST(Hypergeometric, SmallSampleHypMatchesPmf) {
  Rng rng(2001);
  // draws <= 10 with both classes > 32 -> the HYP sequential path (smaller
  // classes would take the small-class pmf walk instead).
  const std::uint64_t total = 100, good = 40, draws = 8;
  expect_matches_pmf(
      [&] { return hypergeometric(rng, total, good, draws); },
      [&](std::uint64_t k) { return log_hypergeometric_pmf(total, good, draws, k); },
      0, draws, 0, draws, 40000);
}

TEST(Hypergeometric, SmallGoodInversionMatchesPmf) {
  Rng rng(2006);
  // good <= 32 with a huge sample from a huge population: the O(good) pmf
  // walk (the batched simulator's per-class regime for compiled specs).
  const std::uint64_t total = 100000, good = 7, draws = 30000;
  expect_matches_pmf(
      [&] { return hypergeometric(rng, total, good, draws); },
      [&](std::uint64_t k) { return log_hypergeometric_pmf(total, good, draws, k); },
      0, good, 0, good, 40000);
}

TEST(Hypergeometric, SmallBadReflectionMatchesPmf) {
  Rng rng(2007);
  // bad <= 32 exercises the class-complement reflection onto the pmf walk;
  // support is pinned near `draws` ([draws - bad, draws]).
  const std::uint64_t total = 100000, good = 99993, draws = 30000;
  const std::uint64_t klo = draws - (total - good);
  expect_matches_pmf(
      [&] { return hypergeometric(rng, total, good, draws); },
      [&](std::uint64_t k) { return log_hypergeometric_pmf(total, good, draws, k); },
      klo, draws, klo, draws, 40000);
}

TEST(Hypergeometric, LogFactorialMatchesLgamma) {
  // The table/Stirling log-factorial backing HRUA must track lgamma to the
  // same accuracy class the sampler tolerates (~1ulp·|result|).
  for (const double k : {0.0, 1.0, 5.0, 100.0, 127.0, 128.0, 129.0, 1000.0,
                         123456.0, 1e9, 3.7e12}) {
    const double exact = std::lgamma(k + 1.0);
    const double fast = detail::log_factorial(k);
    EXPECT_NEAR(fast, exact, 1e-9 * std::max(1.0, std::abs(exact))) << "k=" << k;
  }
}

TEST(Hypergeometric, LargeSampleHruaMatchesPmf) {
  Rng rng(2002);
  const std::uint64_t total = 1'000'000, good = 300'000, draws = 5000;
  const double mean = static_cast<double>(draws) * 0.3;
  const double var = mean * 0.7 *
                     static_cast<double>(total - draws) /
                     static_cast<double>(total - 1);
  const auto r = bulk_range(mean, std::sqrt(var), 0, draws);
  expect_matches_pmf(
      [&] { return hypergeometric(rng, total, good, draws); },
      [&](std::uint64_t k) { return log_hypergeometric_pmf(total, good, draws, k); },
      r.lo, r.hi, 0, draws, 40000);
}

TEST(Hypergeometric, SampleBeyondHalfPopulationMatchesPmf) {
  // draws > total/2 exercises the m < sample reflection in HRUA.
  Rng rng(2003);
  const std::uint64_t total = 1000, good = 400, draws = 800;
  const std::uint64_t klo = good + draws - total;  // support is [200, 400]
  const double frac = static_cast<double>(good) / static_cast<double>(total);
  const double mean = static_cast<double>(draws) * frac;
  const double var = mean * (1 - frac) *
                     static_cast<double>(total - draws) /
                     static_cast<double>(total - 1);
  const auto r = bulk_range(mean, std::sqrt(var), klo, good);
  expect_matches_pmf(
      [&] { return hypergeometric(rng, total, good, draws); },
      [&](std::uint64_t k) { return log_hypergeometric_pmf(total, good, draws, k); },
      r.lo, r.hi, klo, good, 40000);
}

TEST(Hypergeometric, GoodMajorityMatchesPmf) {
  // good > bad exercises the good > bad reflection.
  Rng rng(2004);
  const std::uint64_t total = 1000, good = 700, draws = 100;
  const double frac = 0.7;
  const double mean = static_cast<double>(draws) * frac;
  const double var = mean * (1 - frac) *
                     static_cast<double>(total - draws) /
                     static_cast<double>(total - 1);
  const auto r = bulk_range(mean, std::sqrt(var), 0, draws);
  expect_matches_pmf(
      [&] { return hypergeometric(rng, total, good, draws); },
      [&](std::uint64_t k) { return log_hypergeometric_pmf(total, good, draws, k); },
      r.lo, r.hi, 0, draws, 40000);
}

TEST(Hypergeometric, Edges) {
  Rng rng(2005);
  EXPECT_EQ(hypergeometric(rng, 100, 0, 50), 0u);
  EXPECT_EQ(hypergeometric(rng, 100, 100, 50), 50u);
  EXPECT_EQ(hypergeometric(rng, 100, 30, 0), 0u);
  EXPECT_EQ(hypergeometric(rng, 100, 30, 100), 30u);
  EXPECT_THROW(hypergeometric(rng, 10, 11, 5), std::invalid_argument);
  EXPECT_THROW(hypergeometric(rng, 10, 5, 11), std::invalid_argument);
  // Result always within the hypergeometric support.
  for (int i = 0; i < 2000; ++i) {
    const auto k = hypergeometric(rng, 40, 15, 30);
    EXPECT_GE(k, 5u);   // draws - bad = 30 - 25
    EXPECT_LE(k, 15u);  // good
  }
}

TEST(MultivariateHypergeometric, MarginalsAndTotals) {
  Rng rng(3001);
  const std::vector<std::uint64_t> counts{50, 70, 0, 90};
  const std::uint64_t draws = 60;
  std::vector<std::uint64_t> out;
  std::vector<std::uint64_t> sums(counts.size(), 0);
  const std::uint64_t reps = 30000;
  for (std::uint64_t r = 0; r < reps; ++r) {
    multivariate_hypergeometric(rng, counts, draws, out);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_LE(out[i], counts[i]);
      total += out[i];
      sums[i] += out[i];
    }
    ASSERT_EQ(total, draws);
  }
  // Marginal means: draws * counts[i] / total_count (= 60 * c / 210).
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double mean = static_cast<double>(sums[i]) / static_cast<double>(reps);
    const double expect = 60.0 * static_cast<double>(counts[i]) / 210.0;
    EXPECT_NEAR(mean, expect, 0.08) << "class " << i;
  }
}

TEST(Discrete, DeterministicForSameSeed) {
  Rng a(77), b(77);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(binomial(a, 1000, 0.25), binomial(b, 1000, 0.25));
    EXPECT_EQ(hypergeometric(a, 10000, 4000, 500),
              hypergeometric(b, 10000, 4000, 500));
  }
}

}  // namespace
}  // namespace pops
