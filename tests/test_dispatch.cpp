// Tests for the sparse dispatch table (sim/dispatch.hpp): cell
// classification, the pick() residual clamp, sorted-vs-direct row layout
// equivalence (including bit-identical simulator trajectories), and the
// incremental extension path the JIT compiler drives.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "proto/partition.hpp"
#include "sim/batched_count_simulation.hpp"
#include "sim/count_simulation.hpp"
#include "sim/dispatch.hpp"

namespace pops {
namespace {

using Cell = DispatchTable::Cell;
using Kind = DispatchTable::CellKind;
using Layout = DispatchTable::RowLayout;

// ------------------------------------------------------- classification ----

TEST(DispatchTable, ClassifiesCellsAndReportsPresence) {
  FiniteSpec spec;
  spec.add("a", "b", "c", "d");             // deterministic
  spec.add("b", "a", "a", "a", 0.25);       // randomized with residual
  spec.state("e");                          // isolated state: all cells absent
  const DispatchTable table(spec);
  EXPECT_EQ(table.num_states(), 5u);

  const Cell det = table.find(spec.id("a"), spec.id("b"));
  EXPECT_TRUE(det.present);
  EXPECT_EQ(det.kind, Kind::kDeterministic);
  EXPECT_EQ(det.begin->out_receiver, spec.id("c"));
  EXPECT_EQ(det.begin->out_sender, spec.id("d"));

  const Cell rnd = table.find(spec.id("b"), spec.id("a"));
  EXPECT_EQ(rnd.kind, Kind::kRandomized);
  EXPECT_FALSE(rnd.clamp);  // 0.25 leaves real null mass

  const Cell absent = table.find(spec.id("e"), spec.id("a"));
  EXPECT_FALSE(absent.present);
  EXPECT_EQ(absent.kind, Kind::kNull);
}

// ------------------------------------------------------------ pick clamp ----

TEST(DispatchTable, PickClampsFullMassCellInsteadOfReturningNull) {
  // Regression: rates summing to 1.0 in floating point, with a rate draw u
  // just below 1 whose sequential subtraction chain rounds upward and falls
  // off the end of the entry list.  Found by direct search; before the
  // clamp, pick() returned the null transition for this cell even though it
  // has no residual null mass.
  const std::vector<double> rates = {
      0.051088007354679013, 0.03661847248889874,  0.10992766403617861,
      0.046248231158573939, 0.013880991676881331, 0.15335111262106607,
      0.117647972435756,    0.12071478941201877,  0.25415695061439203,
      0.096365808201555547};
  double total = 0.0;
  for (const double r : rates) total += r;
  ASSERT_GE(total, 1.0) << "pattern must have no residual mass";

  FiniteSpec spec;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    spec.add("a", "a", "o" + std::to_string(i), "a", rates[i]);
  }
  const DispatchTable table(spec);
  const Cell cell = table.find(spec.id("a"), spec.id("a"));
  ASSERT_EQ(cell.kind, Kind::kRandomized);
  EXPECT_TRUE(cell.clamp);

  const double u = 0.99999999999999989;  // the searched fall-through draw
  {  // the unclamped walk really does fall off the end for this (rates, u)
    double v = u;
    bool fell = true;
    for (const double r : rates) {
      if (v < r) {
        fell = false;
        break;
      }
      v -= r;
    }
    ASSERT_TRUE(fell) << "searched instance no longer falls through";
  }
  const auto* e = DispatchTable::pick(cell, u);
  ASSERT_NE(e, nullptr) << "full-mass cell spuriously fired the null transition";
  EXPECT_EQ(e, cell.end - 1) << "stray sliver must clamp to the last entry";

  // Sweep the top of [0, 1): no u may ever fall through on a full-mass cell.
  for (int k = 1; k < 4096; ++k) {
    const double v = 1.0 - static_cast<double>(k) * 1.1102230246251565e-16;
    EXPECT_NE(DispatchTable::pick(cell, v), nullptr) << "u=" << v;
  }
}

TEST(DispatchTable, PickStillReturnsNullForResidualMass) {
  FiniteSpec spec;
  spec.add("a", "a", "b", "a", 0.25);
  spec.add("a", "a", "a", "b", 0.25);
  const DispatchTable table(spec);
  const Cell cell = table.find(spec.id("a"), spec.id("a"));
  EXPECT_FALSE(cell.clamp);
  EXPECT_NE(DispatchTable::pick(cell, 0.1), nullptr);
  EXPECT_NE(DispatchTable::pick(cell, 0.3), nullptr);
  EXPECT_EQ(DispatchTable::pick(cell, 0.75), nullptr);   // residual half
  EXPECT_EQ(DispatchTable::pick(cell, 0.9999), nullptr);
}

// ------------------------------------------------------- layout parity -----

/// Every (r, s) cell must resolve identically under forced-sorted and
/// forced-direct rows: same presence, kind, clamp, and entry list.
void expect_same_cells(const FiniteSpec& spec) {
  const DispatchTable sorted(spec, Layout::kSorted);
  const DispatchTable direct(spec, Layout::kDirect);
  for (std::uint32_t r = 0; r < spec.num_states(); ++r) {
    for (std::uint32_t s = 0; s < spec.num_states(); ++s) {
      const Cell a = sorted.find(r, s);
      const Cell b = direct.find(r, s);
      ASSERT_EQ(a.present, b.present) << r << "," << s;
      ASSERT_EQ(a.kind, b.kind);
      ASSERT_EQ(a.clamp, b.clamp);
      ASSERT_EQ(a.end - a.begin, b.end - b.begin);
      for (std::ptrdiff_t i = 0; i < a.end - a.begin; ++i) {
        ASSERT_EQ(a.begin[i].out_receiver, b.begin[i].out_receiver);
        ASSERT_EQ(a.begin[i].out_sender, b.begin[i].out_sender);
        ASSERT_EQ(a.begin[i].rate, b.begin[i].rate);
      }
    }
  }
}

TEST(DispatchTable, SortedAndDirectRowsResolveIdentically) {
  expect_same_cells(partition_spec());
  const auto proto = log_size_tiny();
  const auto compiled =
      ProtocolCompiler<Bounded<LogSizeEstimation>>(proto, proto.geometric_cap()).compile();
  expect_same_cells(compiled.spec);
}

/// The layouts index the same entry storage, so simulator trajectories under
/// a fixed seed must be bit-identical — the RNG stream never depends on the
/// row representation.
template <typename Sim>
void expect_same_trajectory(const FiniteSpec& spec,
                            const std::vector<std::pair<std::string, std::uint64_t>>& init,
                            std::uint64_t seed, std::uint64_t steps, int checkpoints) {
  Sim a(spec, seed, Layout::kSorted);
  Sim b(spec, seed, Layout::kDirect);
  for (const auto& [state, c] : init) {
    a.set_count(state, c);
    b.set_count(state, c);
  }
  for (int i = 0; i < checkpoints; ++i) {
    a.steps(steps);
    b.steps(steps);
    ASSERT_EQ(a.counts(), b.counts()) << "diverged at checkpoint " << i;
  }
}

TEST(DispatchTable, SparseAndDenseTrajectoriesAreBitIdentical) {
  const auto init =
      std::vector<std::pair<std::string, std::uint64_t>>{{"X", 50000}};
  expect_same_trajectory<CountSimulation>(partition_spec(), init, 0xD15, 2000, 10);
  expect_same_trajectory<BatchedCountSimulation>(partition_spec(), init, 0xD16, 20000, 10);
}

TEST(DispatchTable, CompiledHeadlineTrajectoriesAreBitIdentical) {
  const auto proto = log_size_tiny();
  const auto compiled =
      ProtocolCompiler<Bounded<LogSizeEstimation>>(proto, proto.geometric_cap()).compile();
  const auto init = compiled.initial_states();
  ASSERT_EQ(init.size(), 1u);
  const std::string seed_state = compiled.spec.name(init[0]);
  const auto init_counts =
      std::vector<std::pair<std::string, std::uint64_t>>{{seed_state, 100000}};
  expect_same_trajectory<CountSimulation>(compiled.spec, init_counts, 0xD17, 5000, 6);
  expect_same_trajectory<BatchedCountSimulation>(compiled.spec, init_counts, 0xD18,
                                                 200000, 6);
}

// --------------------------------------------------- incremental extension --

TEST(DispatchTable, ExtendsIncrementally) {
  DispatchTable table(2, Layout::kAuto);
  EXPECT_FALSE(table.find(0, 1).present);

  const DispatchTable::Entry entry{1, 1, 1.0};
  table.set_cell(0, 1, &entry, 1);
  EXPECT_TRUE(table.find(0, 1).present);
  EXPECT_EQ(table.find(0, 1).kind, Kind::kDeterministic);
  EXPECT_FALSE(table.find(1, 0).present);

  // An explicitly null registration is present but fires nothing.
  table.set_cell(1, 0, nullptr, 0);
  EXPECT_TRUE(table.find(1, 0).present);
  EXPECT_EQ(table.find(1, 0).kind, Kind::kNull);

  // Growth: new states have empty rows; old cells survive.
  table.grow_states(5);
  EXPECT_EQ(table.num_states(), 5u);
  EXPECT_TRUE(table.find(0, 1).present);
  EXPECT_FALSE(table.find(4, 4).present);
  const DispatchTable::Entry wide{4, 0, 0.5};
  table.set_cell(4, 4, &wide, 1);
  EXPECT_EQ(table.find(4, 4).kind, Kind::kRandomized);
  EXPECT_EQ(table.num_cells(), 3u);

  EXPECT_THROW(table.set_cell(0, 1, &entry, 1), std::invalid_argument);  // re-registration
  EXPECT_THROW(table.set_cell(7, 0, &entry, 1), std::invalid_argument);  // out of range
}

TEST(DispatchTable, SortedRowUpgradesToDirectUnderLoad) {
  // 512 states keeps kAuto rows sorted until a row's occupancy crosses
  // S / 8 = 64; filling one row past that exercises the upgrade path.
  const std::uint32_t s = 512;
  DispatchTable table(s, Layout::kAuto);
  for (std::uint32_t j = 0; j < 100; ++j) {
    const DispatchTable::Entry e{j, 0, 1.0};
    table.set_cell(3, (j * 37) % s, &e, 1);  // scattered, unsorted insertion order
  }
  for (std::uint32_t j = 0; j < 100; ++j) {
    const Cell c = table.find(3, (j * 37) % s);
    ASSERT_TRUE(c.present);
    ASSERT_EQ(c.begin->out_receiver, j);
  }
  EXPECT_FALSE(table.find(3, 1).present);  // 1 is not a multiple of 37 mod 512
}

}  // namespace
}  // namespace pops
