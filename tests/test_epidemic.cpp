// Tests for epidemic protocols against the paper's time bounds (Lemma A.1,
// Corollaries 3.4/3.5).
#include <gtest/gtest.h>

#include <cmath>

#include "harness/trials.hpp"
#include "proto/epidemic.hpp"
#include "sim/count_simulation.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

double epidemic_completion_time(std::uint64_t n, std::uint64_t seed) {
  CountSimulation sim(epidemic_spec(), seed);
  sim.set_count("S", n - 1);
  sim.set_count("I", 1);
  const double t = sim.run_until(
      [](const CountSimulation& s) { return s.count("S") == 0; }, 0.5, 1e6);
  EXPECT_GE(t, 0.0);
  return t;
}

TEST(Epidemic, MeanCompletionTimeMatchesLemmaA1) {
  // E[T] = ((n-1)/n) H_{n-1}; sample mean over trials should be close.
  constexpr std::uint64_t kN = 2000;
  const auto times = run_trials(40, 11, [](std::uint64_t seed, std::uint64_t) {
    return epidemic_completion_time(kN, seed);
  });
  Summary s;
  for (double t : times) s.add(t);
  const double expected = bounds::epidemic_expected_time(kN);
  // run_until checks on a 0.5-time grid, so allow that quantization plus
  // sampling noise.
  EXPECT_NEAR(s.mean(), expected, 2.0);
}

TEST(Epidemic, UpperTailLemmaA1) {
  // Pr[T > 24 ln n] < 4 n^{-5}: should essentially never happen.
  constexpr std::uint64_t kN = 500;
  const double cap = 24.0 * std::log(static_cast<double>(kN));
  const auto times = run_trials(60, 13, [](std::uint64_t seed, std::uint64_t) {
    return epidemic_completion_time(kN, seed);
  });
  for (double t : times) EXPECT_LT(t, cap);
}

TEST(Epidemic, LowerTailLemmaA1) {
  // Pr[T < (1/4) ln n] < 2 e^{-sqrt n}: never at n = 500.
  constexpr std::uint64_t kN = 500;
  const double floor_t = 0.25 * std::log(static_cast<double>(kN));
  const auto times = run_trials(60, 17, [](std::uint64_t seed, std::uint64_t) {
    return epidemic_completion_time(kN, seed);
  });
  for (double t : times) EXPECT_GT(t, floor_t);
}

TEST(Epidemic, SubpopulationSlowdownCorollary34) {
  // Epidemic among a = n/3 agents completes within 24 ln a w.h.p.
  // (Corollary 3.5) but takes longer than a full-population epidemic.
  constexpr std::uint64_t kN = 1500;
  constexpr std::uint64_t kActive = kN / 3;
  const auto times = run_trials(30, 19, [](std::uint64_t seed, std::uint64_t) {
    CountSimulation sim(subpopulation_epidemic_spec(), seed);
    sim.set_count("S", kActive - 1);
    sim.set_count("I", 1);
    sim.set_count("B", kN - kActive);
    const double t = sim.run_until(
        [](const CountSimulation& s) { return s.count("S") == 0; }, 0.5, 1e6);
    EXPECT_GE(t, 0.0);
    return t;
  });
  Summary sub;
  for (double t : times) sub.add(t);
  const double cap = 24.0 * std::log(static_cast<double>(kActive));
  EXPECT_LT(sub.max(), cap);
  // ~c^2/(c... the subpopulation epidemic is slower than the full one by a
  // constant factor: compare means.
  const auto full_times = run_trials(30, 23, [](std::uint64_t seed, std::uint64_t) {
    return epidemic_completion_time(kN, seed);
  });
  Summary full;
  for (double t : full_times) full.add(t);
  EXPECT_GT(sub.mean(), full.mean());
}

TEST(ValueEpidemic, MaxPropagatesToEveryone) {
  AgentSimulation<ValueEpidemic> sim(ValueEpidemic{}, 500, 3);
  for (std::uint64_t i = 0; i < 500; ++i) sim.set_state(i, ValueEpidemic::State{i});
  const double t = sim.run_until(
      [](const AgentSimulation<ValueEpidemic>& s) {
        for (const auto& a : s.agents()) {
          if (a.value != 499) return false;
        }
        return true;
      },
      1.0, 1e5);
  EXPECT_GE(t, 0.0);
  EXPECT_LT(t, 24.0 * std::log(500.0));
}

TEST(ValueEpidemic, ValueNeverDecreases) {
  AgentSimulation<ValueEpidemic> sim(ValueEpidemic{}, 50, 5);
  sim.set_state(7, ValueEpidemic::State{42});
  std::uint64_t last_max_count = 0;
  for (int i = 0; i < 100; ++i) {
    sim.steps(25);
    std::uint64_t count = 0;
    for (const auto& a : sim.agents()) {
      if (a.value == 42) ++count;
    }
    EXPECT_GE(count, last_max_count);
    last_max_count = count;
  }
}

}  // namespace
}  // namespace pops
