// Tests for the exact-counting backup (paper Section 3.3): the merge
// machinery's mass conservation, the final binary-representation invariant,
// and the probability-1 upper-bound property kex >= log2 n.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "harness/trials.hpp"
#include "proto/exact_counting.hpp"
#include "proto/max_geometric_estimate.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {
namespace {

using Sim = AgentSimulation<ExactCountingBackup>;

TEST(ExactCounting, MassIsConserved) {
  // sum over level-agents of 2^level == n at all times.
  Sim sim(ExactCountingBackup{}, 100, 1);
  for (int i = 0; i < 50; ++i) {
    sim.steps(100);
    std::uint64_t mass = 0;
    for (const auto& a : sim.agents()) {
      if (a.is_level) mass += std::uint64_t{1} << a.level;
    }
    EXPECT_EQ(mass, 100u);
  }
}

// The ℓ-level multiset has stabilized once no two ℓ agents share a level.
bool levels_stable(const Sim& sim) {
  std::map<std::uint32_t, int> level_counts;
  for (const auto& a : sim.agents()) {
    if (a.is_level && ++level_counts[a.level] > 1) return false;
  }
  return true;
}

TEST(ExactCounting, StabilizesToBinaryRepresentation) {
  for (std::uint64_t n : {37ULL, 64ULL, 100ULL, 255ULL}) {
    Sim sim(ExactCountingBackup{}, n, 17 + n);
    const double t = sim.run_until(
        [](const Sim& s) { return converged(s) && levels_stable(s); }, 5.0, 1e6);
    ASSERT_GE(t, 0.0) << "n=" << n;
    // Final level-agents have distinct levels forming the binary rep of n.
    std::map<std::uint32_t, int> level_counts;
    for (const auto& a : sim.agents()) {
      if (a.is_level) ++level_counts[a.level];
    }
    std::uint64_t mass = 0;
    for (const auto& [level, count] : level_counts) {
      EXPECT_EQ(count, 1) << "level " << level << " duplicated at n=" << n;
      mass += std::uint64_t{1} << level;
    }
    EXPECT_EQ(mass, n);
  }
}

TEST(ExactCounting, EstimateIsUpperBoundOnLogN) {
  // kex = best + 1 >= log2 n once converged, and 2^{kex-1} <= n <= 2^{kex}.
  for (std::uint64_t n : {10ULL, 31ULL, 32ULL, 33ULL, 200ULL}) {
    Sim sim(ExactCountingBackup{}, n, 23 + n);
    ASSERT_GE(sim.run_until([](const Sim& s) { return converged(s); }, 5.0, 1e6), 0.0);
    const double logn = std::log2(static_cast<double>(n));
    for (const auto& a : sim.agents()) {
      const auto kex = ExactCountingBackup::estimate(a);
      EXPECT_GE(static_cast<double>(kex), logn) << "n=" << n;
      EXPECT_LE(static_cast<double>(kex), logn + 1.0 + 1e-9) << "n=" << n;
    }
  }
}

TEST(ExactCounting, BestApproachesFromBelow) {
  // `best` is monotone nondecreasing for every agent.
  Sim sim(ExactCountingBackup{}, 128, 29);
  std::vector<std::uint32_t> last(128, 0);
  for (int i = 0; i < 100; ++i) {
    sim.steps(200);
    for (std::uint64_t j = 0; j < 128; ++j) {
      EXPECT_GE(sim.agent(j).best, last[j]);
      last[j] = sim.agent(j).best;
    }
  }
}

TEST(ExactCounting, PowerOfTwoReachesExactLog) {
  Sim sim(ExactCountingBackup{}, 64, 31);
  ASSERT_GE(sim.run_until([](const Sim& s) { return converged(s); }, 5.0, 1e6), 0.0);
  for (const auto& a : sim.agents()) {
    EXPECT_EQ(a.best, 6u);
    EXPECT_EQ(ExactCountingBackup::estimate(a), 7u);
  }
}

TEST(MaxGeometricBaseline, ConvergesToCommonEstimateInBand) {
  // The Alistarh et al. baseline: after O(log n) time all agents share
  // max-of-geometrics, within [log n - log ln n, 2 log n] w.h.p.
  constexpr std::uint64_t kN = 2048;
  int in_band = 0;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    AgentSimulation<MaxGeometricEstimate> sim(MaxGeometricEstimate{}, kN,
                                              trial_seed(41, trial));
    const double t = sim.run_until(
        [](const AgentSimulation<MaxGeometricEstimate>& s) { return converged(s); }, 1.0,
        1e5);
    ASSERT_GE(t, 0.0);
    EXPECT_LT(t, 24.0 * std::log(static_cast<double>(kN)));
    const double est = sim.agent(0).estimate;
    const double logn = std::log2(static_cast<double>(kN));
    if (est >= logn - std::log2(std::log(static_cast<double>(kN))) && est <= 2.0 * logn) {
      ++in_band;
    }
  }
  EXPECT_GE(in_band, kTrials - 2);  // Lemma D.7: failures ~ 2/N per trial
}

}  // namespace
}  // namespace pops
