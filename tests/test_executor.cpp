// Tests for the process-wide work-stealing executor (core/executor.hpp):
//
//   * nested submission — a task running on the pool fans out a nested
//     TaskGroup (trials that compile inside the pool) and waits on it
//     without deadlock, and the whole nest runs on the executor's threads
//     only (no oversubscription, whatever the nesting depth);
//   * width override — Executor::set_threads() restarts the pool at the
//     new width and every client (run_trials_parallel, the eager closure)
//     observes it on its next fan-out;
//   * determinism — eager compiles are bit-identical and parallel trials
//     per-seed invariant at widths 1, 2 and 8 (the contract that lets
//     set_threads change wall-clock, never output);
//   * exception propagation — a throwing trial/task surfaces at wait()
//     exactly once, after every sibling finished.
//
// Also runs under the TSan preset (scripts/tsan_check.sh), which is what
// exercises the Chase–Lev deques and the help-while-waiting protocol under
// the race detector.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "compile/lazy.hpp"
#include "core/executor.hpp"
#include "harness/equivalence.hpp"
#include "harness/trials.hpp"

namespace pops {
namespace {

using LS = LogSizeEstimation;
using BLS = Bounded<LS>;

/// Pin the executor width for a test body and restore the default after.
class WidthGuard {
 public:
  explicit WidthGuard(unsigned width) { Executor::set_threads(width); }
  ~WidthGuard() { Executor::set_threads(0); }
};

/// Distinct OS threads observed executing some instrumented region.
class ThreadTracker {
 public:
  void note() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ids_.insert(std::this_thread::get_id());
  }
  std::size_t count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ids_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::set<std::thread::id> ids_;
};

TEST(Executor, RunsEverySubmittedTask) {
  WidthGuard width(4);
  std::atomic<std::uint64_t> ran{0};
  Executor::TaskGroup group;
  for (int i = 0; i < 100; ++i) {
    group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 100u);
}

TEST(Executor, SetThreadsRestartsThePool) {
  for (const unsigned width : {1u, 2u, 8u, 3u}) {
    Executor::set_threads(width);
    EXPECT_EQ(Executor::instance().threads(), width);
    std::atomic<std::uint64_t> ran{0};
    Executor::TaskGroup group;
    for (int i = 0; i < 16; ++i) {
      group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    EXPECT_EQ(ran.load(), 16u) << "width=" << width;
  }
  Executor::set_threads(0);
  EXPECT_GE(Executor::instance().threads(), 1u);
}

TEST(Executor, NestedGroupsCompleteWithoutDeadlockOrOversubscription) {
  WidthGuard width(4);
  ThreadTracker tracker;
  std::atomic<std::uint64_t> leaves{0};
  // Three levels of fan-out, every level waiting on the next from inside a
  // pool task: 4 * 4 * 4 leaves.  With per-call thread pools this nest
  // would have tried to spawn 4 + 16 + 64 threads; on the executor it must
  // finish on at most threads() of them (workers + the caller).
  Executor::TaskGroup root;
  for (int a = 0; a < 4; ++a) {
    root.run([&] {
      tracker.note();
      Executor::TaskGroup mid;
      for (int b = 0; b < 4; ++b) {
        mid.run([&] {
          tracker.note();
          Executor::TaskGroup leaf;
          for (int c = 0; c < 4; ++c) {
            leaf.run([&] {
              tracker.note();
              leaves.fetch_add(1, std::memory_order_relaxed);
            });
          }
          leaf.wait();
        });
      }
      mid.wait();
    });
  }
  root.wait();
  EXPECT_EQ(leaves.load(), 64u);
  EXPECT_LE(tracker.count(), Executor::instance().threads());
}

TEST(Executor, TrialsThatCompileInsideThePoolComplete) {
  WidthGuard width(4);
  const auto proto = log_size_tiny();
  const auto reference = ProtocolCompiler<BLS>(proto, proto.geometric_cap()).compile(1);
  ThreadTracker tracker;
  // Each trial eagerly compiles the preset *inside* a pool task — the
  // nested harness shape the ROADMAP flagged as oversubscribing: closure
  // rounds submit sub-tasks to the same executor the trials run on.
  const auto totals = run_trials_parallel(
      4, 0xAB5, [&](std::uint64_t, std::uint64_t) {
        tracker.note();
        const auto compiled =
            ProtocolCompiler<BLS>(proto, proto.geometric_cap()).compile();
        return static_cast<std::uint64_t>(compiled.num_states()) * 1000000u +
               compiled.num_transitions();
      });
  for (const auto total : totals) {
    EXPECT_EQ(total, static_cast<std::uint64_t>(reference.num_states()) * 1000000u +
                         reference.num_transitions());
  }
  EXPECT_LE(tracker.count(), Executor::instance().threads());
}

TEST(Executor, EagerCompileIsBitIdenticalAcrossWidths) {
  const auto proto = log_size_tiny();
  WidthGuard restore(1);  // dtor restores the default even on ASSERT bailout
  const auto ref = ProtocolCompiler<BLS>(proto, proto.geometric_cap()).compile();
  for (const unsigned width : {2u, 8u}) {
    Executor::set_threads(width);
    const auto got = ProtocolCompiler<BLS>(proto, proto.geometric_cap()).compile();
    ASSERT_EQ(ref.num_states(), got.num_states()) << "width=" << width;
    for (std::uint32_t i = 0; i < ref.num_states(); ++i) {
      ASSERT_EQ(ref.spec.name(i), got.spec.name(i)) << "width=" << width;
    }
    const auto& ta = ref.spec.transitions();
    const auto& tb = got.spec.transitions();
    ASSERT_EQ(ta.size(), tb.size()) << "width=" << width;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      ASSERT_TRUE(ta[i].in_receiver == tb[i].in_receiver &&
                  ta[i].in_sender == tb[i].in_sender &&
                  ta[i].out_receiver == tb[i].out_receiver &&
                  ta[i].out_sender == tb[i].out_sender && ta[i].rate == tb[i].rate)
          << "transition " << i << " diverged at width=" << width;
    }
    EXPECT_EQ(ref.initial_distribution, got.initial_distribution);
    EXPECT_EQ(ref.pairs_explored, got.pairs_explored);
  }
}

TEST(Executor, ParallelTrialsArePerSeedInvariantAcrossWidths) {
  const auto proto = log_size_tiny();
  WidthGuard restore(1);  // dtor restores the default even on ASSERT bailout
  std::vector<std::uint64_t> reference;
  for (const unsigned width : {1u, 2u, 8u}) {
    Executor::set_threads(width);
    LazyCompiledSpec<BLS> lazy(proto, proto.geometric_cap());
    const auto values = lazy_trial_values(
        lazy, /*n=*/2000, /*interactions=*/30000, /*trials=*/10,
        /*master_seed=*/0xE8EC, [](const LS::State& s) { return s.role == Role::A; });
    if (width == 1) {
      reference = values;
    } else {
      EXPECT_EQ(reference, values) << "per-seed trial values diverged at width=" << width;
    }
  }
}

TEST(Executor, EffectiveTrialThreadsReportsTheRealFanOut) {
  WidthGuard width(4);
  EXPECT_EQ(effective_trial_threads(100), 4u);       // width-bound
  EXPECT_EQ(effective_trial_threads(2), 2u);         // trial-bound
  EXPECT_EQ(effective_trial_threads(100, 2), 2u);    // request below width
  EXPECT_EQ(effective_trial_threads(100, 64), 4u);   // request above width clamps
  EXPECT_EQ(effective_trial_threads(0), 1u);
}

TEST(Executor, TaskExceptionSurfacesAtWait) {
  WidthGuard width(4);
  std::atomic<std::uint64_t> ran{0};
  Executor::TaskGroup group;
  for (int i = 0; i < 8; ++i) {
    group.run([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8u);  // siblings all finished before wait returned
}

TEST(Executor, TrialExceptionPropagatesFromTheHarness) {
  WidthGuard width(4);
  EXPECT_THROW(run_trials_parallel(16, 0xDEAD,
                                   [](std::uint64_t, std::uint64_t i) -> int {
                                     if (i == 5) throw std::runtime_error("trial failed");
                                     return static_cast<int>(i);
                                   }),
               std::runtime_error);
}

}  // namespace
}  // namespace pops
