// Tests for maxima of geometric random variables (paper Section D.2):
// the exact sampler vs brute force, Lemma D.4's expectation band, Lemma D.7
// tails, Corollary D.6 concentration, and Corollary D.10 averaging.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "stats/bounds.hpp"
#include "stats/geometric.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

TEST(MaxGeometric, BruteAndExactAgreeInDistribution) {
  // Compare empirical means and a tail atom of the two samplers at N = 64.
  Rng rng(1);
  constexpr int kTrials = 20000;
  Summary brute, exact;
  int brute_tail = 0, exact_tail = 0;
  for (int i = 0; i < kTrials; ++i) {
    const auto b = max_geometric_brute(64, rng);
    const auto e = max_geometric_exact(64, rng);
    brute.add(b);
    exact.add(e);
    brute_tail += b >= 10 ? 1 : 0;
    exact_tail += e >= 10 ? 1 : 0;
  }
  EXPECT_NEAR(brute.mean(), exact.mean(), 0.05);
  EXPECT_NEAR(static_cast<double>(brute_tail) / kTrials,
              static_cast<double>(exact_tail) / kTrials, 0.01);
}

TEST(MaxGeometric, ExactMeanMatchesClosedForm) {
  // Monte Carlo mean of the exact sampler vs the survival-sum ground truth.
  Rng rng(2);
  for (std::uint64_t n : {50ULL, 1000ULL, 100000ULL}) {
    Summary s;
    for (int i = 0; i < 30000; ++i) s.add(max_geometric_exact(n, rng));
    EXPECT_NEAR(s.mean(), max_geometric_mean_exact(n), 0.06) << "N=" << n;
  }
}

TEST(MaxGeometric, LemmaD4MeanBand) {
  // log N + 1 < E[M] < log N + 3/2 for N >= 50 (Lemma D.4).
  for (std::uint64_t n : {50ULL, 100ULL, 1000ULL, 10000ULL, 1000000ULL}) {
    const double mean = max_geometric_mean_exact(n);
    const auto band = bounds::lemma_d4_mean_band(n);
    EXPECT_TRUE(band.contains(mean))
        << "N=" << n << " mean=" << mean << " band=[" << band.lo << "," << band.hi << "]";
  }
}

TEST(MaxGeometric, LemmaD7UpperTail) {
  // Pr[M >= 2 log N] < 1/N.  The paper computes Pr[G >= t] as 2^{-t}; with
  // the support-{1,2,...} convention it is 2^{-(t-1)}, so the clean bound
  // holds at threshold 2 log N + 1.  We test at 2 log N + 2 to leave room
  // for Monte Carlo noise (true p ~ 1/(2N) there).
  Rng rng(3);
  constexpr std::uint64_t kN = 256;  // log N = 8
  constexpr int kTrials = 200000;
  int over = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (max_geometric_exact(kN, rng) >= 18) ++over;
  }
  const double freq = static_cast<double>(over) / kTrials;
  EXPECT_LT(freq, bounds::lemma_d7_tail(kN));
}

TEST(MaxGeometric, LemmaD7LowerTail) {
  // Pr[M <= log N - log ln N] < 1/N.
  Rng rng(4);
  constexpr std::uint64_t kN = 1024;  // log N = 10, ln N ~ 6.93, log ln N ~ 2.79
  constexpr int kTrials = 200000;
  const double cutoff = 10.0 - std::log2(std::log(1024.0));
  int under = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (static_cast<double>(max_geometric_exact(kN, rng)) <= cutoff) ++under;
  }
  const double freq = static_cast<double>(under) / kTrials;
  EXPECT_LT(freq, bounds::lemma_d7_tail(kN));
}

TEST(MaxGeometric, CorollaryD6Concentration) {
  // Pr[|M - E[M]| >= lambda] < 3.31 e^{-lambda/2}.
  Rng rng(5);
  constexpr std::uint64_t kN = 4096;
  const double mean = max_geometric_mean_exact(kN);
  constexpr int kTrials = 100000;
  for (double lambda : {3.0, 5.0, 8.0}) {
    int out = 0;
    for (int i = 0; i < kTrials; ++i) {
      const double m = max_geometric_exact(kN, rng);
      if (std::abs(m - mean) >= lambda) ++out;
    }
    const double freq = static_cast<double>(out) / kTrials;
    EXPECT_LT(freq, bounds::max_geometric_concentration_tail(lambda)) << "lambda=" << lambda;
  }
}

TEST(MaxGeometric, CorollaryD10AverageOfMaxima) {
  // K >= 4 log N => Pr[|S/K - log N| >= 4.7] <= 2/N.
  Rng rng(6);
  constexpr std::uint64_t kN = 512;  // log N = 9
  const std::uint64_t k = 4 * 9;
  constexpr int kTrials = 20000;
  int bad = 0;
  for (int i = 0; i < kTrials; ++i) {
    double sum = 0.0;
    for (std::uint64_t j = 0; j < k; ++j) sum += max_geometric_exact(kN, rng);
    if (std::abs(sum / static_cast<double>(k) - 9.0) >= 4.7) ++bad;
  }
  const double freq = static_cast<double>(bad) / kTrials;
  EXPECT_LE(freq, bounds::cor_d10_tail(kN));
}

TEST(MaxGeometric, AverageOfManyMaximaConcentratesNearLogNPlusDelta) {
  // E[M] ~ log N + delta0 with delta0 in (1, 1.5): the average of many maxima
  // should land in that band (this is what the protocol's output exploits).
  Rng rng(7);
  constexpr std::uint64_t kN = 100000;
  const double logn = std::log2(static_cast<double>(kN));
  double sum = 0.0;
  constexpr int kK = 4000;
  for (int i = 0; i < kK; ++i) sum += max_geometric_exact(kN, rng);
  const double avg = sum / kK;
  EXPECT_GT(avg, logn + 0.9);
  EXPECT_LT(avg, logn + 1.6);
}

TEST(MaxGeometric, RejectsZeroVariables) {
  Rng rng(8);
  EXPECT_THROW(max_geometric_brute(0, rng), std::invalid_argument);
  EXPECT_THROW(max_geometric_exact(0, rng), std::invalid_argument);
  EXPECT_THROW(max_geometric_mean_exact(0), std::invalid_argument);
}

}  // namespace
}  // namespace pops
