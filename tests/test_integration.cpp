// Cross-module integration tests: the full pipelines a user of the library
// would actually run, exercised end-to-end with assertions that tie modules
// together (protocol output vs stats-module ground truth, impossibility
// contrast, composition over the real estimator).
#include <gtest/gtest.h>

#include <cmath>

#include "core/leader_terminating_estimation.hpp"
#include "core/log_size_estimation.hpp"
#include "core/upper_bound_estimation.hpp"
#include "harness/trials.hpp"
#include "proto/max_geometric_estimate.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/bounds.hpp"
#include "stats/geometric.hpp"
#include "stats/summary.hpp"
#include "termination/terminating_toys.hpp"

namespace pops {
namespace {

TEST(Integration, ProtocolOutputMatchesStatsGroundTruth) {
  // The protocol's output is (a noisy version of) the average of K maxima of
  // ~n/2 geometrics plus 1.  The stats module predicts E ~ log(n/2) + δ0 + 1
  // ~ log n + 0.33 before integer floor.  Protocol estimates across trials
  // should straddle log n within ~2.
  constexpr std::uint64_t kN = 1024;
  Summary estimates;
  for (int trial = 0; trial < 6; ++trial) {
    AgentSimulation<LogSizeEstimation> sim(LogSizeEstimation{}, kN, trial_seed(211, trial));
    ASSERT_GE(sim.run_until(
                  [](const AgentSimulation<LogSizeEstimation>& s) { return converged(s); },
                  50.0, 5e6),
              0.0);
    estimates.add(static_cast<double>(estimate(sim)));
  }
  const double predicted = max_geometric_mean_exact(kN / 2) + 1.0;
  EXPECT_NEAR(estimates.mean(), predicted, 2.0);
}

TEST(Integration, AdditiveVsMultiplicativeEstimators) {
  // Theorem 3.1 vs the Alistarh et al. baseline: on the same population the
  // main protocol's additive error should beat the baseline's at moderate n.
  constexpr std::uint64_t kN = 4096;  // log n = 12
  const double logn = 12.0;
  Summary main_err, base_err;
  for (int trial = 0; trial < 4; ++trial) {
    AgentSimulation<LogSizeEstimation> main_sim(LogSizeEstimation{}, kN,
                                                trial_seed(223, trial));
    ASSERT_GE(
        main_sim.run_until(
            [](const AgentSimulation<LogSizeEstimation>& s) { return converged(s); },
            50.0, 5e6),
        0.0);
    main_err.add(std::abs(static_cast<double>(estimate(main_sim)) - logn));

    AgentSimulation<MaxGeometricEstimate> base_sim(MaxGeometricEstimate{}, kN,
                                                   trial_seed(227, trial));
    ASSERT_GE(base_sim.run_until(
                  [](const AgentSimulation<MaxGeometricEstimate>& s) {
                    return converged(s);
                  },
                  5.0, 1e6),
              0.0);
    base_err.add(std::abs(static_cast<double>(base_sim.agent(0).estimate) - logn));
  }
  EXPECT_LE(main_err.mean(), base_err.mean() + 1.0)
      << "the additive estimator should not be worse than the max-geometric one";
  EXPECT_LE(main_err.max(), 5.7);
}

TEST(Integration, TerminationDichotomy) {
  // The heart of the paper: a dense uniform protocol's signal time is flat in
  // n; the leader-driven protocol's grows.  Measure both on the same sizes.
  auto dense_signal = [](std::uint64_t n, std::uint64_t seed) {
    AgentSimulation<FixedCountTrigger> sim(FixedCountTrigger{60}, n, seed);
    const double t = sim.run_until(
        [](const AgentSimulation<FixedCountTrigger>& s) { return any_terminated(s); }, 1.0,
        1e6);
    EXPECT_GE(t, 0.0);
    return t;
  };
  auto leader_signal = [](std::uint64_t n, std::uint64_t seed) {
    LeaderTerminatingEstimation proto;
    AgentSimulation<LeaderTerminatingEstimation> sim(proto, n, seed);
    Rng rng(seed ^ 0x5555);
    sim.set_state(0, proto.make_leader(rng));
    const double t = sim.run_until(
        [](const AgentSimulation<LeaderTerminatingEstimation>& s) {
          return any_terminated(s);
        },
        25.0, 1e7);
    EXPECT_GE(t, 0.0);
    return t;
  };
  const double dense_small = dense_signal(128, 1), dense_large = dense_signal(4096, 2);
  const double lead_small = leader_signal(128, 3), lead_large = leader_signal(2048, 4);
  EXPECT_LT(dense_large, 2.0 * dense_small + 10.0) << "dense signal time must stay flat";
  EXPECT_GT(lead_large, 1.5 * lead_small) << "leader signal time must grow";
}

TEST(Integration, UpperBoundComposesFastAndSlowEstimators) {
  // End to end: running the combined protocol yields a value that is an upper
  // bound on log n AND within the fast protocol's accuracy band.
  constexpr std::uint64_t kN = 200;
  AgentSimulation<UpperBoundEstimation> sim(UpperBoundEstimation{}, kN, 5);
  ASSERT_GE(sim.run_until(
                [](const AgentSimulation<UpperBoundEstimation>& s) {
                  return fast_converged(s);
                },
                25.0, 1e7),
            0.0);
  sim.advance_time(static_cast<double>(kN) * 20.0);  // let the backup stabilize
  const double logn = std::log2(static_cast<double>(kN));
  for (const auto& a : sim.agents()) {
    const double r = sim.protocol().report(a);
    EXPECT_GE(r, logn);
    EXPECT_LE(r, logn + 11.0);
  }
}

TEST(Integration, BoundFunctionsCoverProtocolBehavior) {
  // Sanity link: the observed logSize2 of a converged run lies inside the
  // Lemma 3.8 band computed by the bounds module.
  constexpr std::uint64_t kN = 512;
  AgentSimulation<LogSizeEstimation> sim(LogSizeEstimation{}, kN, 7);
  ASSERT_GE(sim.run_until(
                [](const AgentSimulation<LogSizeEstimation>& s) { return converged(s); },
                50.0, 5e6),
            0.0);
  const auto band = bounds::logsize2_band(kN);
  const double v = sim.agent(0).log_size2;
  EXPECT_GE(v, band.lo - 1e-9);
  EXPECT_LE(v, band.hi + 1e-9);
}

}  // namespace
}  // namespace pops
