// Empirical validation of Lemma 3.6 / Corollary 3.7 — the concentration of
// per-agent interaction counts that makes the leaderless phase clock safe:
// in time C ln n (C >= 3), w.p. >= 1 − 1/n no agent has more than
// D ln n = (2C + sqrt(12C)) ln n interactions.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

struct InteractionCounter {
  struct State {
    std::uint64_t count = 0;
  };
  State initial(Rng&) const { return State{}; }
  void interact(State& receiver, State& sender, Rng&) const {
    ++receiver.count;
    ++sender.count;
  }
};
static_assert(AgentProtocol<InteractionCounter>);

std::uint64_t max_interactions_after(std::uint64_t n, double time, std::uint64_t seed) {
  AgentSimulation<InteractionCounter> sim(InteractionCounter{}, n, seed);
  sim.advance_time(time);
  std::uint64_t mx = 0;
  for (const auto& a : sim.agents()) mx = std::max(mx, a.count);
  return mx;
}

TEST(Lemma36, NoAgentExceedsDLnN) {
  // C = 3 => D = 6 + 6 = 12: in 3 ln n time, max count <= 12 ln n across all
  // trials (the 1/n failure probability makes violations essentially
  // unobservable at n = 2000 over 20 trials).
  constexpr std::uint64_t kN = 2000;
  const double lnn = std::log(static_cast<double>(kN));
  const double d = bounds::interaction_count_multiplier(3.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto mx = max_interactions_after(kN, 3.0 * lnn, trial_seed(0x36, trial));
    EXPECT_LE(static_cast<double>(mx), d * lnn) << "trial " << trial;
  }
}

TEST(Lemma36, MeanPerAgentIsTwoPerTimeUnit) {
  // Each interaction touches 2 of n agents: E[count] = 2t.
  constexpr std::uint64_t kN = 1000;
  AgentSimulation<InteractionCounter> sim(InteractionCounter{}, kN, 7);
  sim.advance_time(50.0);
  Summary s;
  for (const auto& a : sim.agents()) s.add(static_cast<double>(a.count));
  EXPECT_NEAR(s.mean(), 100.0, 0.001);  // exactly 2t on average by counting
  EXPECT_NEAR(s.stddev(), 10.0, 2.5);   // ~Poisson(100) fluctuation
}

TEST(Corollary37, ProtocolThreshold95CoversEpochWork) {
  // Corollary 3.7's role in the protocol: in the 24 ln n time an epidemic
  // w.h.p. needs, no agent accumulates 95 log n interactions (65 ln n <=
  // 94 log n is the paper's margin).  Verify the margin empirically.
  constexpr std::uint64_t kN = 4096;
  const double lnn = std::log(static_cast<double>(kN));
  const double logn = std::log2(static_cast<double>(kN));
  for (int trial = 0; trial < 10; ++trial) {
    const auto mx = max_interactions_after(kN, 24.0 * lnn, trial_seed(0x37, trial));
    EXPECT_LT(static_cast<double>(mx), 95.0 * logn) << "trial " << trial;
  }
}

TEST(Lemma36, MaxCountGrowsWithTimeNotN) {
  // The max interaction count in C ln n time scales with ln n (not n): the
  // ratio of maxima at n vs 16n should be ~ ln(16n)/ln(n), far below 2.
  Summary small, large;
  for (int trial = 0; trial < 5; ++trial) {
    small.add(static_cast<double>(
        max_interactions_after(512, 3.0 * std::log(512.0), trial_seed(0x38, trial))));
    large.add(static_cast<double>(
        max_interactions_after(8192, 3.0 * std::log(8192.0), trial_seed(0x39, trial))));
  }
  EXPECT_LT(large.mean() / small.mean(), 2.0);
  EXPECT_GT(large.mean(), small.mean());  // longer window => more interactions
}

}  // namespace
}  // namespace pops
