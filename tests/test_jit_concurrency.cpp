// Concurrency tests for the sharded JIT (compile/lazy.hpp +
// sim/shared_dispatch.hpp) and the parallel eager closure
// (compile/compiler.hpp):
//
//   * thread-count invariance — lazy trials at threads = 1, 2, 8 produce
//     identical per-seed observable results, and leave behind the same
//     interned state set and compiled pair count (ids may differ with
//     scheduling; the typed sets must not);
//   * shard contention — 8 threads compiling disjoint pair sets through
//     compile_pair directly, checked cell-by-cell against a single-threaded
//     reference table;
//   * concurrent mixed simulators — batched + sequential simulators stepping
//     one shared warm-ish table from many threads while it still compiles;
//   * eager determinism — ProtocolCompiler::compile(t) is bit-identical
//     (names, transitions, distribution, counters) for every thread count.
//
// The whole file also runs under the TSan preset (scripts/tsan_check.sh) so
// the lock-free find/publish protocol is exercised under the race detector.

// Shrink the parallel closure's pair-batch cap so the bit-identity test
// exercises batch splits (the default 2^22 cap is never hit by the small
// test presets).  Must precede the compiler.hpp include.
#define POPS_COMPILE_BATCH_PAIRS 4096

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "compile/lazy.hpp"
#include "core/executor.hpp"
#include "harness/equivalence.hpp"
#include "harness/trials.hpp"
#include "sim/batched_count_simulation.hpp"
#include "sim/count_simulation.hpp"

namespace pops {
namespace {

using LS = LogSizeEstimation;
using BLS = Bounded<LS>;

/// Pin the process-wide executor to 8 real workers for the suite (the
/// default width is hardware concurrency — 1 on single-core machines,
/// which would quietly serialize every "concurrent" path below) and
/// restore the default afterwards.
class JitConcurrency : public ::testing::Test {
 protected:
  void SetUp() override { Executor::set_threads(8); }
  void TearDown() override { Executor::set_threads(0); }
};

bool worker_observable(const LS::State& s) { return s.role == Role::A; }

/// Interned states as a label set (ids vary with scheduling; labels must
/// not).  Also asserts label injectivity: with lazy registration the JIT
/// never runs the registry's duplicate check itself (eager compiles do,
/// at materialize_names), so a state_label() collapsing distinct typed
/// states must be caught here rather than dedup'd away by the std::set.
std::set<std::string> interned_labels(const LazyCompiledSpec<BLS>& lazy) {
  std::set<std::string> labels;
  for (std::uint32_t id = 0; id < lazy.num_states(); ++id) {
    labels.insert(lazy.spec().name(id));
  }
  EXPECT_EQ(labels.size(), lazy.num_states()) << "state labels are not injective";
  return labels;
}

// ------------------------------------------------ thread-count invariance ---

TEST_F(JitConcurrency, LazyTrialResultsAreThreadCountInvariant) {
  const auto proto = log_size_tiny();
  std::vector<std::uint64_t> reference_values;
  std::set<std::string> reference_labels;
  std::size_t reference_pairs = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    LazyCompiledSpec<BLS> lazy(proto, proto.geometric_cap());
    const auto values = lazy_trial_values(lazy, /*n=*/2000, /*interactions=*/40000,
                                          /*trials=*/12, /*master_seed=*/0xC0DE,
                                          worker_observable, threads);
    const auto labels = interned_labels(lazy);
    if (threads == 1) {
      reference_values = values;
      reference_labels = labels;
      reference_pairs = lazy.pairs_compiled();
      ASSERT_GT(lazy.num_states(), 30u);
      ASSERT_GT(reference_pairs, 200u);
    } else {
      EXPECT_EQ(reference_values, values)
          << "per-seed trial results diverged at threads=" << threads;
      EXPECT_EQ(reference_labels, labels)
          << "interned state set diverged at threads=" << threads;
      EXPECT_EQ(reference_pairs, lazy.pairs_compiled())
          << "compiled pair set size diverged at threads=" << threads;
    }
  }
}

// ---------------------------------------------------- shard contention ------

/// 8 threads drive compile_pair over disjoint slices of the full S×S pair
/// grid of a warm snapshot; every cell must match a single-threaded
/// reference compile (compared through labels — warm-up is single-threaded,
/// so the first S ids agree; outputs may be newer states whose ids differ).
TEST_F(JitConcurrency, ShardContentionCompilesDisjointPairSets) {
  const auto proto = log_size_tiny();

  // Single-threaded warm-up interns an identical prefix in both instances.
  LazyCompiledSpec<BLS> stress(proto, proto.geometric_cap());
  LazyCompiledSpec<BLS> reference(proto, proto.geometric_cap());
  for (LazyCompiledSpec<BLS>* lazy : {&stress, &reference}) {
    BatchedCountSimulation sim(*lazy, 0xF00D);
    Rng seeder(3);
    lazy->seed_initial(sim, 5000, seeder);
    sim.advance_time(12.0);
  }
  const std::uint32_t s_states = stress.num_states();
  ASSERT_EQ(s_states, reference.num_states());
  ASSERT_GT(s_states, 30u);

  constexpr unsigned kThreads = 8;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&stress, s_states, t] {
      for (std::uint64_t p = t; p < static_cast<std::uint64_t>(s_states) * s_states;
           p += kThreads) {
        stress.compile_pair(static_cast<std::uint32_t>(p / s_states),
                            static_cast<std::uint32_t>(p % s_states));
      }
    });
  }
  for (auto& th : pool) th.join();
  for (std::uint32_t r = 0; r < s_states; ++r) {
    for (std::uint32_t s = 0; s < s_states; ++s) reference.compile_pair(r, s);
  }
  ASSERT_EQ(stress.pairs_compiled(), reference.pairs_compiled());
  EXPECT_EQ(interned_labels(stress), interned_labels(reference));

  using NamedEntry = std::tuple<std::string, std::string, double>;
  for (std::uint32_t r = 0; r < s_states; ++r) {
    for (std::uint32_t s = 0; s < s_states; ++s) {
      const auto got = stress.table().find(r, s);
      const auto want = reference.table().find(r, s);
      ASSERT_TRUE(got.present);
      ASSERT_TRUE(want.present);
      ASSERT_EQ(got.kind, want.kind);
      std::multiset<NamedEntry> got_entries, want_entries;
      for (const auto* e = got.begin; e != got.end; ++e) {
        got_entries.emplace(stress.spec().name(e->out_receiver),
                            stress.spec().name(e->out_sender), e->rate);
      }
      for (const auto* e = want.begin; e != want.end; ++e) {
        want_entries.emplace(reference.spec().name(e->out_receiver),
                             reference.spec().name(e->out_sender), e->rate);
      }
      ASSERT_EQ(got_entries, want_entries)
          << "cell (" << stress.spec().name(r) << ", " << stress.spec().name(s)
          << ") diverged under shard contention";
    }
  }
}

// ------------------------------------------- concurrent mixed simulators ----

TEST_F(JitConcurrency, MixedSimulatorsShareOneGrowingTable) {
  const auto proto = log_size_tiny();
  LazyCompiledSpec<BLS> lazy(proto, proto.geometric_cap());
  std::vector<std::uint64_t> totals(6, 0);
  std::vector<std::thread> pool;
  pool.reserve(totals.size());
  for (std::size_t t = 0; t < totals.size(); ++t) {
    pool.emplace_back([&lazy, &totals, t] {
      if (t % 2 == 0) {
        BatchedCountSimulation sim(lazy, 0xAB + t);
        Rng seeder(17 + t);
        lazy.seed_initial(sim, 20000, seeder);
        sim.advance_time(25.0);
        totals[t] = sim.population_size();
      } else {
        CountSimulation sim(lazy, 0xAB + t);
        sim.set_count(0, 3000);
        sim.steps(120000);
        totals[t] = sim.population_size();
      }
    });
  }
  for (auto& th : pool) th.join();
  for (std::size_t t = 0; t < totals.size(); ++t) {
    EXPECT_EQ(totals[t], t % 2 == 0 ? 20000u : 3000u) << "population leaked in thread " << t;
  }
  EXPECT_GT(lazy.num_states(), 30u);
  // The fragment must still be exactly the eager closure restricted to the
  // touched pairs: spot-check that every interned label exists eagerly.
  const auto eager =
      ProtocolCompiler<BLS>(proto, proto.geometric_cap()).compile();
  for (std::uint32_t id = 0; id < lazy.num_states(); ++id) {
    ASSERT_TRUE(eager.spec.has_state(lazy.spec().name(id)))
        << "concurrently interned state missing from eager closure: "
        << lazy.spec().name(id);
  }
}

// ----------------------------------------------------- eager determinism ----

TEST_F(JitConcurrency, ParallelEagerCompileIsBitIdentical) {
  const auto proto = log_size_tiny();
  ProtocolCompiler<BLS> sequential(proto, proto.geometric_cap());
  const auto ref = sequential.compile(1);
  for (const unsigned threads : {2u, 3u, 8u}) {
    ProtocolCompiler<BLS> parallel(proto, proto.geometric_cap());
    const auto got = parallel.compile(threads);
    ASSERT_EQ(ref.num_states(), got.num_states()) << "threads=" << threads;
    for (std::uint32_t i = 0; i < ref.num_states(); ++i) {
      ASSERT_EQ(ref.spec.name(i), got.spec.name(i))
          << "state id order diverged at threads=" << threads;
    }
    const auto& ta = ref.spec.transitions();
    const auto& tb = got.spec.transitions();
    ASSERT_EQ(ta.size(), tb.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      ASSERT_TRUE(ta[i].in_receiver == tb[i].in_receiver &&
                  ta[i].in_sender == tb[i].in_sender &&
                  ta[i].out_receiver == tb[i].out_receiver &&
                  ta[i].out_sender == tb[i].out_sender && ta[i].rate == tb[i].rate)
          << "transition " << i << " diverged at threads=" << threads;
    }
    EXPECT_EQ(ref.initial_distribution, got.initial_distribution);
    EXPECT_EQ(ref.pairs_explored, got.pairs_explored);
    EXPECT_EQ(ref.paths_explored, got.paths_explored);
  }
}

}  // namespace
}  // namespace pops
