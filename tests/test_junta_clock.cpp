// Tests for the junta-driven phase clock: a sparse junta still yields a slow
// (Θ(log n)-per-phase) clock, while a dense junta collapses to O(1) per phase
// — the quantitative content of Theorem 4.1's junta remark.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/trials.hpp"
#include "proto/junta_clock.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

using Sim = AgentSimulation<JuntaPhaseClock>;

double time_per_advance(std::uint64_t n, std::uint64_t junta, std::uint64_t seed,
                        std::uint64_t advances = 40) {
  Sim sim(JuntaPhaseClock{300}, n, seed);
  plant_junta(sim, junta);
  const double t = sim.run_until(
      [&](const Sim& s) { return max_junta_increments(s) >= advances; }, 2.0,
      1e7);
  EXPECT_GE(t, 0.0);
  return t / static_cast<double>(advances);
}

TEST(JuntaClock, SingleMemberMatchesLeaderClockBehavior) {
  const double per = time_per_advance(512, 1, 1);
  // Each advance needs an epidemic round-trip: ~ ln n scale, not ~ O(1).
  EXPECT_GT(per, 1.0);
  EXPECT_LT(per, 4.0 * std::log(512.0));
}

TEST(JuntaClock, SparseJuntaStillSlow) {
  // A small junta's fastest member still needs epidemic feedback (per-advance
  // ~ ln(n/j)), while a dense junta advances on nearly every meeting: clear
  // separation between j = 4 and j = n/2 at n = 1024.
  Summary sparse, dense;
  for (int i = 0; i < 3; ++i) {
    sparse.add(time_per_advance(1024, 4, trial_seed(0x10A, i)));
    dense.add(time_per_advance(1024, 512, trial_seed(0x10B, i)));
  }
  EXPECT_GT(sparse.mean(), 1.5 * dense.mean());
}

TEST(JuntaClock, DenseJuntaCollapsesToConstant) {
  // With half the population in the junta, phases advance in O(1) time —
  // the clock can no longer delay anything (Theorem 4.1's dichotomy).
  const double per_small = time_per_advance(256, 128, 7);
  const double per_large = time_per_advance(4096, 2048, 9);
  EXPECT_LT(per_large, per_small * 2.0 + 1.0);  // flat in n
  EXPECT_LT(per_large, 2.0);                    // and absolutely tiny
}

TEST(JuntaClock, SparseClockScalesWithN) {
  const double small = time_per_advance(256, 4, 11);
  const double large = time_per_advance(4096, 16, 13);
  EXPECT_GT(large, small);  // per-phase grows with n at j ~ n^(1/2 - eps)
}

TEST(JuntaClock, FollowersNeverLeadTheJunta) {
  constexpr std::uint32_t kM = 300;
  Sim sim(JuntaPhaseClock{kM}, 300, 17);
  plant_junta(sim, 3);
  for (int i = 0; i < 100; ++i) {
    sim.steps(1000);
    std::uint32_t junta_max = 0;
    bool wrapped = false;
    for (const auto& a : sim.agents()) {
      if (a.junta) {
        junta_max = std::max(junta_max, a.phase);
        if (a.phase < kM / 4 && junta_max > 3 * kM / 4) wrapped = true;
      }
    }
    if (wrapped) continue;  // circular comparison ambiguous near the seam
    for (const auto& a : sim.agents()) {
      if (!a.junta) {
        const std::uint32_t ahead = (a.phase + kM - junta_max) % kM;
        EXPECT_TRUE(ahead == 0 || ahead > kM / 2)
            << "follower ahead of the whole junta";
      }
    }
  }
}

TEST(JuntaClock, PlantJuntaValidation) {
  Sim sim(JuntaPhaseClock{300}, 10, 1);
  EXPECT_THROW(plant_junta(sim, 0), std::invalid_argument);
  EXPECT_THROW(plant_junta(sim, 11), std::invalid_argument);
}

}  // namespace
}  // namespace pops
