// Tests for the lazy/JIT compilation path (compile/lazy.hpp): the lazily
// interned state set must be a subset of the eager closure with identical
// transitions on every touched pair, lazy runs must be deterministic, and
// both count simulators must drive the JIT hook correctly (including state
// growth mid-run).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/headline.hpp"
#include "compile/lazy.hpp"
#include "proto/partition.hpp"
#include "sim/batched_count_simulation.hpp"
#include "sim/count_simulation.hpp"

namespace pops {
namespace {

using LS = LogSizeEstimation;

// ------------------------------------------------- subset + cell parity ----

/// Run the lazy pipeline on the tiny log-size preset, then eagerly compile
/// the same protocol and check: every interned state is in the eager
/// closure, and every compiled pair's cell matches the eager cell exactly
/// (as label-keyed transition sets — id numbering differs between the two
/// discovery orders).
TEST(LazyCompiledSpec, TouchedFragmentMatchesEagerClosure) {
  const auto proto = log_size_tiny();
  LazyCompiledSpec<Bounded<LS>> lazy(proto, proto.geometric_cap());
  BatchedCountSimulation sim(lazy, 0xA11CE);
  Rng seeder(7);
  lazy.seed_initial(sim, 20000, seeder);
  sim.advance_time(50.0);
  ASSERT_GT(lazy.num_states(), 50u);
  ASSERT_GT(lazy.pairs_compiled(), 1000u);

  const auto eager =
      ProtocolCompiler<Bounded<LS>>(proto, proto.geometric_cap()).compile();
  // Subset: every lazy label names an eager state.
  for (std::uint32_t id = 0; id < lazy.num_states(); ++id) {
    ASSERT_TRUE(eager.spec.has_state(lazy.spec().name(id)))
        << "lazily interned state missing from eager closure: "
        << lazy.spec().name(id);
  }
  EXPECT_LT(lazy.num_states(), eager.num_states() + 1u);

  // Cell parity on every compiled pair, via the eager dispatch view.
  const DispatchTable eager_table(eager.spec);
  using NamedEntry = std::tuple<std::string, std::string, double>;
  std::size_t checked = 0;
  for (std::uint32_t r = 0; r < lazy.num_states(); ++r) {
    for (std::uint32_t s = 0; s < lazy.num_states(); ++s) {
      const auto lazy_cell = lazy.table().find(r, s);
      if (!lazy_cell.present) continue;
      const auto eager_cell = eager_table.find(eager.spec.id(lazy.spec().name(r)),
                                               eager.spec.id(lazy.spec().name(s)));
      std::multiset<NamedEntry> lazy_entries, eager_entries;
      for (const auto* e = lazy_cell.begin; e != lazy_cell.end; ++e) {
        lazy_entries.emplace(lazy.spec().name(e->out_receiver),
                             lazy.spec().name(e->out_sender), e->rate);
      }
      for (const auto* e = eager_cell.begin; e != eager_cell.end; ++e) {
        eager_entries.emplace(eager.spec.name(e->out_receiver),
                              eager.spec.name(e->out_sender), e->rate);
      }
      ASSERT_EQ(lazy_entries, eager_entries)
          << "cell (" << lazy.spec().name(r) << ", " << lazy.spec().name(s)
          << ") diverged between lazy and eager compilation";
      ASSERT_EQ(lazy_cell.kind, eager_cell.kind);
      ++checked;
    }
  }
  EXPECT_EQ(checked, lazy.pairs_compiled());
}

// ----------------------------------------------------------- determinism ----

TEST(LazyCompiledSpec, LazyRunsAreDeterministicUnderFixedSeed) {
  const auto proto = log_size_tiny();
  std::vector<std::uint64_t> first;
  for (int rep = 0; rep < 2; ++rep) {
    LazyCompiledSpec<Bounded<LS>> lazy(proto, proto.geometric_cap());
    BatchedCountSimulation sim(lazy, 0xDE7);
    Rng seeder(13);
    lazy.seed_initial(sim, 50000, seeder);
    sim.advance_time(20.0);
    if (rep == 0) {
      first = sim.counts();
    } else {
      EXPECT_EQ(first, sim.counts()) << "JIT consumed simulation randomness";
    }
  }
}

/// For a protocol whose lazy and eager discovery orders coincide (partition:
/// the only first contact is (X, X), which interns A and S in the eager
/// order too), the compiled fragments share ids — so lazy and eager
/// simulators with the same seed produce bit-identical trajectories.
TEST(LazyCompiledSpec, PartitionLazyMatchesEagerTrajectoryExactly) {
  const auto result = compile_bounded(PartitionProtocol{}, 1);
  LazyCompiledSpec<Bounded<PartitionProtocol>> lazy(
      Bounded<PartitionProtocol>(PartitionProtocol{}, 1), 1);

  CountSimulation eager_seq(result.spec, 0xBEE);
  CountSimulation lazy_seq(lazy, 0xBEE);
  BatchedCountSimulation eager_bat(result.spec, 0xFAB);
  BatchedCountSimulation lazy_bat(lazy, 0xFAB);
  const std::uint32_t x = result.spec.id("X");
  ASSERT_EQ(lazy.spec().name(x), "X");
  for (auto* sim : {&eager_seq, &lazy_seq}) sim->set_count(x, 30000);
  for (auto* sim : {&eager_bat, &lazy_bat}) sim->set_count(x, 30000);
  for (int i = 0; i < 8; ++i) {
    eager_seq.steps(3000);
    lazy_seq.steps(3000);
    ASSERT_EQ(eager_seq.counts(), lazy_seq.counts()) << "sequential diverged at " << i;
    eager_bat.steps(15000);
    lazy_bat.steps(15000);
    ASSERT_EQ(eager_bat.counts(), lazy_bat.counts()) << "batched diverged at " << i;
  }
}

// ---------------------------------------------------------- misc behavior ---

TEST(LazyCompiledSpec, CountSimulationGrowsSamplerAsStatesIntern) {
  const auto proto = log_size_tiny();
  LazyCompiledSpec<Bounded<LS>> lazy(proto, proto.geometric_cap());
  ASSERT_EQ(lazy.num_states(), 1u);  // just the initial X state
  CountSimulation sim(lazy, 0x5EED);
  sim.set_count(0, 5000);
  sim.steps(200000);
  EXPECT_GT(lazy.num_states(), 20u);
  EXPECT_EQ(sim.population_size(), 5000u);
  std::uint64_t total = 0;
  for (const auto c : sim.counts()) total += c;
  EXPECT_EQ(total, 5000u);
}

TEST(LazyCompiledSpec, InitialDistributionMatchesEager) {
  const auto proto = bounded_majority(0.55);
  LazyCompiledSpec<Bounded<Composed<VotedMajorityStage>>> lazy(proto, proto.geometric_cap());
  const auto eager =
      ProtocolCompiler<Bounded<Composed<VotedMajorityStage>>>(proto, proto.geometric_cap())
          .compile();
  // Both enumerate the same initial choice tree in the same order, so the
  // initial ids and masses agree exactly.
  const auto lazy_init = lazy.initial_states();
  const auto eager_init = eager.initial_states();
  ASSERT_EQ(lazy_init.size(), eager_init.size());
  for (std::size_t i = 0; i < lazy_init.size(); ++i) {
    EXPECT_EQ(lazy.spec().name(lazy_init[i]), eager.spec.name(eager_init[i]));
    EXPECT_EQ(lazy.initial_distribution()[lazy_init[i]],
              eager.initial_distribution[eager_init[i]]);
  }
}

TEST(LazyCompiledSpec, PairGuardThrows) {
  CompileOptions opts;
  opts.max_pairs = 3;
  const auto proto = log_size_tiny();
  LazyCompiledSpec<Bounded<LS>> lazy(proto, proto.geometric_cap(), opts);
  BatchedCountSimulation sim(lazy, 1);
  Rng seeder(2);
  lazy.seed_initial(sim, 1000, seeder);
  EXPECT_THROW(sim.advance_time(10.0), std::invalid_argument);
}

}  // namespace
}  // namespace pops
