// Tests for the leader-driven terminating estimator (Theorem 3.13): the
// signal appears only after the estimate has converged (w.h.p.), spreads to
// all, and the reported value is accurate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/leader_terminating_estimation.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {
namespace {

using Sim = AgentSimulation<LeaderTerminatingEstimation>;

Sim make_sim(std::uint64_t n, std::uint64_t seed,
             LeaderTerminatingEstimation::Params params = {}) {
  LeaderTerminatingEstimation proto(params);
  Sim sim(proto, n, seed);
  Rng rng(seed ^ 0xABCDEF);
  sim.set_state(0, sim.protocol().make_leader(rng));
  return sim;
}

TEST(LeaderTerminating, TerminatesAndSignalReachesEveryone) {
  auto sim = make_sim(300, 1);
  const double t_any =
      sim.run_until([](const Sim& s) { return any_terminated(s); }, 25.0, 1e7);
  ASSERT_GE(t_any, 0.0);
  const double t_all =
      sim.run_until([](const Sim& s) { return all_terminated(s); }, 5.0, 1e7);
  ASSERT_GE(t_all, 0.0);
  EXPECT_LE(t_all - t_any, 24.0 * std::log(300.0) + 30.0);  // epidemic spread
}

TEST(LeaderTerminating, EstimateConvergedBeforeTermination) {
  // At the moment of first termination the estimation sub-protocol should
  // already be done in (essentially) every agent — the clock's whole job.
  constexpr int kTrials = 6;
  int premature = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto sim = make_sim(400, trial_seed(3, trial));
    ASSERT_GE(sim.run_until([](const Sim& s) { return any_terminated(s); }, 25.0, 1e7),
              0.0);
    std::uint64_t unfinished = 0;
    for (const auto& a : sim.agents()) {
      if (!a.est.protocol_done) ++unfinished;
    }
    if (unfinished > 0) ++premature;
  }
  EXPECT_LE(premature, 1) << "termination fired before estimation converged";
}

TEST(LeaderTerminating, EstimateAtTerminationIsAccurate) {
  constexpr std::uint64_t kN = 512;
  auto sim = make_sim(kN, 7);
  ASSERT_GE(sim.run_until([](const Sim& s) { return all_terminated(s); }, 25.0, 1e7), 0.0);
  // All agents share the output of the embedded estimator.
  for (const auto& a : sim.agents()) {
    ASSERT_TRUE(a.est.has_output);
    EXPECT_NEAR(static_cast<double>(a.est.output), 9.0, 5.7);
  }
}

TEST(LeaderTerminating, TerminationTimeGrowsWithN) {
  // Theorem 3.13's clock delays the signal for Θ(log² n): time must grow
  // with n (contrast with the dense toys of Theorem 4.1, which are flat).
  auto time_to_signal = [](std::uint64_t n, std::uint64_t seed) {
    auto sim = make_sim(n, seed);
    const double t =
        sim.run_until([](const Sim& s) { return any_terminated(s); }, 25.0, 1e7);
    EXPECT_GE(t, 0.0);
    return t;
  };
  const double t_small = time_to_signal(64, 11);
  const double t_large = time_to_signal(2048, 13);
  EXPECT_GT(t_large, 1.5 * t_small);
}

TEST(LeaderTerminating, NoLeaderMeansNoTermination) {
  // Without the planted leader the clock never advances rounds, so no
  // termination within a generous horizon.
  LeaderTerminatingEstimation proto;
  Sim sim(proto, 200, 17);  // nobody is a leader
  sim.advance_time(20000.0);
  EXPECT_FALSE(any_terminated(sim));
}

}  // namespace
}  // namespace pops
