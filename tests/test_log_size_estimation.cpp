// Tests for the main Log-Size-Estimation protocol (Theorem 3.1): convergence,
// accuracy, agreement, restart semantics, state-space bounds, time scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "core/log_size_estimation.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/metrics.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

using Sim = AgentSimulation<LogSizeEstimation>;

double run_to_convergence(Sim& sim, double max_time = 5e6) {
  return sim.run_until([](const Sim& s) { return converged(s); }, 50.0, max_time);
}

TEST(LogSizeEstimation, ConvergesAndAllAgentsAgree) {
  Sim sim(LogSizeEstimation{}, 500, 1);
  ASSERT_GE(run_to_convergence(sim), 0.0);
  const auto value = sim.agent(0).output;
  for (const auto& a : sim.agents()) {
    EXPECT_TRUE(a.protocol_done);
    EXPECT_TRUE(a.has_output);
    EXPECT_EQ(a.output, value);
  }
}

TEST(LogSizeEstimation, EstimateWithinPaperErrorBound) {
  // |k - log n| <= 5.7 w.p. >= 1 - 9/n; across trials at n = 1024 a failure
  // would be a ~1% event per trial — allow at most 1 in 12.
  constexpr std::uint64_t kN = 1024;
  const double logn = 10.0;
  int failures = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Sim sim(LogSizeEstimation{}, kN, trial_seed(3, trial));
    ASSERT_GE(run_to_convergence(sim), 0.0);
    if (std::abs(static_cast<double>(estimate(sim)) - logn) > 5.7) ++failures;
  }
  EXPECT_LE(failures, 1);
}

TEST(LogSizeEstimation, EstimateTypicallyWithinTwo) {
  // Figure 2's empirical observation: the estimate is within 2 in practice.
  constexpr std::uint64_t kN = 2048;
  int within_two = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    Sim sim(LogSizeEstimation{}, kN, trial_seed(5, trial));
    ASSERT_GE(run_to_convergence(sim), 0.0);
    if (std::abs(static_cast<double>(estimate(sim)) - 11.0) <= 2.0) ++within_two;
  }
  EXPECT_GE(within_two, kTrials - 1);
}

TEST(LogSizeEstimation, WorksAcrossSizesParameterized) {
  for (std::uint64_t n : {64ULL, 256ULL, 1024ULL}) {
    Sim sim(LogSizeEstimation{}, n, 11 + n);
    ASSERT_GE(run_to_convergence(sim), 0.0) << "n=" << n;
    const double err =
        std::abs(static_cast<double>(estimate(sim)) - std::log2(static_cast<double>(n)));
    EXPECT_LE(err, 5.7) << "n=" << n;
  }
}

TEST(LogSizeEstimation, DeterministicGivenSeed) {
  Sim a(LogSizeEstimation{}, 300, 77), b(LogSizeEstimation{}, 300, 77);
  ASSERT_GE(run_to_convergence(a), 0.0);
  ASSERT_GE(run_to_convergence(b), 0.0);
  EXPECT_EQ(estimate(a), estimate(b));
  EXPECT_EQ(a.interactions(), b.interactions());
}

TEST(LogSizeEstimation, ConvergenceTimeScalesAsPolylog) {
  // Time should grow ~log^2 n: n -> 16n should much less than double it per
  // factor... concretely t(4096)/t(256) should be well below the linear
  // ratio 16 and the estimates of both within bounds.
  auto timed = [](std::uint64_t n, std::uint64_t seed) {
    Sim sim(LogSizeEstimation{}, n, seed);
    const double t = sim.run_until([](const Sim& s) { return converged(s); }, 25.0, 5e6);
    EXPECT_GE(t, 0.0);
    return t;
  };
  Summary small, large;
  for (int i = 0; i < 3; ++i) {
    small.add(timed(256, trial_seed(13, i)));
    large.add(timed(4096, trial_seed(17, i)));
  }
  EXPECT_LT(large.mean() / small.mean(), 6.0);  // log^2 ratio ~ (12/8)^2 = 2.25
}

TEST(LogSizeEstimation, LogSize2WithinLemma38Band) {
  constexpr std::uint64_t kN = 1024;
  Sim sim(LogSizeEstimation{}, kN, 19);
  ASSERT_GE(run_to_convergence(sim), 0.0);
  // All agents share the max logSize2; it should lie in the Lemma 3.8 band.
  const double v = sim.agent(0).log_size2;
  for (const auto& a : sim.agents()) EXPECT_EQ(a.log_size2, v);
  EXPECT_GE(v, 10.0 - std::log2(std::log(1024.0)) - 1e-9);
  EXPECT_LE(v, 2.0 * 10.0 + 1.0 + 1e-9);
}

TEST(LogSizeEstimation, FieldRangesMatchLemma39Orders) {
  // Lemma 3.9's table: logSize2 <= 2 log n + 1, gr <= 2 log n,
  // epoch <= 11 log n, sum <= 22 log^2 n (all w.h.p.).  `time` can exceed its
  // in-epoch bound while a finished A waits to deposit, so we check it
  // against the threshold value 95 * logSize2 <= 95(2 log n + 1) plus slack.
  constexpr std::uint64_t kN = 512;
  const double logn = 9.0;
  Sim sim(LogSizeEstimation{}, kN, 23);
  FieldRangeRecorder rec;
  while (!converged(sim) && sim.time() < 5e6) {
    sim.advance_time(100.0);
    record_field_ranges(sim, rec);
  }
  ASSERT_TRUE(converged(sim));
  EXPECT_LE(rec.max_value("logSize2"), 2 * logn + 1);
  EXPECT_LE(rec.max_value("gr"), 2 * logn);
  EXPECT_LE(rec.max_value("epoch"), 11 * logn);
  EXPECT_LE(rec.max_value("sum"), 22 * logn * logn);
}

TEST(LogSizeEstimation, RestartWipesDownstreamState) {
  // Drive two agents manually: give the sender a larger logSize2 and check
  // the receiver restarts.
  LogSizeEstimation proto;
  Rng rng(29);
  LogSizeEstimation::State lo, hi;
  lo.role = Role::A;
  lo.log_size2 = 3;
  lo.epoch = 4;
  lo.sum = 10;
  lo.time = 50;
  lo.protocol_done = true;
  lo.has_output = true;
  lo.output = 12;
  hi.role = Role::A;
  hi.log_size2 = 9;
  proto.interact(lo, hi, rng);
  EXPECT_EQ(lo.log_size2, 9u);
  EXPECT_EQ(lo.epoch, 0u);
  EXPECT_EQ(lo.sum, 0u);
  EXPECT_FALSE(lo.protocol_done);
  EXPECT_FALSE(lo.has_output);
}

TEST(LogSizeEstimation, PartitionRulesExactlyAsPaper) {
  LogSizeEstimation proto;
  Rng rng(31);
  // (X, X): sender -> A (draws logSize2), receiver -> S.
  LogSizeEstimation::State r, s;
  proto.interact(r, s, rng);
  EXPECT_EQ(s.role, Role::A);
  EXPECT_EQ(r.role, Role::S);
  EXPECT_GE(s.log_size2, 3u);  // geometric + 2
  // (rec X, sen A): receiver -> S.
  LogSizeEstimation::State x;
  proto.interact(x, s, rng);
  EXPECT_EQ(x.role, Role::S);
  // (rec non-X, sen X): sender stays X.
  LogSizeEstimation::State y;
  proto.interact(r, y, rng);
  EXPECT_EQ(y.role, Role::X);
}

TEST(LogSizeEstimation, SmallestPopulations) {
  // n = 2 and n = 3 must still converge (tiny logSize2, K >= 15 epochs).
  for (std::uint64_t n : {2ULL, 3ULL, 8ULL}) {
    Sim sim(LogSizeEstimation{}, n, 37 + n);
    EXPECT_GE(run_to_convergence(sim, 1e7), 0.0) << "n=" << n;
  }
}

TEST(LogSizeEstimation, EpochNeverExceedsTarget) {
  Sim sim(LogSizeEstimation{}, 200, 41);
  for (int i = 0; i < 300; ++i) {
    sim.advance_time(50.0);
    for (const auto& a : sim.agents()) {
      EXPECT_LE(a.epoch, sim.protocol().epoch_target(a));
    }
    if (converged(sim)) break;
  }
}

TEST(LogSizeEstimation, SumIsBoundedByEpochTimesMaxGr) {
  // Every S agent's sum is at most epoch * max-gr-so-far — each epoch adds
  // exactly one gr value.
  Sim sim(LogSizeEstimation{}, 400, 43);
  while (!converged(sim) && sim.time() < 5e6) {
    sim.advance_time(200.0);
    for (const auto& a : sim.agents()) {
      if (a.role == Role::S && a.epoch > 0) {
        EXPECT_LE(a.sum, a.epoch * 64u) << "sum grossly out of range";
      }
    }
  }
}

TEST(LogSizeEstimation, ParamsAreValidated) {
  LogSizeEstimation::Params bad;
  bad.time_multiplier = 0;
  EXPECT_THROW(LogSizeEstimation{bad}, std::invalid_argument);
  bad = {};
  bad.epoch_multiplier = 0;
  EXPECT_THROW(LogSizeEstimation{bad}, std::invalid_argument);
}

TEST(LogSizeEstimation, SmallerMultipliersStillConvergeFaster) {
  // Ablation sanity: reducing the epoch-length multiplier speeds convergence
  // (fewer interactions per epoch), at some accuracy risk.
  LogSizeEstimation::Params fast;
  fast.time_multiplier = 20;
  Sim a(LogSizeEstimation{fast}, 512, 47);
  Sim b(LogSizeEstimation{}, 512, 47);
  const double ta = a.run_until([](const Sim& s) { return converged(s); }, 25.0, 5e6);
  const double tb = b.run_until([](const Sim& s) { return converged(s); }, 25.0, 5e6);
  ASSERT_GE(ta, 0.0);
  ASSERT_GE(tb, 0.0);
  EXPECT_LT(ta, tb);
}

}  // namespace
}  // namespace pops
