// Unit-level pins for the disambiguated rules of Log-Size-Estimation
// (DESIGN.md §4): each test drives interact() on crafted agent states and
// asserts the exact rule the implementation commits to.  These are the
// regression tests for the pseudocode-resolution decisions.
#include <gtest/gtest.h>

#include "core/log_size_estimation.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {
namespace {

using State = LogSizeEstimation::State;

State make_a(std::uint32_t log_size2, std::uint32_t epoch = 0, std::uint32_t time = 0) {
  State s;
  s.role = Role::A;
  s.log_size2 = log_size2;
  s.epoch = epoch;
  s.time = time;
  return s;
}

State make_s(std::uint32_t log_size2, std::uint32_t epoch = 0, std::uint32_t sum = 0) {
  State s;
  s.role = Role::S;
  s.log_size2 = log_size2;
  s.epoch = epoch;
  s.sum = sum;
  return s;
}

TEST(LogSizeRules, DepositRequiresTimerAndMatchingEpoch) {
  // DESIGN.md §4.1: time >= 95*logSize2, same epoch, not done, not deposited.
  LogSizeEstimation proto;
  Rng rng(1);
  auto a = make_a(4, 2, 95 * 4);  // exactly at threshold
  auto s = make_s(4, 2, 10);
  const auto gr_before = a.gr;
  proto.interact(a, s, rng);
  EXPECT_EQ(s.epoch, 3u) << "deposit must advance the S epoch";
  EXPECT_EQ(s.sum, 10u + gr_before);
  EXPECT_TRUE(a.updated_sum);
}

TEST(LogSizeRules, NoDepositBeforeThreshold) {
  LogSizeEstimation proto;
  Rng rng(2);
  auto a = make_a(4, 2, 10);  // far from 380
  auto s = make_s(4, 2, 0);
  proto.interact(a, s, rng);
  EXPECT_EQ(s.epoch, 2u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_FALSE(a.updated_sum);
}

TEST(LogSizeRules, LaggingAgentSkipsItsDeposit) {
  // a.epoch < s.epoch: the A marks updatedSUM without depositing (its epoch's
  // value was already contributed by someone else).
  LogSizeEstimation proto;
  Rng rng(3);
  auto a = make_a(4, 1, 95 * 4);
  auto s = make_s(4, 3, 50);
  proto.interact(a, s, rng);
  EXPECT_EQ(s.sum, 50u);
  EXPECT_EQ(s.epoch, 3u);
  EXPECT_TRUE(a.updated_sum);
}

TEST(LogSizeRules, EpochAdvancesOnlyAfterDeposit) {
  // The updatedSUM guard: an A past its threshold without a deposit must not
  // advance its epoch on A-A interactions of equal epoch.
  LogSizeEstimation proto;
  Rng rng(4);
  auto a = make_a(4, 2, 95 * 4 + 7);
  auto b = make_a(4, 2, 95 * 4 + 9);
  proto.interact(a, b, rng);
  EXPECT_EQ(a.epoch, 2u);
  EXPECT_EQ(b.epoch, 2u);
  // After a deposit, the next tick advances.
  a.updated_sum = true;
  proto.interact(a, b, rng);
  EXPECT_EQ(a.epoch, 3u);
  EXPECT_EQ(a.time, 0u) << "Move-to-Next resets the epoch timer";
  EXPECT_FALSE(a.updated_sum);
}

TEST(LogSizeRules, EqualEpochStorageAgentsTakeMaxSum) {
  // DESIGN.md §4.2: prose rule "S agents propagate the maximum sum".
  LogSizeEstimation proto;
  Rng rng(5);
  auto s1 = make_s(4, 3, 40);
  auto s2 = make_s(4, 3, 55);
  proto.interact(s1, s2, rng);
  EXPECT_EQ(s1.sum, 55u);
  EXPECT_EQ(s2.sum, 55u);
}

TEST(LogSizeRules, BehindStorageAgentAdoptsEpochAndSum) {
  LogSizeEstimation proto;
  Rng rng(6);
  auto s1 = make_s(4, 1, 10);
  auto s2 = make_s(4, 3, 55);
  proto.interact(s1, s2, rng);
  EXPECT_EQ(s1.epoch, 3u);
  EXPECT_EQ(s1.sum, 55u);
}

TEST(LogSizeRules, CatchUpToFinalEpochMarksDone) {
  // DESIGN.md §4.7: an A adopting epoch K must be done (else it would try a
  // (K+1)-th deposit).
  LogSizeEstimation proto;
  Rng rng(7);
  auto lag = make_a(4, 5 * 4 - 1, 3);
  auto done = make_a(4, 5 * 4);
  done.protocol_done = true;
  proto.interact(lag, done, rng);
  EXPECT_EQ(lag.epoch, 5u * 4u);
  EXPECT_TRUE(lag.protocol_done);
}

TEST(LogSizeRules, StorageAgentFinalizesAndComputesOutput) {
  // An S reaching epoch K publishes output = sum/epoch + 1.
  LogSizeEstimation proto;
  Rng rng(8);
  auto a = make_a(4, 5 * 4 - 1, 95 * 4);
  auto s = make_s(4, 5 * 4 - 1, 190);  // one deposit short of K = 20
  proto.interact(a, s, rng);
  EXPECT_EQ(s.epoch, 20u);
  EXPECT_TRUE(s.protocol_done);
  EXPECT_TRUE(s.has_output);
  EXPECT_EQ(s.output, static_cast<std::int32_t>(s.sum / 20 + 1));
}

TEST(LogSizeRules, DoneAgentsShareMaxOutput) {
  LogSizeEstimation proto;
  Rng rng(9);
  auto x = make_a(4, 20);
  x.protocol_done = true;
  x.has_output = true;
  x.output = 9;
  auto y = make_a(4, 20);
  y.protocol_done = true;
  y.has_output = true;
  y.output = 11;
  proto.interact(x, y, rng);
  EXPECT_EQ(x.output, 11);
  EXPECT_EQ(y.output, 11);
}

TEST(LogSizeRules, ClockValueAdoptionRestartsEverything) {
  LogSizeEstimation proto;
  Rng rng(10);
  auto stale = make_s(3, 7, 99);
  stale.protocol_done = true;
  stale.has_output = true;
  stale.output = 5;
  auto fresh = make_a(8);
  proto.interact(stale, fresh, rng);
  EXPECT_EQ(stale.log_size2, 8u);
  EXPECT_EQ(stale.epoch, 0u);
  EXPECT_EQ(stale.sum, 0u);
  EXPECT_FALSE(stale.protocol_done);
  EXPECT_FALSE(stale.has_output);
  EXPECT_EQ(stale.role, Role::S) << "restart never changes roles";
}

TEST(LogSizeRules, XAgentsAdoptClockValueButKeepNoRole) {
  // Propagate-Max-Clock-Value applies to every pair, roles included X.
  LogSizeEstimation proto;
  Rng rng(11);
  State x;  // role X, logSize2 = 1
  auto a = make_a(6);
  proto.interact(x, a, rng);
  // The X receiver with an A sender becomes S (partition) and adopts 6.
  EXPECT_EQ(x.role, Role::S);
  EXPECT_EQ(x.log_size2, 6u);
}

TEST(LogSizeRules, FreshWorkerDrawsItsOwnClockValue) {
  // An X becoming A via (S, X) draws logSize2 = geometric + 2 >= 3, possibly
  // overwriting an adopted maximum (paper Subprotocol 2); the same
  // interaction's clock propagation then reconciles the pair.
  LogSizeEstimation proto;
  Rng rng(12);
  State x;
  auto s = make_s(9);
  proto.interact(x, s, rng);
  EXPECT_EQ(x.role, Role::A);
  EXPECT_GE(x.log_size2, 3u);
  // After the same interaction, neither agent can hold less than the max the
  // pair knew (clock propagation ran after partition).
  EXPECT_EQ(std::max(x.log_size2, s.log_size2), std::max<std::uint32_t>(x.log_size2, 9u));
}

}  // namespace
}  // namespace pops
