// Executor-parallel batched epochs must be per-seed bit-invariant at every
// executor width — the (seed, epoch, shard) substream contract.  These tests
// pin that contract where it has teeth:
//
//   * a many-state spec whose epochs take the sharded shuffle-pairing path
//     (multiple joint-draw blocks AND multiple pairing groups), compared
//     bit-for-bit at widths 1/2/8;
//   * the dense-pairing path (epidemic at n = 10⁹ — tiny occupied grid,
//     serial root stream) for the same widths;
//   * the lazy/JIT path, compared by state *name* (interning order may
//     differ, labels may not);
//   * trials × epochs nesting: run_trials_parallel at width 8 with parallel
//     epochs inside each trial must equal the fully serial path — shard
//     tasks and trial tasks share one help-first executor;
//   * an opt-in wall-clock assertion (POPS_EXPECT_SPEEDUP) for the ≥3×
//     single-run win at 8 threads, skipped on machines without the cores.
//
// The widths use real worker threads even on small machines, which is what
// gives the TSan run of this binary teeth (scripts/tsan_check.sh runs it at
// POPS_THREADS = 1, 2, 8).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "compile/headline.hpp"
#include "compile/lazy.hpp"
#include "core/executor.hpp"
#include "harness/trials.hpp"
#include "proto/epidemic.hpp"
#include "sim/batched_count_simulation.hpp"

namespace pops {
namespace {

/// A synthetic spread protocol over `k` states, dense enough in occupied
/// classes to force the sharded epoch paths: with every state populated,
/// the joint draw splits into multiple 256-class blocks and the pairing
/// stage into multiple 8192-slot groups.  A mix of deterministic,
/// randomized-with-residual, and null cells exercises every apply_cell
/// branch (including the shard-context binomial splits).
FiniteSpec make_spread_spec(std::uint32_t k) {
  FiniteSpec spec;
  for (std::uint32_t i = 0; i < k; ++i) spec.state("s" + std::to_string(i));
  for (std::uint32_t a = 0; a < k; ++a) {
    for (std::uint32_t b = 0; b < k; ++b) {
      switch ((a * 7 + b * 3) % 5) {
        case 0:
          spec.add(a, b, (a + b + 1) % k, (3 * a + b + 7) % k);
          break;
        case 1:
          spec.add(a, b, (a + 2 * b) % k, b, 0.6);
          spec.add(a, b, (a + 5) % k, (b + 11) % k, 0.3);  // residual null mass
          break;
        default:
          break;  // null cell
      }
    }
  }
  spec.validate();
  return spec;
}

const FiniteSpec& spread_spec() {
  static const FiniteSpec spec = make_spread_spec(600);
  return spec;
}

/// Run the spread spec at population n for `steps` interactions and return
/// the final configuration (state ids are construction-ordered, hence
/// width-independent for an eager spec).
std::vector<std::uint64_t> run_spread(std::uint64_t n, std::uint64_t steps,
                                      std::uint64_t seed) {
  const std::uint32_t k = spread_spec().num_states();
  BatchedCountSimulation sim(spread_spec(), seed);
  for (std::uint32_t i = 0; i < k; ++i) sim.set_count(i, n / k);
  sim.steps(steps);
  return sim.counts();
}

class ParallelEpochs : public ::testing::Test {
 protected:
  void TearDown() override { Executor::set_threads(0); }
};

TEST_F(ParallelEpochs, ShufflePathIsBitInvariantAcrossWidths) {
  // n = 10⁹ over 600 occupied states: epochs of t ≈ 28000 interactions take
  // the shuffle path with 2 joint-draw blocks and ~3 pairing groups; the
  // non-multiple step count also exercises a truncated final epoch.
  auto run = [](unsigned threads) {
    Executor::set_threads(threads);
    return run_spread(1'000'000'000, 250'000, 0xA5EED);
  };
  const auto w1 = run(1);
  const auto w2 = run(2);
  const auto w8 = run(8);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w8);
}

TEST_F(ParallelEpochs, DistinctSeedsStayDistinct) {
  // Guard against a substream-derivation bug collapsing seeds: two master
  // seeds must not replay each other's epochs at any width.
  Executor::set_threads(8);
  const auto a = run_spread(1'000'000'000, 120'000, 0x111);
  const auto b = run_spread(1'000'000'000, 120'000, 0x222);
  EXPECT_NE(a, b);
}

TEST_F(ParallelEpochs, DensePathIsBitInvariantAcrossWidths) {
  // Epidemic at n = 10⁹: two or three occupied classes, so pairing always
  // takes the dense contingency path (serial on the root stream) while the
  // collision search and joint draw still run under the new substreams.
  auto run = [](unsigned threads) {
    Executor::set_threads(threads);
    BatchedCountSimulation sim(epidemic_spec(), 0xD15EA5E);
    sim.set_count("S", 1'000'000'000 - 1000);
    sim.set_count("I", 1000);
    sim.steps(100'000);
    return sim.counts();
  };
  const auto w1 = run(1);
  const auto w2 = run(2);
  const auto w8 = run(8);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w8);
}

TEST_F(ParallelEpochs, JitRunsAreWidthInvariantByStateName) {
  // Lazy/JIT mode: state ids depend on interning order, which concurrent
  // compilation may permute — but the *named* configuration may not change.
  auto run = [](unsigned threads) {
    Executor::set_threads(threads);
    const auto proto = log_size_tiny();
    LazyCompiledSpec<Bounded<LogSizeEstimation>> lazy(proto, proto.geometric_cap());
    BatchedCountSimulation sim(lazy, 0xCAFE);
    Rng seeder(7);
    lazy.seed_initial(sim, 2'000'000, seeder);
    sim.advance_time(10.0);
    std::map<std::string, std::uint64_t> by_name;
    const auto counts = sim.counts();
    for (std::uint32_t id = 0; id < counts.size(); ++id) {
      if (counts[id] != 0) by_name[lazy.spec().name(id)] = counts[id];
    }
    return by_name;
  };
  const auto w1 = run(1);
  const auto w2 = run(2);
  const auto w8 = run(8);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w8);
}

TEST_F(ParallelEpochs, TrialsTimesEpochsNestingMatchesSerial) {
  // Satellite regression: parallel trials whose bodies run parallel epochs
  // share one executor (help-first TaskGroup::wait — no oversubscription,
  // no deadlock), and per-seed results must equal the fully serial path.
  auto trial = [](std::uint64_t seed, std::uint64_t) {
    return run_spread(400'000'000, 120'000, seed);
  };
  Executor::set_threads(1);
  const auto serial = run_trials(6, 0xD1CE, trial);
  Executor::set_threads(8);
  const auto nested = run_trials_parallel(6, 0xD1CE, trial, 8);
  EXPECT_EQ(nested, serial);
}

TEST_F(ParallelEpochs, EpochShardCeilingIsClamped) {
  EXPECT_GE(BatchedCountSimulation::max_epoch_shards(), 1u);
  EXPECT_LE(BatchedCountSimulation::max_epoch_shards(), 63u);
}

TEST_F(ParallelEpochs, EightWideSpeedupOnGiantRuns) {
  // The ≥3× single-run acceptance claim, asserted where it can hold: opt in
  // via POPS_EXPECT_SPEEDUP on a machine with >= 8 hardware threads (the
  // quick-bench tier runs timing in bench_compiled_scaling instead; a
  // 1-core container cannot exhibit parallel speedup).
  if (std::getenv("POPS_EXPECT_SPEEDUP") == nullptr) {
    GTEST_SKIP() << "set POPS_EXPECT_SPEEDUP=1 on a >=8-thread machine";
  }
  if (std::thread::hardware_concurrency() < 8) {
    GTEST_SKIP() << "needs >= 8 hardware threads";
  }
  const std::uint64_t n = 10'000'000'000ULL;  // t ≈ 88600 per epoch
  const std::uint64_t steps = 2'500'000;      // ~28 epochs
  auto timed = [&](unsigned threads) {
    Executor::set_threads(threads);
    run_spread(n, steps, 0x3A11);  // warm caches + pool
    const auto start = std::chrono::steady_clock::now();
    run_spread(n, steps, 0x3A12);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };
  const double serial = timed(1);
  const double wide = timed(8);
  EXPECT_GE(serial / wide, 3.0) << "serial " << serial << "s, 8-wide " << wide << "s";
}

}  // namespace
}  // namespace pops
