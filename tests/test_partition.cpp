// Tests for Partition-Into-A/S (Lemma 3.2, Corollary 3.3): completeness,
// O(log n)-ish completion, and balance of the split.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/trials.hpp"
#include "proto/partition.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/count_simulation.hpp"
#include "stats/bounds.hpp"

namespace pops {
namespace {

bool partition_complete(const AgentSimulation<PartitionProtocol>& sim) {
  for (const auto& a : sim.agents()) {
    if (a.role == Role::X) return false;
  }
  return true;
}

std::uint64_t count_role(const AgentSimulation<PartitionProtocol>& sim, Role r) {
  std::uint64_t c = 0;
  for (const auto& a : sim.agents()) {
    if (a.role == r) ++c;
  }
  return c;
}

TEST(Partition, EveryAgentGetsARole) {
  AgentSimulation<PartitionProtocol> sim(PartitionProtocol{}, 1000, 1);
  const double t = sim.run_until(partition_complete, 1.0, 1e5);
  EXPECT_GE(t, 0.0);
  EXPECT_EQ(count_role(sim, Role::A) + count_role(sim, Role::S), 1000u);
}

TEST(Partition, CompletesInLogarithmicTime) {
  // The catch-up rules make completion O(log n); generously, < 40 ln n.
  for (std::uint64_t n : {100ULL, 1000ULL, 10000ULL}) {
    AgentSimulation<PartitionProtocol> sim(PartitionProtocol{}, n, 7 + n);
    const double t = sim.run_until(partition_complete, 1.0, 1e6);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 40.0 * std::log(static_cast<double>(n))) << "n=" << n;
  }
}

TEST(Partition, BalanceWithinLemma32Deviation) {
  // | |A| - n/2 | <= sqrt(n ln n) except w.p. <= 2/n^2 — across 50 trials at
  // n = 4096 we should never see a violation.
  constexpr std::uint64_t kN = 4096;
  const double bound = std::sqrt(static_cast<double>(kN) * std::log(static_cast<double>(kN)));
  const auto deviations = run_trials(50, 31, [&](std::uint64_t seed, std::uint64_t) {
    AgentSimulation<PartitionProtocol> sim(PartitionProtocol{}, kN, seed);
    EXPECT_GE(sim.run_until(partition_complete, 1.0, 1e6), 0.0);
    const double a = static_cast<double>(count_role(sim, Role::A));
    return std::abs(a - static_cast<double>(kN) / 2.0);
  });
  for (double d : deviations) EXPECT_LE(d, bound);
}

TEST(Partition, Corollary33OneThirdTwoThirds) {
  constexpr std::uint64_t kN = 300;
  const auto fractions = run_trials(100, 37, [&](std::uint64_t seed, std::uint64_t) {
    AgentSimulation<PartitionProtocol> sim(PartitionProtocol{}, kN, seed);
    EXPECT_GE(sim.run_until(partition_complete, 1.0, 1e6), 0.0);
    return static_cast<double>(count_role(sim, Role::A)) / static_cast<double>(kN);
  });
  for (double f : fractions) {
    EXPECT_GE(f, 1.0 / 3.0);
    EXPECT_LE(f, 2.0 / 3.0);
  }
}

TEST(Partition, FiniteSpecMatchesAgentProtocol) {
  // The FiniteSpec version produces the same (X exhausted, A+S = n) outcome.
  CountSimulation sim(partition_spec(), 5);
  sim.set_count("X", 2000);
  const double t = sim.run_until(
      [](const CountSimulation& s) { return s.count("X") == 0; }, 1.0, 1e5);
  EXPECT_GE(t, 0.0);
  EXPECT_EQ(sim.count("A") + sim.count("S"), 2000u);
  // Balance: same Lemma 3.2 deviation bound.
  const double a = static_cast<double>(sim.count("A"));
  EXPECT_NEAR(a, 1000.0, std::sqrt(2000.0 * std::log(2000.0)));
}

TEST(Partition, TwoAgents) {
  AgentSimulation<PartitionProtocol> sim(PartitionProtocol{}, 2, 9);
  sim.steps(10);
  EXPECT_EQ(count_role(sim, Role::A), 1u);
  EXPECT_EQ(count_role(sim, Role::S), 1u);
}

}  // namespace
}  // namespace pops
