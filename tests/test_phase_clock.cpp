// Tests for the leader-driven phase clock ([9]; paper §3.4) and the
// leaderless stage clock component (§3.1), plus leader-driven exact counting.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/trials.hpp"
#include "proto/leader_counting.hpp"
#include "proto/leaderless_clock.hpp"
#include "proto/phase_clock.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

TEST(LeaderPhaseClock, LeaderAdvancesPhases) {
  AgentSimulation<LeaderPhaseClock> sim(LeaderPhaseClock{300}, 500, 1);
  sim.set_state(0, LeaderPhaseClock::make_leader());
  const double t = sim.run_until(
      [](const AgentSimulation<LeaderPhaseClock>& s) {
        return s.agent(0).increments >= 20;
      },
      5.0, 1e6);
  EXPECT_GE(t, 0.0);
}

TEST(LeaderPhaseClock, PhaseAdvanceTimeScalesLikeLogN) {
  // Each leader phase advance needs the announced phase to epidemic back to
  // the leader: Θ(log n) time.  Compare n = 256 vs n = 4096 — ratio of
  // per-advance times ~ ln ratio (1.5), clearly above 1 and below 3.5.
  auto advance_time = [](std::uint64_t n, std::uint64_t seed) {
    AgentSimulation<LeaderPhaseClock> sim(LeaderPhaseClock{300}, n, seed);
    sim.set_state(0, LeaderPhaseClock::make_leader());
    constexpr std::uint64_t kAdvances = 40;
    const double t = sim.run_until(
        [](const AgentSimulation<LeaderPhaseClock>& s) {
          return s.agent(0).increments >= kAdvances;
        },
        5.0, 1e7);
    EXPECT_GE(t, 0.0);
    return t / static_cast<double>(kAdvances);
  };
  Summary small, large;
  for (int i = 0; i < 5; ++i) {
    small.add(advance_time(256, trial_seed(51, i)));
    large.add(advance_time(4096, trial_seed(53, i)));
  }
  EXPECT_GT(large.mean(), 1.1 * small.mean());
  EXPECT_LT(large.mean(), 3.5 * small.mean());
}

TEST(LeaderPhaseClock, FollowersStayWithinHalfCircle) {
  // No follower should ever be more than m/2 ahead of the leader (they only
  // catch up toward it).
  constexpr std::uint32_t kM = 300;
  AgentSimulation<LeaderPhaseClock> sim(LeaderPhaseClock{kM}, 200, 3);
  sim.set_state(0, LeaderPhaseClock::make_leader());
  for (int i = 0; i < 200; ++i) {
    sim.steps(500);
    const auto leader_phase = sim.agent(0).phase;
    for (const auto& a : sim.agents()) {
      const std::uint32_t ahead = (a.phase + kM - leader_phase) % kM;
      EXPECT_TRUE(ahead == 0 || ahead > kM / 2)
          << "follower ahead of leader by " << ahead;
      if (ahead != 0 && ahead <= kM / 2) return;  // fail fast with context
    }
  }
}

TEST(StageClock, TickAdvancesAtThreshold) {
  StageClock c;
  EXPECT_FALSE(c.tick(3));
  EXPECT_FALSE(c.tick(3));
  EXPECT_TRUE(c.tick(3));
  EXPECT_EQ(c.stage, 1u);
  EXPECT_EQ(c.counter, 0u);
}

TEST(StageClock, CatchUpOnlyForward) {
  StageClock a, b;
  b.stage = 4;
  EXPECT_TRUE(a.catch_up(b));
  EXPECT_EQ(a.stage, 4u);
  EXPECT_FALSE(b.catch_up(a));
  EXPECT_FALSE(a.catch_up(b));
}

TEST(StageClock, ResetClearsEverything) {
  StageClock c;
  c.tick(1);
  c.reset();
  EXPECT_EQ(c.stage, 0u);
  EXPECT_EQ(c.counter, 0u);
}

using LcSim = AgentSimulation<LeaderCounting>;

TEST(LeaderCounting, CountsExactlyAndTerminates) {
  for (std::uint64_t n : {50ULL, 200ULL}) {
    LcSim sim(LeaderCounting{}, n, 61 + n);
    sim.set_state(0, LeaderCounting::make_leader());
    const double t = sim.run_until(
        [](const LcSim& s) { return s.agent(0).terminated; }, 10.0, 1e7);
    ASSERT_GE(t, 0.0);
    EXPECT_EQ(sim.agent(0).count, n) << "leader census wrong at n=" << n;
  }
}

TEST(LeaderCounting, TerminationSignalSpreads) {
  LcSim sim(LeaderCounting{}, 100, 67);
  sim.set_state(0, LeaderCounting::make_leader());
  const double t = sim.run_until(
      [](const LcSim& s) {
        for (const auto& a : s.agents()) {
          if (!a.terminated) return false;
        }
        return true;
      },
      10.0, 1e7);
  EXPECT_GE(t, 0.0);
}

TEST(LeaderCounting, NoPrematureTerminationAcrossTrials) {
  // With idle_factor 8 the leader should essentially never terminate before
  // seeing everyone.
  const auto counts = run_trials(20, 71, [](std::uint64_t seed, std::uint64_t) {
    LcSim sim(LeaderCounting{}, 150, seed);
    sim.set_state(0, LeaderCounting::make_leader());
    EXPECT_GE(sim.run_until([](const LcSim& s) { return s.agent(0).terminated; }, 10.0, 1e7),
              0.0);
    return static_cast<double>(sim.agent(0).count);
  });
  for (double c : counts) EXPECT_EQ(c, 150.0);
}

TEST(LeaderCounting, IdleThresholdGrowsWithCount) {
  LeaderCounting p;
  EXPECT_LT(p.idle_threshold(10), p.idle_threshold(100));
  EXPECT_GE(p.idle_threshold(1), 1u);
}

}  // namespace
}  // namespace pops
