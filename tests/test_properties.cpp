// Parameterized property suites (TEST_P / INSTANTIATE_TEST_SUITE_P): protocol
// invariants checked across a sweep of population sizes and seeds.
//
// Each suite states an invariant of the system under test and asserts it at
// many points of a running simulation, for every (n, seed) combination in the
// instantiation — the property-testing layer on top of the unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/log_size_estimation.hpp"
#include "core/synthetic_coin_estimation.hpp"
#include "core/uniform_leader_election.hpp"
#include "proto/exact_counting.hpp"
#include "proto/partition.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {
namespace {

using Params = std::tuple<std::uint64_t /*n*/, std::uint64_t /*seed*/>;

std::string param_name(const testing::TestParamInfo<Params>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

// ---------------------------------------------------------------------------
// Log-Size-Estimation invariants.
// ---------------------------------------------------------------------------
class LogSizeInvariants : public testing::TestWithParam<Params> {};

TEST_P(LogSizeInvariants, HoldThroughoutExecution) {
  const auto [n, seed] = GetParam();
  AgentSimulation<LogSizeEstimation> sim(LogSizeEstimation{}, n, seed);
  const auto& proto = sim.protocol();

  std::uint32_t last_max_logsize = 0;
  bool was_converged = false;
  for (int step = 0; step < 150; ++step) {
    sim.advance_time(25.0);
    std::uint32_t max_logsize = 0;
    std::uint32_t min_logsize = ~std::uint32_t{0};
    std::uint32_t max_s_epoch = 0;
    std::uint32_t max_a_epoch = 0;
    for (const auto& a : sim.agents()) {
      // (1) role-specific field discipline: X agents never tick time.
      if (a.role == Role::X) {
        EXPECT_EQ(a.time, 0u);
        EXPECT_EQ(a.epoch, 0u);
      }
      // (2) epoch never exceeds its target K = 5 * logSize2.
      EXPECT_LE(a.epoch, proto.epoch_target(a));
      // (3) a done agent is exactly at its target (or restarted to 0).
      if (a.protocol_done) {
        EXPECT_EQ(a.epoch, proto.epoch_target(a));
      }
      // (4) sum only lives on S agents and is bounded by epoch * max-gr.
      if (a.role == Role::A) {
        EXPECT_EQ(a.sum, 0u);
      }
      // (5) outputs only on done agents.
      if (a.has_output) {
        EXPECT_TRUE(a.protocol_done);
      }
      max_logsize = std::max(max_logsize, a.log_size2);
      min_logsize = std::min(min_logsize, a.log_size2);
      if (a.role == Role::S) max_s_epoch = std::max(max_s_epoch, a.epoch);
      if (a.role == Role::A) max_a_epoch = std::max(max_a_epoch, a.epoch);
    }
    // (6) the global max logSize2 is monotone nondecreasing.
    EXPECT_GE(max_logsize, last_max_logsize);
    last_max_logsize = max_logsize;
    // (7) S epochs lead A epochs by at most 1 (deposits advance S first).
    // Only meaningful once all agents agree on logSize2 (during a restart
    // wave, mixed regimes coexist transiently).
    if (min_logsize == max_logsize && (max_s_epoch > 0 || max_a_epoch > 0)) {
      EXPECT_LE(max_a_epoch, max_s_epoch + 1);
    }
    // (8) convergence is absorbing (it cannot un-converge).
    const bool now = converged(sim);
    if (was_converged) {
      EXPECT_TRUE(now);
    }
    was_converged = now;
    if (now && step > 3) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LogSizeInvariants,
                         testing::Combine(testing::Values(16, 64, 256, 1024),
                                          testing::Values(1, 2, 3)),
                         param_name);

// ---------------------------------------------------------------------------
// Partition invariants.
// ---------------------------------------------------------------------------
class PartitionInvariants : public testing::TestWithParam<Params> {};

TEST_P(PartitionInvariants, RolesOnlyFlowForward) {
  const auto [n, seed] = GetParam();
  AgentSimulation<PartitionProtocol> sim(PartitionProtocol{}, n, seed);
  std::vector<Role> last(n, Role::X);
  for (int step = 0; step < 60; ++step) {
    sim.advance_time(1.0);
    std::uint64_t x = 0, a = 0, s = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const Role r = sim.agent(i).role;
      // Once assigned, a role never changes; X only becomes A or S.
      if (last[i] != Role::X) {
        EXPECT_EQ(r, last[i]) << "role flip at agent " << i;
      }
      last[i] = r;
      x += r == Role::X ? 1 : 0;
      a += r == Role::A ? 1 : 0;
      s += r == Role::S ? 1 : 0;
    }
    EXPECT_EQ(x + a + s, n);
    // A and S appear in lockstep with the pairing rules: |counts differ| can
    // drift but both are positive once any assignment happened.
    if (a + s > 0) {
      EXPECT_GE(a, 1u);
      EXPECT_GE(s, 1u);
    }
    if (x == 0) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionInvariants,
                         testing::Combine(testing::Values(8, 64, 512),
                                          testing::Values(11, 12, 13)),
                         param_name);

// ---------------------------------------------------------------------------
// Exact-counting invariants.
// ---------------------------------------------------------------------------
class ExactCountingInvariants : public testing::TestWithParam<Params> {};

TEST_P(ExactCountingInvariants, MassAndMonotonicity) {
  const auto [n, seed] = GetParam();
  AgentSimulation<ExactCountingBackup> sim(ExactCountingBackup{}, n, seed);
  std::vector<std::uint32_t> last_best(n, 0);
  const std::uint32_t log_floor = [&] {
    std::uint32_t e = 0;
    while ((std::uint64_t{1} << (e + 1)) <= n) ++e;
    return e;
  }();
  for (int step = 0; step < 80; ++step) {
    sim.advance_time(static_cast<double>(n) / 8.0);
    std::uint64_t mass = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto& st = sim.agent(i);
      if (st.is_level) mass += std::uint64_t{1} << st.level;
      // best is monotone and never exceeds floor(log2 n).
      EXPECT_GE(st.best, last_best[i]);
      EXPECT_LE(st.best, log_floor);
      last_best[i] = st.best;
      // f agents' subscript never exceeds the max producible merge level.
      EXPECT_LE(st.level, log_floor);
    }
    EXPECT_EQ(mass, n) << "2^level mass must be conserved";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactCountingInvariants,
                         testing::Combine(testing::Values(10, 31, 128),
                                          testing::Values(5, 6)),
                         param_name);

// ---------------------------------------------------------------------------
// Synthetic-coin invariants.
// ---------------------------------------------------------------------------
class SyntheticCoinInvariants : public testing::TestWithParam<Params> {};

TEST_P(SyntheticCoinInvariants, RoleAndGenerationDiscipline) {
  using Role = SyntheticCoinEstimation::CoinRole;
  const auto [n, seed] = GetParam();
  AgentSimulation<SyntheticCoinEstimation> sim(SyntheticCoinEstimation{}, n, seed);
  for (int step = 0; step < 100; ++step) {
    sim.advance_time(25.0);
    for (const auto& a : sim.agents()) {
      // F agents never compute.
      if (a.role == Role::F) {
        EXPECT_FALSE(a.gr_generated);
        EXPECT_EQ(a.epoch, 0u);
        EXPECT_EQ(a.sum, 0u);
      }
      // Generation order: gr only after logSize2 finished.
      if (a.gr_generated) {
        EXPECT_TRUE(a.log_size2_generated);
      }
      // logSize2 includes the +2 offset once generated.
      if (a.role == Role::A && a.log_size2_generated) {
        EXPECT_GE(a.log_size2, 3u);
      }
      // epoch bounded by target.
      EXPECT_LE(a.epoch, sim.protocol().epoch_target(a));
    }
    if (converged(sim)) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SyntheticCoinInvariants,
                         testing::Combine(testing::Values(32, 128, 512),
                                          testing::Values(21, 22)),
                         param_name);

// ---------------------------------------------------------------------------
// Uniform leader election invariants.
// ---------------------------------------------------------------------------
class LeaderElectionInvariants : public testing::TestWithParam<Params> {};

TEST_P(LeaderElectionInvariants, ContendersOnlyDropAndMaxSurvives) {
  const auto [n, seed] = GetParam();
  auto proto = make_uniform_leader_election();
  AgentSimulation<UniformLeaderElection> sim(proto, n, seed);
  std::vector<bool> was_contender(n, true);
  for (int step = 0; step < 120; ++step) {
    sim.advance_time(25.0);
    u128 max_own = 0;
    bool max_is_contender = false;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto& d = sim.agent(i).down;
      // A dropped contender never returns.  Restarts (which legitimately
      // reset contender) only happen while the weak estimate is still
      // spreading, so enforce only after the first few samples.
      if (step > 3 && !was_contender[i] && d.contender) {
        ADD_FAILURE() << "contender resurrected at agent " << i;
      }
      was_contender[i] = d.contender;
      if (d.own > max_own) {
        max_own = d.own;
        max_is_contender = d.contender;
      } else if (d.own == max_own) {
        max_is_contender = max_is_contender || d.contender;
      }
    }
    // The max bitstring holder is always a live contender.
    EXPECT_TRUE(max_is_contender) << "nobody holds the maximum";
    if (clock_finished(sim)) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeaderElectionInvariants,
                         testing::Combine(testing::Values(64, 256, 1024),
                                          testing::Values(31, 32)),
                         param_name);

}  // namespace
}  // namespace pops
