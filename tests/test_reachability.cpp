// Tests for the exhaustive configuration-space checker (paper §2.1
// semantics): reachability, stable correctness, silence.
#include <gtest/gtest.h>

#include "proto/arithmetic.hpp"
#include "proto/epidemic.hpp"
#include "proto/partition.hpp"
#include "sim/reachability.hpp"

namespace pops {
namespace {

TEST(Reachability, SuccessorsOfEpidemicConfig) {
  const auto spec = epidemic_spec();
  const auto c = make_configuration(spec, {{"S", 2}, {"I", 1}});
  const auto succ = successor_configurations(spec, c);
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0][spec.id("S")], 1u);
  EXPECT_EQ(succ[0][spec.id("I")], 2u);
}

TEST(Reachability, SameStatePairNeedsCountTwo) {
  FiniteSpec spec;
  spec.add("a", "a", "b", "b");
  const auto lone = make_configuration(spec, {{"a", 1}});
  EXPECT_TRUE(successor_configurations(spec, lone).empty());
  const auto pair = make_configuration(spec, {{"a", 2}});
  EXPECT_EQ(successor_configurations(spec, pair).size(), 1u);
}

TEST(Reachability, EpidemicReachabilityIsALine) {
  // From (S: n-1, I: 1) exactly the configurations (S: k, I: n-k) for
  // 0 <= k <= n-1 are reachable: n configurations total.
  const auto spec = epidemic_spec();
  const auto start = make_configuration(spec, {{"S", 9}, {"I", 1}});
  const auto reach = reachable_configurations(spec, start);
  EXPECT_EQ(reach.size(), 10u);
}

TEST(Reachability, StablyCorrectEpidemic) {
  // "All infected" is stably correct (no transition leaves it); "at least
  // one infected" is stably correct from the start; "no infected" is not
  // reachable from a seeded epidemic.
  const auto spec = epidemic_spec();
  const auto all_infected = make_configuration(spec, {{"I", 10}});
  EXPECT_TRUE(is_silent(spec, all_infected));
  EXPECT_TRUE(is_stably(spec, all_infected, [&](const Configuration& c) {
    return c[spec.id("S")] == 0;
  }));
  const auto seeded = make_configuration(spec, {{"S", 9}, {"I", 1}});
  EXPECT_TRUE(is_stably(spec, seeded, [&](const Configuration& c) {
    return c[spec.id("I")] >= 1;
  }));
  EXPECT_FALSE(is_stably(spec, seeded, [&](const Configuration& c) {
    return c[spec.id("S")] == 0;  // correct only at the end, not stably so now
  }));
  EXPECT_TRUE(can_reach(spec, seeded, [&](const Configuration& c) {
    return c[spec.id("S")] == 0;
  }));
}

TEST(Reachability, DoublingAlwaysStabilizesToTwoX) {
  // Semantic check of the intro example: from (x: 3, q: 6), every reachable
  // terminal-ish claim — a configuration with y = 6 is reachable and
  // "y <= 6" holds stably.
  const auto spec = doubling_spec();
  const auto start = make_configuration(spec, {{"x", 3}, {"q", 6}});
  EXPECT_TRUE(can_reach(spec, start, [&](const Configuration& c) {
    return c[spec.id("y")] == 6 && c[spec.id("x")] == 0;
  }));
  EXPECT_TRUE(is_stably(spec, start, [&](const Configuration& c) {
    return c[spec.id("y")] <= 6;
  }));
}

TEST(Reachability, HalvingCannotOvershoot) {
  const auto spec = halving_spec();
  const auto start = make_configuration(spec, {{"x", 7}});
  EXPECT_TRUE(is_stably(spec, start, [&](const Configuration& c) {
    return c[spec.id("y")] <= 3;
  }));
  EXPECT_TRUE(can_reach(spec, start, [&](const Configuration& c) {
    return c[spec.id("y")] == 3 && c[spec.id("x")] == 1;
  }));
}

TEST(Reachability, MaxConfigGuardThrows) {
  // Partition has a 3-state config space of size ~C(n+2,2); with a tiny cap
  // the guard must fire.
  const auto spec = partition_spec();
  const auto start = make_configuration(spec, {{"X", 20}});
  EXPECT_THROW(reachable_configurations(spec, start, 5), std::invalid_argument);
}

TEST(Reachability, ConfigSizeMismatchThrows) {
  const auto spec = epidemic_spec();
  EXPECT_THROW(successor_configurations(spec, Configuration{1, 2, 3}),
               std::invalid_argument);
}

TEST(Reachability, PartitionAlwaysExhaustsX) {
  // From all-X with n = 12, every reachable configuration can still reach
  // X = 0 (the partition never deadlocks), and X = 0 configurations are
  // silent for the partition rules.
  const auto spec = partition_spec();
  const auto start = make_configuration(spec, {{"X", 12}});
  for (const auto& c : reachable_configurations(spec, start)) {
    EXPECT_TRUE(can_reach(spec, c, [&](const Configuration& d) {
      return d[spec.id("X")] == 0;
    }));
  }
}

}  // namespace
}  // namespace pops
