// Unit tests for the RNG substrate: determinism, uniformity, geometric
// distribution shape, ordered-pair scheduler properties.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "sim/rng.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ReseedReproduces) {
  Rng a(7);
  const auto first = a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr std::uint64_t kDraws = 100000;
  std::array<std::uint64_t, kBuckets> counts{};
  for (std::uint64_t i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  // Chi-square with 9 dof: 99.9th percentile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, CoinIsFair) {
  Rng rng(5);
  std::uint64_t heads = 0;
  constexpr std::uint64_t kFlips = 100000;
  for (std::uint64_t i = 0; i < kFlips; ++i) heads += rng.coin() ? 1 : 0;
  // 5 sigma band around n/2 with sigma = sqrt(n)/2 ~ 158.
  EXPECT_NEAR(static_cast<double>(heads), kFlips / 2.0, 800.0);
}

TEST(Rng, GeometricFairHasSupportFromOne) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.geometric_fair(), 1u);
}

TEST(Rng, GeometricFairMeanIsTwo) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(static_cast<double>(rng.geometric_fair()));
  EXPECT_NEAR(s.mean(), 2.0, 0.02);
}

TEST(Rng, GeometricFairMatchesDistribution) {
  // Pr[G = k] = 2^{-k}: check the first few atoms.
  Rng rng(17);
  constexpr int kDraws = 200000;
  std::array<int, 5> counts{};
  for (int i = 0; i < kDraws; ++i) {
    const auto g = rng.geometric_fair();
    if (g <= 5) ++counts[g - 1];
  }
  for (int k = 1; k <= 5; ++k) {
    const double expected = kDraws * std::pow(2.0, -k);
    EXPECT_NEAR(static_cast<double>(counts[k - 1]), expected, 6.0 * std::sqrt(expected) + 10)
        << "atom k=" << k;
  }
}

TEST(Rng, GeneralGeometricMean) {
  Rng rng(23);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(static_cast<double>(rng.geometric(0.25)));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Rng, GeometricParameterValidation) {
  Rng rng(1);
  EXPECT_THROW(rng.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(rng.geometric(1.5), std::invalid_argument);
  EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, OrderedPairDistinct) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const auto [a, b] = rng.ordered_pair(5);
    EXPECT_NE(a, b);
    EXPECT_LT(a, 5u);
    EXPECT_LT(b, 5u);
  }
}

TEST(Rng, OrderedPairRejectsTinyPopulation) {
  Rng rng(1);
  EXPECT_THROW(rng.ordered_pair(1), std::invalid_argument);
}

TEST(Rng, OrderedPairUniformOverAllPairs) {
  Rng rng(37);
  constexpr std::uint64_t kN = 4;  // 12 ordered pairs
  constexpr int kDraws = 120000;
  std::array<int, kN * kN> counts{};
  for (int i = 0; i < kDraws; ++i) {
    const auto [a, b] = rng.ordered_pair(kN);
    ++counts[a * kN + b];
  }
  const double expected = kDraws / 12.0;
  for (std::uint64_t a = 0; a < kN; ++a) {
    for (std::uint64_t b = 0; b < kN; ++b) {
      if (a == b) {
        EXPECT_EQ(counts[a * kN + b], 0);
      } else {
        EXPECT_NEAR(static_cast<double>(counts[a * kN + b]), expected,
                    6.0 * std::sqrt(expected));
      }
    }
  }
}

TEST(SplitMix, DeterministicAndNonTrivial) {
  SplitMix64 a(0), b(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace pops
