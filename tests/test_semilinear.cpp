// Tests for the classic constant-state predicate protocols: stable
// correctness verified exhaustively at small n (via the reachability
// checker), and convergence at larger n in the count simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "proto/semilinear.hpp"
#include "sim/count_simulation.hpp"
#include "sim/reachability.hpp"

namespace pops {
namespace {

// All agents agree on the output bit `expected` for threshold `c`.
bool all_output(const FiniteSpec& spec, const Configuration& config, bool expected,
                std::uint32_t c) {
  for (std::uint32_t s = 0; s < spec.num_states(); ++s) {
    if (config[s] > 0 && output_of(spec, s, c) != expected) return false;
  }
  return true;
}

TEST(Threshold, ExhaustivelyStabilizesToCorrectAnswer) {
  // For every input size up to 6 tokens among 6 agents and thresholds 2..3:
  // a configuration where all agents output the right bit is reachable, and
  // from every reachable configuration it remains reachable (= the protocol
  // stably computes the predicate, paper §2.1 semantics).
  for (std::uint32_t c : {2u, 3u}) {
    const auto spec = threshold_spec(c);
    for (std::uint64_t tokens = 0; tokens <= 6; ++tokens) {
      auto config = make_configuration(
          spec, {{"L1", tokens}, {"L0", 6 - tokens}});
      const bool expected = tokens >= c;
      for (const auto& reached : reachable_configurations(spec, config)) {
        EXPECT_TRUE(can_reach(spec, reached,
                              [&](const Configuration& d) {
                                return all_output(spec, d, expected, c);
                              }))
            << "tokens=" << tokens << " c=" << c;
      }
    }
  }
}

TEST(Threshold, ConvergesInSimulation) {
  constexpr std::uint32_t kC = 4;
  const auto spec = threshold_spec(kC);
  for (std::uint64_t tokens : {2ULL, 4ULL, 9ULL}) {
    CountSimulation sim(spec, 5 + tokens);
    sim.set_count("L1", tokens);
    sim.set_count("L0", 200 - tokens);
    const bool expected = tokens >= kC;
    const double t = sim.run_until(
        [&](const CountSimulation& s) {
          for (std::uint32_t st = 0; st < spec.num_states(); ++st) {
            if (s.count(st) > 0 && output_of(spec, st, kC) != expected) return false;
          }
          return true;
        },
        5.0, 1e7);
    EXPECT_GE(t, 0.0) << "tokens=" << tokens;
  }
}

TEST(Parity, ExhaustivelyStabilizes) {
  const auto spec = parity_spec();
  for (std::uint64_t ones = 0; ones <= 5; ++ones) {
    auto config = make_configuration(spec, {{"L1", ones}, {"L0", 5 - ones}});
    const bool expected = ones % 2 == 1;
    for (const auto& reached : reachable_configurations(spec, config)) {
      EXPECT_TRUE(can_reach(spec, reached, [&](const Configuration& d) {
        return all_output(spec, d, expected, 1);
      })) << "ones=" << ones;
    }
  }
}

TEST(Parity, ExactlyOneLeaderSurvives) {
  const auto spec = parity_spec();
  CountSimulation sim(spec, 7);
  sim.set_count("L1", 33);
  sim.set_count("L0", 67);
  const double t = sim.run_until(
      [&](const CountSimulation& s) { return s.count("L0") + s.count("L1") == 1; }, 10.0,
      1e7);
  ASSERT_GE(t, 0.0);
  EXPECT_EQ(sim.count("L1"), 1u);  // 33 is odd
}

TEST(ApproximateMajority, ClearMajorityConvergesFast) {
  const auto spec = approximate_majority_spec();
  CountSimulation sim(spec, 11);
  sim.set_count("x", 700);
  sim.set_count("y", 300);
  const double t = sim.run_until(
      [](const CountSimulation& s) { return s.count("y") == 0 && s.count("b") == 0; }, 1.0,
      1e6);
  ASSERT_GE(t, 0.0);
  EXPECT_EQ(sim.count("x"), 1000u);
  EXPECT_LT(t, 24.0 * std::log(1000.0));  // O(log n) w.h.p.
}

TEST(ApproximateMajority, ConsensusIsSilent) {
  const auto spec = approximate_majority_spec();
  const auto all_x = make_configuration(spec, {{"x", 10}});
  EXPECT_TRUE(is_silent(spec, all_x));
}

TEST(ApproximateMajority, EventuallyReachesConsensusEitherWay) {
  // From a tie, a consensus (all-x or all-y) is reachable — and consensus is
  // absorbing, so the protocol stabilizes (to an arbitrary side).
  const auto spec = approximate_majority_spec();
  const auto tie = make_configuration(spec, {{"x", 3}, {"y", 3}});
  EXPECT_TRUE(can_reach(spec, tie, [&](const Configuration& c) {
    return c[spec.id("y")] == 0 && c[spec.id("b")] == 0;
  }));
  EXPECT_TRUE(can_reach(spec, tie, [&](const Configuration& c) {
    return c[spec.id("x")] == 0 && c[spec.id("b")] == 0;
  }));
}

TEST(Threshold, RejectsZeroThreshold) {
  EXPECT_THROW(threshold_spec(0), std::invalid_argument);
}

}  // namespace
}  // namespace pops
