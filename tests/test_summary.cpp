// Unit tests for summary statistics, quantiles, histogram, tables, trials.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/table.hpp"
#include "harness/trials.hpp"
#include "sim/metrics.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.35), 3.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(9.99);
  h.add(10.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Table, AlignsAndPrints) {
  Table t({"n", "time"});
  t.row({"100", "1.5"});
  t.row({"100000", "2.25"});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("100000"), std::string::npos);
  EXPECT_NE(out.find("time"), std::string::npos);
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(FieldRangeRecorder, TracksMaximaAndBound) {
  FieldRangeRecorder r;
  r.observe("x", 3);
  r.observe("x", 7);
  r.observe("y", 1);
  EXPECT_EQ(r.max_value("x"), 7u);
  EXPECT_EQ(r.max_value("z"), 0u);
  EXPECT_DOUBLE_EQ(r.state_count_bound(), 8.0 * 2.0);
}

TEST(Trials, SeedsAreDistinctAndReproducible) {
  EXPECT_EQ(trial_seed(1, 0), trial_seed(1, 0));
  EXPECT_NE(trial_seed(1, 0), trial_seed(1, 1));
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
}

TEST(Trials, RunTrialsCollectsResults) {
  const auto results =
      run_trials(5, 7, [](std::uint64_t seed, std::uint64_t idx) {
        return static_cast<double>(seed % 97) + static_cast<double>(idx);
      });
  EXPECT_EQ(results.size(), 5u);
  const auto again =
      run_trials(5, 7, [](std::uint64_t seed, std::uint64_t idx) {
        return static_cast<double>(seed % 97) + static_cast<double>(idx);
      });
  EXPECT_EQ(results, again);
}

}  // namespace
}  // namespace pops
