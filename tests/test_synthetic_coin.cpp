// Tests for the deterministic synthetic-coin variant (paper Appendix B).
#include <gtest/gtest.h>

#include <cmath>

#include "core/synthetic_coin_estimation.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"
#include "stats/summary.hpp"

namespace pops {
namespace {

using Sim = AgentSimulation<SyntheticCoinEstimation>;
using Role = SyntheticCoinEstimation::CoinRole;

double run_to_convergence(Sim& sim, double max_time = 5e6) {
  return sim.run_until([](const Sim& s) { return converged(s); }, 50.0, max_time);
}

TEST(SyntheticCoin, TransitionFunctionNeverDrawsRandomness) {
  // Two Rngs with different seeds must produce identical runs when the
  // scheduler choices are replayed — we verify interact() ignores its Rng by
  // feeding the same state pairs with different rngs.
  SyntheticCoinEstimation proto;
  Rng r1(1), r2(999);
  SyntheticCoinEstimation::State a1, b1, a2, b2;
  for (int i = 0; i < 200; ++i) {
    proto.interact(a1, b1, r1);
    proto.interact(a2, b2, r2);
  }
  EXPECT_EQ(a1.log_size2, a2.log_size2);
  EXPECT_EQ(b1.gr, b2.gr);
  EXPECT_EQ(a1.epoch, a2.epoch);
}

TEST(SyntheticCoin, PartitionsIntoWorkersAndFlippers) {
  Sim sim(SyntheticCoinEstimation{}, 400, 3);
  sim.advance_time(100.0);
  std::uint64_t a = 0, f = 0, x = 0;
  for (const auto& st : sim.agents()) {
    a += st.role == Role::A ? 1 : 0;
    f += st.role == Role::F ? 1 : 0;
    x += st.role == Role::X ? 1 : 0;
  }
  EXPECT_EQ(x, 0u);
  EXPECT_EQ(a + f, 400u);
  EXPECT_GE(a, 400u / 3);
  EXPECT_LE(a, 2 * 400u / 3);
}

TEST(SyntheticCoin, SyntheticGeometricHasCorrectShape) {
  // logSize2 at completion equals (#tails + 1) + 2 = geometric + 2; over the
  // population of A agents the mean of (logSize2 - 2) before max-propagation
  // would be ~2.  We approximate by sampling fresh runs' first completions.
  Summary s;
  for (int trial = 0; trial < 30; ++trial) {
    Sim sim(SyntheticCoinEstimation{}, 64, trial_seed(7, trial));
    sim.advance_time(3.0);  // a few interactions: some A completed generation
    for (const auto& st : sim.agents()) {
      if (st.role == Role::A && st.log_size2_generated) {
        s.add(static_cast<double>(st.log_size2) - 2.0);
        break;  // one sample per trial to keep samples independent-ish
      }
    }
  }
  ASSERT_GE(s.count(), 10u);
  EXPECT_NEAR(s.mean(), 2.0, 1.0);
}

TEST(SyntheticCoin, ConvergesWithReasonableEstimate) {
  constexpr std::uint64_t kN = 512;
  Sim sim(SyntheticCoinEstimation{}, kN, 11);
  ASSERT_GE(run_to_convergence(sim), 0.0);
  const auto outs = outputs(sim);
  ASSERT_FALSE(outs.empty());
  Summary s;
  for (auto o : outs) s.add(static_cast<double>(o));
  EXPECT_NEAR(s.mean(), 9.0, 5.7);
}

TEST(SyntheticCoin, OutputsAgreeAcrossWorkers) {
  // Each A keeps its own sum; outputs should still cluster tightly (within
  // a couple of units) because all agents average the same epoch maxima.
  Sim sim(SyntheticCoinEstimation{}, 512, 13);
  ASSERT_GE(run_to_convergence(sim), 0.0);
  const auto outs = outputs(sim);
  Summary s;
  for (auto o : outs) s.add(static_cast<double>(o));
  EXPECT_LE(s.max() - s.min(), 4.0);
}

TEST(SyntheticCoin, DeterministicGivenSchedulerSeed) {
  Sim a(SyntheticCoinEstimation{}, 256, 17), b(SyntheticCoinEstimation{}, 256, 17);
  ASSERT_GE(run_to_convergence(a), 0.0);
  ASSERT_GE(run_to_convergence(b), 0.0);
  EXPECT_EQ(outputs(a), outputs(b));
}

TEST(SyntheticCoin, SmallPopulations) {
  for (std::uint64_t n : {2ULL, 4ULL, 16ULL}) {
    Sim sim(SyntheticCoinEstimation{}, n, 19 + n);
    EXPECT_GE(run_to_convergence(sim, 1e7), 0.0) << "n=" << n;
  }
}

TEST(SyntheticCoin, ParamsValidated) {
  SyntheticCoinEstimation::Params bad;
  bad.epoch_multiplier = 0;
  EXPECT_THROW(SyntheticCoinEstimation{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace pops
