// Tests for Section 4's machinery: the producibility closure, α-density, the
// density lemma (Lemma 4.2), the terminating toys (Theorem 4.1), and the
// timer lemma (Appendix E).
#include <gtest/gtest.h>

#include <cmath>

#include "harness/trials.hpp"
#include "sim/count_simulation.hpp"
#include "stats/bounds.hpp"
#include "stats/summary.hpp"
#include "termination/density.hpp"
#include "termination/producibility.hpp"
#include "termination/terminating_toys.hpp"
#include "termination/timer_lemma.hpp"

namespace pops {
namespace {

TEST(Producibility, ChainExample) {
  // x_i, x_i -> x_{i+1}, q (footnote 18): x_m is m-producible from {x1}.
  FiniteSpec spec;
  for (int i = 1; i <= 5; ++i) {
    spec.add("x" + std::to_string(i), "x" + std::to_string(i),
             "x" + std::to_string(i + 1), "q");
  }
  ProducibilityClosure closure(spec, {spec.id("x1")}, 10, 0.5);
  EXPECT_EQ(closure.producible_at(spec.id("x1")), 0);
  EXPECT_EQ(closure.producible_at(spec.id("x3")), 2);
  EXPECT_EQ(closure.producible_at(spec.id("x6")), 5);
  EXPECT_EQ(closure.producible_at(spec.id("q")), 1);
}

TEST(Producibility, RespectsRateThreshold) {
  FiniteSpec spec;
  spec.add("a", "a", "b", "a", 0.9);
  spec.add("a", "a", "c", "a", 0.05);  // below threshold rho = 0.1
  ProducibilityClosure closure(spec, {spec.id("a")}, 5, 0.1);
  EXPECT_GE(closure.producible_at(spec.id("b")), 0);
  EXPECT_EQ(closure.producible_at(spec.id("c")), -1);
}

TEST(Producibility, FixedPointStopsEarly) {
  FiniteSpec spec;
  spec.add("a", "a", "b", "b");
  ProducibilityClosure closure(spec, {spec.id("a")}, 100, 1.0);
  EXPECT_LE(closure.levels_computed(), 3u);
  EXPECT_EQ(closure.closure().size(), 2u);
}

TEST(Density, AlphaDenseCheck) {
  EXPECT_TRUE(is_alpha_dense({50, 50}, 0.5));
  EXPECT_TRUE(is_alpha_dense({50, 50, 0}, 0.5));  // absent states don't count
  EXPECT_FALSE(is_alpha_dense({99, 1}, 0.5));
  EXPECT_FALSE(is_alpha_dense({}, 0.5));
  EXPECT_FALSE(is_alpha_dense({0, 0}, 0.1));
}

TEST(DensityLemma, ClosureStatesReachLinearCountsInConstantTime) {
  // Lemma 4.2 on the fixed-count trigger with threshold 6: from the 1-dense
  // all-c0 configuration, every state in Λ^m (including the signal t) reaches
  // count >= δn by time 1, for δ independent of n.
  constexpr std::uint32_t kThreshold = 6;
  const auto spec = fixed_count_trigger_spec(kThreshold);
  ProducibilityClosure closure(spec, {spec.id("c0")}, kThreshold + 1, 1.0);
  ASSERT_GE(closure.producible_at(spec.id("t")), 1);

  double min_delta = 1.0;
  for (std::uint64_t n : {2000ULL, 8000ULL, 32000ULL}) {
    CountSimulation sim(spec, 97 + n);
    sim.set_count("c0", n);
    const auto result = measure_density_lemma(sim, closure.closure(), 1.0);
    EXPECT_GT(result.min_fraction, 0.0) << "n=" << n;
    min_delta = std::min(min_delta, result.min_fraction);
    EXPECT_GE(result.first_all_present_time, 0.0);
    EXPECT_LE(result.first_all_present_time, 1.0);
  }
  // δ is bounded away from 0 uniformly in n (here generously 1e-3).
  EXPECT_GT(min_delta, 1e-3);
}

TEST(TerminatingToys, FixedCountSignalsInConstantTime) {
  // First signal at time ~ threshold/2, independent of n.
  for (std::uint64_t n : {100ULL, 1000ULL, 10000ULL}) {
    AgentSimulation<FixedCountTrigger> sim(FixedCountTrigger{50}, n, 7 + n);
    const double t = sim.run_until(
        [](const AgentSimulation<FixedCountTrigger>& s) { return any_terminated(s); },
        1.0, 1e5);
    ASSERT_GE(t, 0.0);
    EXPECT_LE(t, 30.0) << "n=" << n;  // threshold/2 + fluctuation
  }
}

TEST(TerminatingToys, HeadsRunSignalTimeDecreasesWithN) {
  auto first_signal = [](std::uint64_t n, std::uint64_t seed) {
    AgentSimulation<HeadsRunTrigger> sim(HeadsRunTrigger{12}, n, seed);
    const double t = sim.run_until(
        [](const AgentSimulation<HeadsRunTrigger>& s) { return any_terminated(s); }, 1.0,
        1e6);
    EXPECT_GE(t, 0.0);
    return t;
  };
  Summary small, large;
  for (int i = 0; i < 5; ++i) {
    small.add(first_signal(100, trial_seed(101, i)));
    large.add(first_signal(5000, trial_seed(103, i)));
  }
  EXPECT_LT(large.mean(), small.mean());
}

TEST(TerminatingToys, GeometricTriggerFiresAtBirthForLargeN) {
  // Pr[some draw > 20] = 1 - (1 - 2^{-20})^n: tiny for n = 100, near 1 for
  // n = 2^23.  We test the small side and the monotonicity by formula.
  AgentSimulation<GeometricTrigger> sim(GeometricTrigger{20}, 100, 3);
  EXPECT_FALSE(any_terminated(sim));  // overwhelmingly likely
  const double p_small = 1.0 - std::pow(1.0 - std::exp2(-20.0), 100.0);
  const double p_large = 1.0 - std::pow(1.0 - std::exp2(-20.0), 8388608.0);
  EXPECT_LT(p_small, 1e-4);
  EXPECT_GT(p_large, 0.99);
}

TEST(TerminatingToys, SignalSpreadsByEpidemic) {
  AgentSimulation<FixedCountTrigger> sim(FixedCountTrigger{10}, 500, 11);
  const double t = sim.run_until(
      [](const AgentSimulation<FixedCountTrigger>& s) {
        for (const auto& a : s.agents()) {
          if (!a.terminated) return false;
        }
        return true;
      },
      1.0, 1e5);
  EXPECT_GE(t, 0.0);
  EXPECT_LE(t, 10.0 / 2.0 + 24.0 * std::log(500.0));
}

TEST(TimerLemma, CorollaryE3CountStaysAboveKOver81) {
  // Empirically the count never drops below k/81 within time 1 (the bound
  // 2^{-k/81} makes failures astronomically unlikely at k = 2000).
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const auto min_count = min_count_under_consumption(4000, 2000, 1.0, rng);
    EXPECT_GT(min_count, 2000u / 81u);
  }
}

TEST(TimerLemma, ConsumptionIsFasterOverLongerHorizons) {
  Rng rng(17);
  Summary short_h, long_h;
  for (int i = 0; i < 10; ++i) {
    short_h.add(static_cast<double>(min_count_under_consumption(2000, 1000, 0.5, rng)));
    long_h.add(static_cast<double>(min_count_under_consumption(2000, 1000, 2.0, rng)));
  }
  EXPECT_GT(short_h.mean(), long_h.mean());
}

TEST(TimerLemma, BallsInBinsMatchesExpectation) {
  // E[empty after m throws] = k (1 - 1/n)^m approximately; check the mean.
  Rng rng(19);
  constexpr std::uint64_t kN = 1000, kK = 500, kM = 2000;
  Summary s;
  for (int i = 0; i < 200; ++i) {
    s.add(static_cast<double>(empty_bins_after_throws(kN, kK, kM, rng)));
  }
  const double expected = kK * std::pow(1.0 - 1.0 / static_cast<double>(kN), kM);
  EXPECT_NEAR(s.mean(), expected, 0.05 * expected);
}

TEST(TimerLemma, LemmaE1TailHolds) {
  // Pr[<= δk empty] < (2δem/n)^{δk} with δ = 1/81, m = n: bound ~ 6.7e-8 at
  // k = 810 — empirically never.
  Rng rng(23);
  constexpr std::uint64_t kN = 2000, kK = 810, kM = 2000;
  const double delta = 1.0 / 81.0;
  for (int i = 0; i < 50; ++i) {
    const auto empty = empty_bins_after_throws(kN, kK, kM, rng);
    EXPECT_GT(static_cast<double>(empty), delta * kK);
  }
}

TEST(TimerLemma, InputValidation) {
  Rng rng(29);
  EXPECT_THROW(min_count_under_consumption(1, 1, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(min_count_under_consumption(10, 11, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(empty_bins_after_throws(10, 11, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace pops
