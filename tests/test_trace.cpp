// Tests for the Trace time-series recorder and confidence-interval helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "proto/epidemic.hpp"
#include "sim/agent_simulation.hpp"
#include "sim/trace.hpp"
#include "stats/confidence.hpp"

namespace pops {
namespace {

using Sim = AgentSimulation<ValueEpidemic>;

double infected_fraction(const Sim& sim) {
  std::uint64_t count = 0;
  for (const auto& a : sim.agents()) count += a.value > 0 ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(sim.population_size());
}

TEST(Trace, SamplesOnGridAndExposesValues) {
  Sim sim(ValueEpidemic{}, 200, 1);
  sim.set_state(0, ValueEpidemic::State{1});
  Trace<Sim> trace;
  trace.observe("infected_frac", infected_fraction);
  trace.run(sim, 10.0, 1.0);
  ASSERT_GE(trace.samples(), 11u);
  EXPECT_DOUBLE_EQ(trace.time_at(0), 0.0);
  EXPECT_NEAR(trace.value(0, "infected_frac"), 1.0 / 200.0, 1e-12);
  // Monotone growth of the epidemic along the trace.
  for (std::size_t i = 1; i < trace.samples(); ++i) {
    EXPECT_GE(trace.value(i, "infected_frac"), trace.value(i - 1, "infected_frac"));
  }
}

TEST(Trace, EpidemicIsSigmoid) {
  // The logistic shape: growth rate peaks mid-trace, not at the ends.
  Sim sim(ValueEpidemic{}, 2000, 3);
  sim.set_state(0, ValueEpidemic::State{1});
  Trace<Sim> trace;
  trace.observe("frac", infected_fraction);
  trace.run(sim, 16.0, 0.5);
  double max_slope = 0.0;
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < trace.samples(); ++i) {
    const double slope = trace.value(i, "frac") - trace.value(i - 1, "frac");
    if (slope > max_slope) {
      max_slope = slope;
      argmax = i;
    }
  }
  EXPECT_GT(argmax, 2u);
  EXPECT_LT(argmax, trace.samples() - 2);
}

TEST(Trace, CsvHasHeaderAndRows) {
  Sim sim(ValueEpidemic{}, 50, 5);
  Trace<Sim> trace;
  trace.observe("frac", infected_fraction);
  trace.run(sim, 2.0, 1.0);
  std::ostringstream os;
  trace.write_csv(os);
  const auto csv = os.str();
  EXPECT_EQ(csv.substr(0, 10), "time,frac\n");
  EXPECT_GE(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(Trace, UnknownObservableThrows) {
  Sim sim(ValueEpidemic{}, 50, 5);
  Trace<Sim> trace;
  trace.observe("a", infected_fraction);
  trace.sample(sim);
  EXPECT_THROW(trace.value(0, "b"), std::invalid_argument);
}

TEST(Trace, CannotAddObservableAfterSampling) {
  Sim sim(ValueEpidemic{}, 50, 5);
  Trace<Sim> trace;
  trace.observe("a", infected_fraction);
  trace.sample(sim);
  EXPECT_THROW(trace.observe("late", infected_fraction), std::invalid_argument);
}

TEST(Confidence, WilsonKnownValues) {
  // 50/100 at 95%: approximately [0.404, 0.596].
  const auto ci = wilson_interval(50, 100);
  EXPECT_NEAR(ci.lo, 0.404, 0.005);
  EXPECT_NEAR(ci.hi, 0.596, 0.005);
}

TEST(Confidence, WilsonZeroSuccessesStartsAtZero) {
  const auto ci = wilson_interval(0, 30);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 0.15);
}

TEST(Confidence, WilsonValidation) {
  EXPECT_THROW(wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(5, 4), std::invalid_argument);
}

TEST(Confidence, RuleOfThree) {
  EXPECT_DOUBLE_EQ(rule_of_three(300), 0.01);
  EXPECT_THROW(rule_of_three(0), std::invalid_argument);
}

TEST(Confidence, MeanHalfWidthShrinksWithSamples) {
  EXPECT_GT(mean_half_width(1.0, 10), mean_half_width(1.0, 1000));
}

}  // namespace
}  // namespace pops
