// The parallel trial harness must be bit-identical to the serial one —
// whatever the process-wide executor's width.  The fixture pins the width
// to 8 (real worker threads even on 1-core machines, which is what gives
// the TSan run teeth) and restores the default after.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/executor.hpp"
#include "harness/trials.hpp"
#include "proto/epidemic.hpp"
#include "sim/batched_count_simulation.hpp"

namespace pops {
namespace {

class Trials : public ::testing::Test {
 protected:
  void SetUp() override { Executor::set_threads(8); }
  void TearDown() override { Executor::set_threads(0); }
};

TEST_F(Trials, ParallelMatchesSerialForAnyThreadCount) {
  auto trial = [](std::uint64_t seed, std::uint64_t) -> std::uint64_t {
    BatchedCountSimulation sim(epidemic_spec(), seed);
    sim.set_count("S", 995);
    sim.set_count("I", 5);
    sim.advance_time(3.0);
    return sim.count("I");
  };
  const auto serial = run_trials(64, 0xFEED, trial);
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    const auto parallel = run_trials_parallel(64, 0xFEED, trial, threads);
    ASSERT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST_F(Trials, ParallelBoolResultsAreRaceFree) {
  // vector<bool> bit-packing must not be used for the cross-thread buffer.
  auto trial = [](std::uint64_t seed, std::uint64_t) -> bool {
    BatchedCountSimulation sim(epidemic_spec(), seed);
    sim.set_count("S", 495);
    sim.set_count("I", 5);
    sim.advance_time(6.0);
    return sim.count("S") == 0;
  };
  const auto serial = run_trials(128, 0xB001, trial);
  const auto parallel = run_trials_parallel(128, 0xB001, trial, 8);
  EXPECT_EQ(parallel, serial);
}

TEST_F(Trials, ParallelHandlesEdgeSizes) {
  auto trial = [](std::uint64_t seed, std::uint64_t index) {
    return seed ^ index;
  };
  EXPECT_TRUE(run_trials_parallel(0, 1, trial, 4).empty());
  EXPECT_EQ(run_trials_parallel(1, 1, trial, 4), run_trials(1, 1, trial));
  EXPECT_EQ(run_trials_parallel(5, 1, trial, 16), run_trials(5, 1, trial));
}

}  // namespace
}  // namespace pops
