// Tests for the probability-1 upper-bound estimator (paper Section 3.3).
#include <gtest/gtest.h>

#include <cmath>

#include "core/upper_bound_estimation.hpp"
#include "harness/trials.hpp"
#include "sim/agent_simulation.hpp"

namespace pops {
namespace {

using Sim = AgentSimulation<UpperBoundEstimation>;

TEST(UpperBound, ReportIsAlwaysAtLeastBackup) {
  UpperBoundEstimation proto;
  UpperBoundEstimation::State s{};
  s.backup.best = 6;  // kex = 7
  EXPECT_EQ(proto.report(s), 7);
  s.fast.has_output = true;
  s.fast.output = 1;  // fast + 4 = 5 < 7
  EXPECT_EQ(proto.report(s), 7);
  s.fast.output = 10;  // fast + 4 = 14 > 7
  EXPECT_EQ(proto.report(s), 14);
}

TEST(UpperBound, ReportUpperBoundsLogNAfterStabilization) {
  // After both the fast protocol converges and the backup stabilizes, every
  // agent's report must be >= log2 n — with probability 1, so across ALL
  // trials and agents.
  for (std::uint64_t n : {48ULL, 100ULL, 256ULL}) {
    const double logn = std::log2(static_cast<double>(n));
    for (int trial = 0; trial < 4; ++trial) {
      Sim sim(UpperBoundEstimation{}, n, trial_seed(101 + n, trial));
      const double t = sim.run_until(
          [](const Sim& s) {
            if (!fast_converged(s)) return false;
            std::uint32_t expected = 0;
            while ((std::uint64_t{1} << (expected + 1)) <= s.population_size()) ++expected;
            for (const auto& a : s.agents()) {
              if (a.backup.best != expected) return false;
            }
            return true;
          },
          25.0, 1e7);
      ASSERT_GE(t, 0.0) << "n=" << n;
      for (const auto& a : sim.agents()) {
        EXPECT_GE(static_cast<double>(sim.protocol().report(a)), logn) << "n=" << n;
      }
    }
  }
}

TEST(UpperBound, ReportNotAbsurdlyLarge) {
  // w.h.p. the report stays within log n + O(1): fast output ~ log n + 1 plus
  // the +4 shift gives ~ log n + 5; backup gives <= log n + 1.
  constexpr std::uint64_t kN = 256;
  Sim sim(UpperBoundEstimation{}, kN, 7);
  ASSERT_GE(sim.run_until([](const Sim& s) { return fast_converged(s); }, 25.0, 1e7), 0.0);
  for (const auto& a : sim.agents()) {
    EXPECT_LE(sim.protocol().report(a), 8 + 11);  // log n + 5.7 + 4 generous cap
  }
}

TEST(UpperBound, BackupAloneSufficesIfFastUnfinished) {
  // Before the fast estimate exists, report falls back to kex (which is a
  // lower bound on the final value, approaching from below).
  UpperBoundEstimation proto;
  UpperBoundEstimation::State s{};
  EXPECT_EQ(proto.report(s), 1);  // best = 0 -> kex = 1
}

TEST(UpperBound, FastPartMatchesStandaloneAccuracy) {
  constexpr std::uint64_t kN = 512;
  Sim sim(UpperBoundEstimation{}, kN, 17);
  ASSERT_GE(sim.run_until([](const Sim& s) { return fast_converged(s); }, 25.0, 1e7), 0.0);
  const double fast = sim.agent(0).fast.output;
  EXPECT_NEAR(fast, 9.0, 5.7);
}

}  // namespace
}  // namespace pops
