// Unit tests for the Fenwick-tree weighted sampler.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sim/rng.hpp"
#include "sim/weighted_sampler.hpp"

namespace pops {
namespace {

TEST(WeightedSampler, StartsEmpty) {
  WeightedSampler ws(4);
  EXPECT_EQ(ws.total(), 0u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(ws.count(i), 0u);
}

TEST(WeightedSampler, AddAndSetMaintainTotals) {
  WeightedSampler ws(3);
  ws.add(0, 5);
  ws.add(2, 7);
  EXPECT_EQ(ws.total(), 12u);
  ws.set_count(0, 1);
  EXPECT_EQ(ws.total(), 8u);
  EXPECT_EQ(ws.count(0), 1u);
  ws.add(0, -1);
  EXPECT_EQ(ws.count(0), 0u);
  EXPECT_EQ(ws.total(), 7u);
}

TEST(WeightedSampler, RejectsNegativeCounts) {
  WeightedSampler ws(2);
  ws.add(0, 3);
  EXPECT_THROW(ws.add(0, -4), std::invalid_argument);
  EXPECT_THROW(ws.add(5, 1), std::invalid_argument);
}

TEST(WeightedSampler, FindMapsCumulativePositions) {
  WeightedSampler ws(4);
  ws.add(0, 2);  // positions 0,1
  ws.add(1, 0);
  ws.add(2, 3);  // positions 2,3,4
  ws.add(3, 1);  // position 5
  EXPECT_EQ(ws.find(0), 0u);
  EXPECT_EQ(ws.find(1), 0u);
  EXPECT_EQ(ws.find(2), 2u);
  EXPECT_EQ(ws.find(4), 2u);
  EXPECT_EQ(ws.find(5), 3u);
  EXPECT_THROW(ws.find(6), std::invalid_argument);
}

TEST(WeightedSampler, SampleProportionalToCounts) {
  WeightedSampler ws(3);
  ws.add(0, 10);
  ws.add(1, 30);
  ws.add(2, 60);
  Rng rng(123);
  std::array<std::uint64_t, 3> hits{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++hits[ws.sample(rng)];
  EXPECT_NEAR(static_cast<double>(hits[0]) / kDraws, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[1]) / kDraws, 0.30, 0.015);
  EXPECT_NEAR(static_cast<double>(hits[2]) / kDraws, 0.60, 0.015);
}

TEST(WeightedSampler, NeverSamplesZeroCountItem) {
  WeightedSampler ws(5);
  ws.add(1, 3);
  ws.add(3, 2);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto s = ws.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(WeightedSampler, SampleFromEmptyThrows) {
  WeightedSampler ws(3);
  Rng rng(1);
  EXPECT_THROW(ws.sample(rng), std::invalid_argument);
}

TEST(WeightedSampler, LargeNonPowerOfTwoSize) {
  WeightedSampler ws(37);
  Rng rng(99);
  for (std::size_t i = 0; i < 37; ++i) ws.add(i, i % 3);
  std::uint64_t expected_total = 0;
  for (std::size_t i = 0; i < 37; ++i) expected_total += i % 3;
  EXPECT_EQ(ws.total(), expected_total);
  for (int i = 0; i < 10000; ++i) {
    const auto s = ws.sample(rng);
    EXPECT_NE(s % 3, 0u);  // items with count 0 never drawn
  }
}

}  // namespace
}  // namespace pops
